//! Contention sweep: threads x structure x {padding, ordering, backoff}.
//!
//! The library ships cache-line padding on per-process slots, weak
//! (acquire/release) orderings in the `Native` provider, and bounded
//! exponential backoff in every structure retry loop. This harness measures
//! what each of those three knobs buys under real multi-threaded contention
//! by sweeping the registry's four native-ablation providers (the
//! padding × ordering corners, `ProviderMeta::native_ablation`) over the
//! Figure-4-backed structures, with backoff as the third axis:
//!
//! * **padding** — each LL/SC variable on its own 128-byte line vs. packed
//!   contiguously so neighbouring links false share;
//! * **ordering** — the shipped acquire/release `Native` provider vs. the
//!   `fig4-native-seqcst` ablation that forces every operation to `SeqCst`
//!   (the pre-optimization behaviour);
//! * **backoff** — structure retry loops back off after a failed SC
//!   ([`backoff::set_enabled`]) vs. hammering the line immediately.
//!
//! The provider list comes from the registry (`nbsp_core::provider`) — this
//! binary keeps no construction list of its own, and `--provider name[,…]`
//! (parsed by the shared `runner::provider_filter`) restricts the sweep to
//! any registered providers for focused runs (the ablation gate and the STM
//! workload are skipped then, since the seed/hardened cells may be absent).
//!
//! A fourth workload drives [`OrecStm`], whose phase-1 orec acquisition is
//! a spin lock: there the backoff axis decides whether a waiter burns its
//! whole scheduler quantum spinning on an orec held by a preempted owner
//! (the classic oversubscription pathology) or yields it back. On machines
//! with fewer cores than threads this is the dominant effect; on big
//! machines the padding and ordering axes take over. Every cell is the
//! median of several runs, because a single oversubscribed run is mostly
//! scheduler noise.
//!
//! No criterion, no external deps: plain `std::thread` workers through
//! `measure::throughput_sessions`. Every telemetry number this binary
//! reports flows through the Figure-6 path (`nbsp_bench::sinks`): each
//! worker session owns a flusher pair and publishes its per-thread deltas
//! into a run-level WLL sink, and the JSON telemetry block and per-cell
//! event tables read those sinks with a single WLL each — never
//! `racy_totals`, whose cross-event tearing E11 demonstrates. Results go to
//! stdout as a markdown table and to `BENCH_contention.json` so future PRs
//! have a perf trajectory to regress against. The run exits nonzero if,
//! at 4 or more threads, the fully hardened configuration (padded +
//! acqrel + backoff) fails to beat the seed configuration (unpadded +
//! SeqCst + no backoff) on the geometric-mean speedup across workloads.

use std::fs;
use std::process::ExitCode;

use nbsp_bench::measure::throughput_sessions;
use nbsp_bench::report::{event_table, fmt_ops, Report, Table};
use nbsp_bench::runner::{provider_filter, ProviderFilter};
use nbsp_bench::sinks::{session_loop, FlushPair, Sinks};
use nbsp_core::{backoff, with_provider, Provider, ProviderId};
use nbsp_memsim::ProcId;
use nbsp_structures::stm_orec::OrecStm;
use nbsp_structures::{Counter, Queue, Stack};
use nbsp_telemetry::{AtomicHists, AtomicTotals, Event, Hist, EVENT_COUNT};

// ---------------------------------------------------------------------------
// Workloads, generic over any registered provider.
// ---------------------------------------------------------------------------

/// Shared-counter increment: the worst case — every operation contends on
/// one variable, so layout cannot help but ordering and backoff can.
fn counter_tput<P: Provider>(
    threads: usize,
    per_thread: u64,
    sinks: &Sinks,
    main: &mut FlushPair,
) -> f64 {
    let env = P::env(threads + 1).expect("provider env");
    let counter = Counter::new(P::var(&env, 0).expect("provider var"));
    main.flush(sinks); // publish setup events before workers can share our slot
    let tput = throughput_sessions(threads, per_thread, |tid| {
        let counter = &counter;
        let mut tc = P::thread_ctx(&env, tid);
        move |iters: u64| {
            let mut ctx = P::ctx(&mut tc);
            session_loop(iters, sinks, || {
                counter.increment(&mut ctx);
            });
        }
    });
    main.resync();
    tput
}

/// Treiber-style push/pop pairs. The stack's head and free-list head live
/// in adjacent variables, so the padding axis separates their cache lines.
fn stack_tput<P: Provider>(
    threads: usize,
    per_thread: u64,
    sinks: &Sinks,
    main: &mut FlushPair,
) -> f64 {
    let env = P::env(threads + 1).expect("provider env");
    // Setup does LL/SC work too: it gets the env's extra context slot.
    let mut setup_tc = P::thread_ctx(&env, threads);
    let mut setup = P::ctx(&mut setup_tc);
    let stack = Stack::new(
        2 * threads + 8,
        P::var(&env, 0).expect("provider var"),
        P::var(&env, 0).expect("provider var"),
        &mut setup,
    );
    main.flush(sinks);
    let tput = throughput_sessions(threads, per_thread, |tid| {
        let stack = &stack;
        let mut tc = P::thread_ctx(&env, tid);
        let v = tid as u64;
        move |iters: u64| {
            let mut ctx = P::ctx(&mut tc);
            session_loop(iters, sinks, || {
                let _ = stack.push(&mut ctx, v);
                let _ = stack.pop(&mut ctx);
            });
        }
    });
    main.resync();
    tput
}

/// Michael–Scott-style enqueue/dequeue pairs over the Figure-4 link array;
/// the padding axis decides whether neighbouring links false share.
fn queue_tput<P: Provider>(
    threads: usize,
    per_thread: u64,
    sinks: &Sinks,
    main: &mut FlushPair,
) -> f64 {
    let env = P::env(threads + 1).expect("provider env");
    let mut setup_tc = P::thread_ctx(&env, threads);
    let mut setup = P::ctx(&mut setup_tc);
    let queue = Queue::new(
        2 * threads + 8,
        || P::var(&env, 0).expect("provider var"),
        &mut setup,
    );
    main.flush(sinks);
    let tput = throughput_sessions(threads, per_thread, |tid| {
        let queue = &queue;
        let mut tc = P::thread_ctx(&env, tid);
        let v = tid as u64;
        move |iters: u64| {
            let mut ctx = P::ctx(&mut tc);
            session_loop(iters, sinks, || {
                let _ = queue.enqueue(&mut ctx, v);
                let _ = queue.dequeue(&mut ctx);
            });
        }
    });
    main.resync();
    tput
}

/// Fully overlapping two-cell transactions on the ownership-record STM.
/// The orec acquisition spin is where backoff matters most: with more
/// threads than cores, a disabled backoff burns whole scheduler quanta
/// spinning on an orec whose owner is descheduled. (Not provider-backed:
/// its orecs are raw atomics, not swappable LL/SC variables.)
fn stm_tput(threads: usize, per_thread: u64, sinks: &Sinks, main: &mut FlushPair) -> f64 {
    let stm = OrecStm::new(&[0; 4]);
    main.flush(sinks);
    let tput = throughput_sessions(threads, per_thread, |tid| {
        let stm = &stm;
        let p = ProcId::new(tid);
        move |iters: u64| {
            session_loop(iters, sinks, || {
                stm.transact(p, &[0, 1], |vals| {
                    vals[0] += 1;
                    vals[1] += 1;
                });
            });
        }
    });
    main.resync();
    tput
}

// ---------------------------------------------------------------------------
// Sweep driver.
// ---------------------------------------------------------------------------

struct Row {
    structure: &'static str,
    threads: usize,
    padded: bool,
    ordering: &'static str,
    backoff: bool,
    ops_per_sec: f64,
}

/// Median over `runs` repetitions — a single oversubscribed run is mostly
/// scheduler noise.
fn median_tput(runs: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut samples: Vec<f64> = (0..runs).map(|_| f()).collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

type Workload = fn(usize, u64, &Sinks, &mut FlushPair) -> f64;

/// Per-cell telemetry deltas, printed in `--quick` mode so a smoke run
/// shows *why* a cell is slow (SC failure rate, help traffic, backoff
/// escalation) instead of just that it is. Runs of the full sweep keep
/// stderr compact and rely on the run-level JSON block instead. Both
/// endpoints of the delta are single-WLL snapshots of the run's
/// `WideTotals` sink, so the printed deltas cannot tear across events.
fn print_cell_events(quick: bool, before: &[u64; EVENT_COUNT], sinks: &Sinks, total_ops: u64) {
    if !quick || !nbsp_telemetry::enabled() {
        return;
    }
    let after = sinks.events.totals();
    let mut delta = [0u64; EVENT_COUNT];
    for i in 0..EVENT_COUNT {
        delta[i] = after[i] - before[i];
    }
    for line in event_table(&delta, Some(total_ops)).to_markdown().lines() {
        eprintln!("[exp_contention]     {line}");
    }
}

fn sweep_provider<P: Provider>(
    threads_list: &[usize],
    per_thread: u64,
    runs: usize,
    quick: bool,
    sinks: &Sinks,
    main: &mut FlushPair,
    rows: &mut Vec<Row>,
) {
    let meta = P::ID.meta();
    let workloads: [(&'static str, Workload); 3] = [
        ("counter", counter_tput::<P>),
        ("stack", stack_tput::<P>),
        ("queue", queue_tput::<P>),
    ];
    for &use_backoff in &[false, true] {
        backoff::set_enabled(use_backoff);
        for &(structure, work) in &workloads {
            for &threads in threads_list {
                let before = sinks.events.totals();
                let ops = median_tput(runs, || work(threads, per_thread, sinks, main));
                eprintln!(
                    "[exp_contention] {structure} t={threads} provider={} padded={} ordering={} backoff={use_backoff}: {}",
                    meta.name,
                    meta.padded,
                    meta.ordering,
                    fmt_ops(ops),
                );
                print_cell_events(quick, &before, sinks, runs as u64 * threads as u64 * per_thread);
                rows.push(Row {
                    structure,
                    threads,
                    padded: meta.padded,
                    ordering: meta.ordering,
                    backoff: use_backoff,
                    ops_per_sec: ops,
                });
            }
        }
    }
    backoff::set_enabled(true); // library default
}

/// The STM workload only has the backoff axis; padding/ordering are
/// recorded as the library defaults so the JSON stays uniform.
fn sweep_stm(
    threads_list: &[usize],
    per_thread: u64,
    runs: usize,
    quick: bool,
    sinks: &Sinks,
    main: &mut FlushPair,
    rows: &mut Vec<Row>,
) {
    for &use_backoff in &[false, true] {
        backoff::set_enabled(use_backoff);
        for &threads in threads_list {
            let before = sinks.events.totals();
            let ops = median_tput(runs, || stm_tput(threads, per_thread, sinks, main));
            eprintln!(
                "[exp_contention] stm_orec t={threads} backoff={use_backoff}: {}",
                fmt_ops(ops),
            );
            print_cell_events(quick, &before, sinks, runs as u64 * threads as u64 * per_thread);
            rows.push(Row {
                structure: "stm_orec",
                threads,
                padded: true,
                ordering: "acqrel",
                backoff: use_backoff,
                ops_per_sec: ops,
            });
        }
    }
    backoff::set_enabled(true);
}

/// End-of-run telemetry block for the JSON artifact: per-event totals and
/// the two log2 histograms, each read from its Figure-6 sink with a
/// single WLL — the whole block is built from two atomic snapshots, never
/// from racy cross-row sums. When the `telemetry` feature is compiled out
/// the block records only `"enabled": false`, so schema consumers can
/// distinguish "no events" from "not instrumented".
fn telemetry_json(indent: &str, sinks: &Sinks) -> String {
    if !nbsp_telemetry::enabled() {
        return format!("{indent}\"telemetry\": {{\"enabled\": false}}");
    }
    let totals = sinks.events.totals();
    let events = Event::ALL
        .iter()
        .map(|e| format!("\"{}\": {}", e.name(), totals[e.index()]))
        .collect::<Vec<_>>()
        .join(", ");
    let hist_totals = sinks.hists.totals();
    let hists = Hist::ALL
        .iter()
        .map(|h| {
            let buckets = hist_totals[*h as usize]
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            format!("{indent}    \"{}\": [{buckets}]", h.name())
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{indent}\"telemetry\": {{\n\
         {indent}  \"enabled\": true,\n\
         {indent}  \"events\": {{{events}}},\n\
         {indent}  \"histograms\": {{\n{hists}\n{indent}  }}\n\
         {indent}}}"
    )
}

fn to_json(rows: &[Row], threads_list: &[usize], per_thread: u64, runs: usize, sinks: &Sinks) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema_version\": 2,\n");
    s.push_str("  \"experiment\": \"contention\",\n");
    s.push_str(&format!("  \"per_thread_iters\": {per_thread},\n"));
    s.push_str(&format!("  \"median_of_runs\": {runs},\n"));
    s.push_str(&format!(
        "  \"threads\": [{}],\n",
        threads_list
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"structure\": \"{}\", \"threads\": {}, \"padded\": {}, \"ordering\": \"{}\", \"backoff\": {}, \"ops_per_sec\": {:.1}}}{}\n",
            r.structure,
            r.threads,
            r.padded,
            r.ordering,
            r.backoff,
            r.ops_per_sec,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&telemetry_json("  ", sinks));
    s.push_str("\n}\n");
    s
}

fn find(rows: &[Row], structure: &str, t: usize, padded: bool, ordering: &str, b: bool) -> f64 {
    rows.iter()
        .find(|r| {
            r.structure == structure
                && r.threads == t
                && r.padded == padded
                && r.ordering == ordering
                && r.backoff == b
        })
        .map(|r| r.ops_per_sec)
        .unwrap_or(f64::NAN)
}

/// Per-workload hardened/seed speedups at `t`. The LL/SC structures
/// compare all three knobs; the STM compares the backoff knob (its only
/// axis).
fn speedups(rows: &[Row], t: usize) -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();
    for structure in ["counter", "stack", "queue"] {
        let seed = find(rows, structure, t, false, "seqcst", false);
        let hardened = find(rows, structure, t, true, "acqrel", true);
        out.push((structure, hardened / seed));
    }
    let seed = find(rows, "stm_orec", t, true, "acqrel", false);
    let hardened = find(rows, "stm_orec", t, true, "acqrel", true);
    out.push(("stm_orec", hardened / seed));
    out
}

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Which providers this binary sweeps: the registry's native-ablation
/// corners by default, or exactly the `--provider` list when given.
fn should_sweep(id: ProviderId, filter: &ProviderFilter) -> bool {
    if filter.is_restricted() {
        filter.allows(id)
    } else {
        id.meta().native_ablation
    }
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let filter = match provider_filter() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("[exp_contention] {e}");
            return ExitCode::FAILURE;
        }
    };
    let threads_list: &[usize] = &[1, 2, 4, 8];
    // Each thread's work must span many scheduler quanta (several ms at
    // least), otherwise on an oversubscribed host the threads simply run
    // to completion back-to-back and never actually contend.
    let (per_thread, stm_per_thread, runs): (u64, u64, usize) =
        if quick { (5_000, 2_000, 2) } else { (300_000, 100_000, 5) };

    let sinks = Sinks::new();
    // The main thread's own flusher pair: it records setup events
    // (structure construction does LL/SC work) and must publish them
    // exactly once; `resync` after each worker window keeps wrapped
    // worker slots from being double-published (see FlushPair::resync).
    let mut main_flush = FlushPair::new();

    let mut rows = Vec::new();
    for id in ProviderId::ALL {
        if !should_sweep(id, &filter) {
            continue;
        }
        macro_rules! sweep_one {
            ($p:ty) => {
                sweep_provider::<$p>(
                    threads_list,
                    per_thread,
                    runs,
                    quick,
                    &sinks,
                    &mut main_flush,
                    &mut rows,
                )
            };
        }
        with_provider!(id, sweep_one);
    }
    if !filter.is_restricted() {
        sweep_stm(threads_list, stm_per_thread, runs, quick, &sinks, &mut main_flush, &mut rows);
    }

    // Markdown report: one table per structure, one row per thread count,
    // seed configuration vs. hardened configuration plus the single-knob
    // ablations at the hardened ordering.
    let mut report = Report::new();
    report.heading("Contention sweep");
    report.para(&format!(
        "{per_thread} ops/thread (STM: {stm_per_thread}), median of {runs} runs; \
         seed = unpadded + SeqCst + no backoff; hardened = padded + acqrel + backoff. \
         Host CPUs: {}.",
        std::thread::available_parallelism().map_or(0, |n| n.get()),
    ));
    for structure in ["counter", "stack", "queue"] {
        let mut table = Table::new([
            "threads",
            "seed",
            "hardened",
            "speedup",
            "padded only",
            "acqrel only",
            "backoff only",
        ]);
        for &t in threads_list {
            let seed = find(&rows, structure, t, false, "seqcst", false);
            let hardened = find(&rows, structure, t, true, "acqrel", true);
            table.row([
                t.to_string(),
                fmt_ops(seed),
                fmt_ops(hardened),
                format!("{:.2}x", hardened / seed),
                fmt_ops(find(&rows, structure, t, true, "seqcst", false)),
                fmt_ops(find(&rows, structure, t, false, "acqrel", false)),
                fmt_ops(find(&rows, structure, t, false, "seqcst", true)),
            ]);
        }
        report.heading(structure);
        report.table(&table);
    }
    if !filter.is_restricted() {
        let mut table = Table::new(["threads", "no backoff", "backoff", "speedup"]);
        for &t in threads_list {
            let seed = find(&rows, "stm_orec", t, true, "acqrel", false);
            let hardened = find(&rows, "stm_orec", t, true, "acqrel", true);
            table.row([
                t.to_string(),
                fmt_ops(seed),
                fmt_ops(hardened),
                format!("{:.2}x", hardened / seed),
            ]);
        }
        report.heading("stm_orec (orec spin-acquire: backoff axis only)");
        report.table(&table);
    }
    print!("{}", report.to_markdown());

    let json = to_json(&rows, threads_list, per_thread, runs, &sinks);
    if let Err(e) = fs::write("BENCH_contention.json", &json) {
        eprintln!("[exp_contention] FAILED to write BENCH_contention.json: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[exp_contention] wrote BENCH_contention.json ({} rows)",
        rows.len()
    );

    // A `--provider`-restricted run is a focused debugging sweep: the
    // seed/hardened ablation cells may be absent, so the gate is skipped.
    if filter.is_restricted() {
        return ExitCode::SUCCESS;
    }

    // Acceptance gate: at every thread count >= 4 the hardened
    // configuration must beat the seed configuration on the geometric mean
    // of per-workload speedups (the standard aggregate for a suite — a sum
    // would let whichever workload has the biggest absolute ops/s swamp
    // the rest).
    let mut ok = true;
    for &t in threads_list.iter().filter(|&&t| t >= 4) {
        let per = speedups(&rows, t);
        let g = geomean(&per.iter().map(|&(_, s)| s).collect::<Vec<_>>());
        let detail = per
            .iter()
            .map(|(name, s)| format!("{name} {s:.2}x"))
            .collect::<Vec<_>>()
            .join(", ");
        let verdict = if g > 1.0 { "ok" } else { "REGRESSION" };
        eprintln!("[exp_contention] t={t}: geomean speedup {g:.2}x ({detail}) {verdict}");
        // Quick mode is a smoke run: its iteration counts are too small to
        // span scheduler quanta, so the comparison is noise-level and only
        // the full sweep enforces the gate.
        if !quick {
            ok &= g > 1.0;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("[exp_contention] FAILED: hardened config lost to the seed config");
        ExitCode::FAILURE
    }
}
