//! Contention sweep: threads x structure x {padding, ordering, backoff}.
//!
//! The library now ships cache-line padding on per-process slots, weak
//! (acquire/release) orderings in the `Native` provider, and bounded
//! exponential backoff in every structure retry loop. This harness measures
//! what each of those three knobs buys under real multi-threaded contention
//! by sweeping all eight combinations over the Figure-4-backed structures:
//!
//! * **padding** — each LL/SC variable on its own 128-byte line
//!   ([`CachePadded`]) vs. packed contiguously so neighbouring links false
//!   share;
//! * **ordering** — the shipped acquire/release [`Native`] provider vs. the
//!   [`NativeSeqCst`] ablation that forces every operation to `SeqCst`
//!   (the pre-optimization behaviour);
//! * **backoff** — structure retry loops back off after a failed SC
//!   ([`backoff::set_enabled`]) vs. hammering the line immediately.
//!
//! A fourth workload drives [`OrecStm`], whose phase-1 orec acquisition is
//! a spin lock: there the backoff axis decides whether a waiter burns its
//! whole scheduler quantum spinning on an orec held by a preempted owner
//! (the classic oversubscription pathology) or yields it back. On machines
//! with fewer cores than threads this is the dominant effect; on big
//! machines the padding and ordering axes take over. Every cell is the
//! median of several runs, because a single oversubscribed run is mostly
//! scheduler noise.
//!
//! No criterion, no external deps: plain `std::thread` workers through
//! `measure::throughput_sessions`. Every telemetry number this binary
//! reports flows through the Figure-6 path: each worker session owns a
//! [`Flusher`]/[`HistFlusher`] pair and publishes its per-thread deltas
//! into a run-level [`WideTotals`]/[`WideHists`] sink, and the JSON
//! telemetry block and per-cell event tables read those sinks with a
//! single WLL each — never `racy_totals`, whose cross-event tearing E11
//! demonstrates. Results go to stdout as a markdown table and to
//! `BENCH_contention.json` so future PRs have a perf trajectory to regress
//! against. The run exits nonzero if, at >= 4 threads, the fully hardened
//! configuration (padded + acqrel + backoff) fails to beat the seed
//! configuration (unpadded + SeqCst + no backoff) on the geometric-mean
//! speedup across workloads — the PR's acceptance criterion.

use std::fs;
use std::process::ExitCode;

use nbsp_bench::measure::throughput_sessions;
use nbsp_bench::report::{event_table, fmt_ops, Report, Table};
use nbsp_core::{
    backoff, CachePadded, CasLlSc, Keep, LlScVar, Native, NativeSeqCst, TagLayout, WideHists,
    WideTotals,
};
use nbsp_memsim::ProcId;
use nbsp_structures::stm_orec::OrecStm;
use nbsp_structures::{Counter, Queue, Stack};
use nbsp_telemetry::{AtomicHists, AtomicTotals, Event, Flusher, Hist, HistFlusher, EVENT_COUNT};

// ---------------------------------------------------------------------------
// Sweep axes as bench-local LL/SC variable types.
//
// `CasLlSc`'s inherent operations are generic over any `CasMemory` of the
// `Native` family, so the ordering axis is just a choice of context value
// (`&Native` = acquire/release, `&NativeSeqCst` = fully ordered) and the
// padding axis is a `CachePadded` box around the same variable. Each of the
// four combinations gets an `LlScVar` impl so the structures are reused
// unchanged.
// ---------------------------------------------------------------------------

fn base_var() -> CasLlSc<Native> {
    CasLlSc::new_native(TagLayout::half(), 0).unwrap()
}

macro_rules! bench_llsc_impl {
    ($name:ident, $ctx:ty, $ctx_val:expr) => {
        impl LlScVar for $name {
            type Keep = Option<Keep>;
            type Ctx<'a> = $ctx;

            fn ll(&self, _ctx: &mut $ctx, keep: &mut Option<Keep>) -> u64 {
                let k = keep.get_or_insert_with(Keep::default);
                CasLlSc::ll(&self.0, &$ctx_val, k)
            }

            fn vl(&self, _ctx: &mut $ctx, keep: &Option<Keep>) -> bool {
                keep.as_ref()
                    .is_some_and(|k| CasLlSc::vl(&self.0, &$ctx_val, k))
            }

            fn sc(&self, _ctx: &mut $ctx, keep: &mut Option<Keep>, new: u64) -> bool {
                keep.take()
                    .is_some_and(|k| CasLlSc::sc(&self.0, &$ctx_val, &k, new))
            }

            fn cl(&self, _ctx: &mut $ctx, keep: &mut Option<Keep>) {
                *keep = None;
            }

            fn read(&self, _ctx: &mut $ctx) -> u64 {
                CasLlSc::read(&self.0, &$ctx_val)
            }

            fn max_val(&self) -> u64 {
                self.0.layout().max_val()
            }
        }
    };
}

/// Unpadded + SeqCst: the seed configuration this PR optimized away.
struct SeqCstVar(CasLlSc<Native>);
bench_llsc_impl!(SeqCstVar, NativeSeqCst, NativeSeqCst);

/// Padded + acquire/release: the fully hardened configuration.
struct PaddedVar(CachePadded<CasLlSc<Native>>);
bench_llsc_impl!(PaddedVar, Native, Native);

/// Padded + SeqCst: isolates the layout win from the ordering win.
struct PaddedSeqCstVar(CachePadded<CasLlSc<Native>>);
bench_llsc_impl!(PaddedSeqCstVar, NativeSeqCst, NativeSeqCst);

/// The factory + context glue each measurement needs, per variable type.
/// (`CasLlSc<Native>` itself covers the unpadded + acqrel corner.)
trait BenchVar: LlScVar<Keep = Option<Keep>> + Send + Sync + 'static
where
    for<'a> Self: LlScVar<Ctx<'a> = Self::BenchCtx>,
{
    type BenchCtx: Send + 'static;
    const PADDED: bool;
    const ORDERING: &'static str;

    fn make() -> Self;
    fn ctx() -> Self::BenchCtx;
}

impl BenchVar for CasLlSc<Native> {
    type BenchCtx = Native;
    const PADDED: bool = false;
    const ORDERING: &'static str = "acqrel";

    fn make() -> Self {
        base_var()
    }

    fn ctx() -> Native {
        Native
    }
}

impl BenchVar for SeqCstVar {
    type BenchCtx = NativeSeqCst;
    const PADDED: bool = false;
    const ORDERING: &'static str = "seqcst";

    fn make() -> Self {
        SeqCstVar(base_var())
    }

    fn ctx() -> NativeSeqCst {
        NativeSeqCst
    }
}

impl BenchVar for PaddedVar {
    type BenchCtx = Native;
    const PADDED: bool = true;
    const ORDERING: &'static str = "acqrel";

    fn make() -> Self {
        PaddedVar(CachePadded::new(base_var()))
    }

    fn ctx() -> Native {
        Native
    }
}

impl BenchVar for PaddedSeqCstVar {
    type BenchCtx = NativeSeqCst;
    const PADDED: bool = true;
    const ORDERING: &'static str = "seqcst";

    fn make() -> Self {
        PaddedSeqCstVar(CachePadded::new(base_var()))
    }

    fn ctx() -> NativeSeqCst {
        NativeSeqCst
    }
}

// ---------------------------------------------------------------------------
// Telemetry plumbing: per-thread flushers into Figure-6 sinks.
// ---------------------------------------------------------------------------

/// Worker ops between telemetry flushes: frequent enough that mid-run
/// reads stay fresh, rare enough that the WLL/SC flush loop is off the
/// hot path.
const FLUSH_EVERY: u64 = 8192;

/// The run-level consistent sinks every thread flushes into and every
/// report line reads from (each read is one WLL).
struct Sinks {
    events: WideTotals,
    hists: WideHists,
}

impl Sinks {
    fn new() -> Self {
        Sinks {
            events: WideTotals::with_all_slots().expect("events sink"),
            hists: WideHists::with_all_slots().expect("hists sink"),
        }
    }
}

/// A thread's event + histogram flusher pair. Created on the thread that
/// records (the types are `!Send`), flushed together so cross-event and
/// cross-histogram invariants land in the sinks at the same boundaries.
struct FlushPair {
    events: Flusher,
    hists: HistFlusher,
}

impl FlushPair {
    fn new() -> Self {
        FlushPair {
            events: Flusher::new(),
            hists: HistFlusher::new(),
        }
    }

    fn flush(&mut self, sinks: &Sinks) {
        self.events.flush(&sinks.events);
        self.hists.flush(&sinks.hists);
    }

    /// Discard counts foreign threads left on this thread's (wrapped)
    /// slot — see [`Flusher::resync`]. The main thread calls this after
    /// every worker window: the sweep spawns thousands of short-lived
    /// workers, so slots reuse and a worker can land on the main thread's
    /// row. That worker flushes its own deltas; without the resync the
    /// main thread's next flush would publish the same counts again.
    fn resync(&mut self) {
        self.events.resync();
        self.hists.resync();
    }
}

/// A worker-session loop body: run `iters` ops through `op`, flushing
/// telemetry every [`FLUSH_EVERY`] ops and once at exit.
fn session_loop(iters: u64, sinks: &Sinks, mut op: impl FnMut()) {
    let mut flush = FlushPair::new();
    for i in 1..=iters {
        op();
        if i % FLUSH_EVERY == 0 {
            flush.flush(sinks);
        }
    }
    flush.flush(sinks);
}

// ---------------------------------------------------------------------------
// Workloads.
// ---------------------------------------------------------------------------

/// Shared-counter increment: the worst case — every operation contends on
/// one variable, so layout cannot help but ordering and backoff can.
fn counter_tput<V>(threads: usize, per_thread: u64, sinks: &Sinks, main: &mut FlushPair) -> f64
where
    V: BenchVar,
    for<'a> V: LlScVar<Ctx<'a> = V::BenchCtx>,
{
    let counter = Counter::new(V::make());
    main.flush(sinks); // publish setup events before workers can share our slot
    let tput = throughput_sessions(threads, per_thread, |_tid| {
        let counter = &counter;
        let mut ctx = V::ctx();
        move |iters: u64| {
            session_loop(iters, sinks, || {
                counter.increment(&mut ctx);
            });
        }
    });
    main.resync();
    tput
}

/// Treiber-style push/pop pairs. The stack's head and free-list head live
/// in adjacent variables, so the padding axis separates their cache lines.
fn stack_tput<V>(threads: usize, per_thread: u64, sinks: &Sinks, main: &mut FlushPair) -> f64
where
    V: BenchVar,
    for<'a> V: LlScVar<Ctx<'a> = V::BenchCtx>,
{
    let mut setup = V::ctx();
    let stack = Stack::new(2 * threads + 8, V::make(), V::make(), &mut setup);
    main.flush(sinks);
    let tput = throughput_sessions(threads, per_thread, |tid| {
        let stack = &stack;
        let mut ctx = V::ctx();
        let v = tid as u64;
        move |iters: u64| {
            session_loop(iters, sinks, || {
                let _ = stack.push(&mut ctx, v);
                let _ = stack.pop(&mut ctx);
            });
        }
    });
    main.resync();
    tput
}

/// Michael–Scott-style enqueue/dequeue pairs over the Figure-4 link array;
/// the padding axis decides whether neighbouring links false share.
fn queue_tput<V>(threads: usize, per_thread: u64, sinks: &Sinks, main: &mut FlushPair) -> f64
where
    V: BenchVar,
    for<'a> V: LlScVar<Ctx<'a> = V::BenchCtx>,
{
    let mut setup = V::ctx();
    let queue = Queue::new(2 * threads + 8, V::make, &mut setup);
    main.flush(sinks);
    let tput = throughput_sessions(threads, per_thread, |tid| {
        let queue = &queue;
        let mut ctx = V::ctx();
        let v = tid as u64;
        move |iters: u64| {
            session_loop(iters, sinks, || {
                let _ = queue.enqueue(&mut ctx, v);
                let _ = queue.dequeue(&mut ctx);
            });
        }
    });
    main.resync();
    tput
}

/// Fully overlapping two-cell transactions on the ownership-record STM.
/// The orec acquisition spin is where backoff matters most: with more
/// threads than cores, a disabled backoff burns whole scheduler quanta
/// spinning on an orec whose owner is descheduled.
fn stm_tput(threads: usize, per_thread: u64, sinks: &Sinks, main: &mut FlushPair) -> f64 {
    let stm = OrecStm::new(&[0; 4]);
    main.flush(sinks);
    let tput = throughput_sessions(threads, per_thread, |tid| {
        let stm = &stm;
        let p = ProcId::new(tid);
        move |iters: u64| {
            session_loop(iters, sinks, || {
                stm.transact(p, &[0, 1], |vals| {
                    vals[0] += 1;
                    vals[1] += 1;
                });
            });
        }
    });
    main.resync();
    tput
}

// ---------------------------------------------------------------------------
// Sweep driver.
// ---------------------------------------------------------------------------

struct Row {
    structure: &'static str,
    threads: usize,
    padded: bool,
    ordering: &'static str,
    backoff: bool,
    ops_per_sec: f64,
}

/// Median over `runs` repetitions — a single oversubscribed run is mostly
/// scheduler noise.
fn median_tput(runs: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut samples: Vec<f64> = (0..runs).map(|_| f()).collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

type Workload = fn(usize, u64, &Sinks, &mut FlushPair) -> f64;

/// Per-cell telemetry deltas, printed in `--quick` mode so a smoke run
/// shows *why* a cell is slow (SC failure rate, help traffic, backoff
/// escalation) instead of just that it is. Runs of the full sweep keep
/// stderr compact and rely on the run-level JSON block instead. Both
/// endpoints of the delta are single-WLL snapshots of the run's
/// [`WideTotals`] sink, so the printed deltas cannot tear across events.
fn print_cell_events(quick: bool, before: &[u64; EVENT_COUNT], sinks: &Sinks, total_ops: u64) {
    if !quick || !nbsp_telemetry::enabled() {
        return;
    }
    let after = sinks.events.totals();
    let mut delta = [0u64; EVENT_COUNT];
    for i in 0..EVENT_COUNT {
        delta[i] = after[i] - before[i];
    }
    for line in event_table(&delta, Some(total_ops)).to_markdown().lines() {
        eprintln!("[exp_contention]     {line}");
    }
}

fn sweep_var<V>(
    threads_list: &[usize],
    per_thread: u64,
    runs: usize,
    quick: bool,
    sinks: &Sinks,
    main: &mut FlushPair,
    rows: &mut Vec<Row>,
) where
    V: BenchVar,
    for<'a> V: LlScVar<Ctx<'a> = V::BenchCtx>,
{
    let workloads: [(&'static str, Workload); 3] = [
        ("counter", counter_tput::<V>),
        ("stack", stack_tput::<V>),
        ("queue", queue_tput::<V>),
    ];
    for &use_backoff in &[false, true] {
        backoff::set_enabled(use_backoff);
        for &(structure, work) in &workloads {
            for &threads in threads_list {
                let before = sinks.events.totals();
                let ops = median_tput(runs, || work(threads, per_thread, sinks, main));
                eprintln!(
                    "[exp_contention] {structure} t={threads} padded={} ordering={} backoff={use_backoff}: {}",
                    V::PADDED,
                    V::ORDERING,
                    fmt_ops(ops),
                );
                print_cell_events(quick, &before, sinks, runs as u64 * threads as u64 * per_thread);
                rows.push(Row {
                    structure,
                    threads,
                    padded: V::PADDED,
                    ordering: V::ORDERING,
                    backoff: use_backoff,
                    ops_per_sec: ops,
                });
            }
        }
    }
    backoff::set_enabled(true); // library default
}

/// The STM workload only has the backoff axis (its orecs are raw atomics,
/// not swappable LL/SC variables); padding/ordering are recorded as the
/// library defaults so the JSON stays uniform.
fn sweep_stm(
    threads_list: &[usize],
    per_thread: u64,
    runs: usize,
    quick: bool,
    sinks: &Sinks,
    main: &mut FlushPair,
    rows: &mut Vec<Row>,
) {
    for &use_backoff in &[false, true] {
        backoff::set_enabled(use_backoff);
        for &threads in threads_list {
            let before = sinks.events.totals();
            let ops = median_tput(runs, || stm_tput(threads, per_thread, sinks, main));
            eprintln!(
                "[exp_contention] stm_orec t={threads} backoff={use_backoff}: {}",
                fmt_ops(ops),
            );
            print_cell_events(quick, &before, sinks, runs as u64 * threads as u64 * per_thread);
            rows.push(Row {
                structure: "stm_orec",
                threads,
                padded: true,
                ordering: "acqrel",
                backoff: use_backoff,
                ops_per_sec: ops,
            });
        }
    }
    backoff::set_enabled(true);
}

/// End-of-run telemetry block for the JSON artifact: per-event totals and
/// the two log2 histograms, each read from its Figure-6 sink with a
/// single WLL — the whole block is built from two atomic snapshots, never
/// from racy cross-row sums. When the `telemetry` feature is compiled out
/// the block records only `"enabled": false`, so schema consumers can
/// distinguish "no events" from "not instrumented".
fn telemetry_json(indent: &str, sinks: &Sinks) -> String {
    if !nbsp_telemetry::enabled() {
        return format!("{indent}\"telemetry\": {{\"enabled\": false}}");
    }
    let totals = sinks.events.totals();
    let events = Event::ALL
        .iter()
        .map(|e| format!("\"{}\": {}", e.name(), totals[e.index()]))
        .collect::<Vec<_>>()
        .join(", ");
    let hist_totals = sinks.hists.totals();
    let hists = Hist::ALL
        .iter()
        .map(|h| {
            let buckets = hist_totals[*h as usize]
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            format!("{indent}    \"{}\": [{buckets}]", h.name())
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{indent}\"telemetry\": {{\n\
         {indent}  \"enabled\": true,\n\
         {indent}  \"events\": {{{events}}},\n\
         {indent}  \"histograms\": {{\n{hists}\n{indent}  }}\n\
         {indent}}}"
    )
}

fn to_json(rows: &[Row], threads_list: &[usize], per_thread: u64, runs: usize, sinks: &Sinks) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema_version\": 2,\n");
    s.push_str("  \"experiment\": \"contention\",\n");
    s.push_str(&format!("  \"per_thread_iters\": {per_thread},\n"));
    s.push_str(&format!("  \"median_of_runs\": {runs},\n"));
    s.push_str(&format!(
        "  \"threads\": [{}],\n",
        threads_list
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"structure\": \"{}\", \"threads\": {}, \"padded\": {}, \"ordering\": \"{}\", \"backoff\": {}, \"ops_per_sec\": {:.1}}}{}\n",
            r.structure,
            r.threads,
            r.padded,
            r.ordering,
            r.backoff,
            r.ops_per_sec,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&telemetry_json("  ", sinks));
    s.push_str("\n}\n");
    s
}

fn find(rows: &[Row], structure: &str, t: usize, padded: bool, ordering: &str, b: bool) -> f64 {
    rows.iter()
        .find(|r| {
            r.structure == structure
                && r.threads == t
                && r.padded == padded
                && r.ordering == ordering
                && r.backoff == b
        })
        .map(|r| r.ops_per_sec)
        .unwrap_or(f64::NAN)
}

/// Per-workload hardened/seed speedups at `t`. The LL/SC structures
/// compare all three knobs; the STM compares the backoff knob (its only
/// axis).
fn speedups(rows: &[Row], t: usize) -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();
    for structure in ["counter", "stack", "queue"] {
        let seed = find(rows, structure, t, false, "seqcst", false);
        let hardened = find(rows, structure, t, true, "acqrel", true);
        out.push((structure, hardened / seed));
    }
    let seed = find(rows, "stm_orec", t, true, "acqrel", false);
    let hardened = find(rows, "stm_orec", t, true, "acqrel", true);
    out.push(("stm_orec", hardened / seed));
    out
}

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads_list: &[usize] = &[1, 2, 4, 8];
    // Each thread's work must span many scheduler quanta (several ms at
    // least), otherwise on an oversubscribed host the threads simply run
    // to completion back-to-back and never actually contend.
    let (per_thread, stm_per_thread, runs): (u64, u64, usize) =
        if quick { (5_000, 2_000, 2) } else { (300_000, 100_000, 5) };

    let sinks = Sinks::new();
    // The main thread's own flusher pair: it records setup events
    // (structure construction does LL/SC work) and must publish them
    // exactly once; `resync` after each worker window keeps wrapped
    // worker slots from being double-published (see FlushPair::resync).
    let mut main_flush = FlushPair::new();

    let mut rows = Vec::new();
    sweep_var::<SeqCstVar>(threads_list, per_thread, runs, quick, &sinks, &mut main_flush, &mut rows);
    sweep_var::<CasLlSc<Native>>(threads_list, per_thread, runs, quick, &sinks, &mut main_flush, &mut rows);
    sweep_var::<PaddedSeqCstVar>(threads_list, per_thread, runs, quick, &sinks, &mut main_flush, &mut rows);
    sweep_var::<PaddedVar>(threads_list, per_thread, runs, quick, &sinks, &mut main_flush, &mut rows);
    sweep_stm(threads_list, stm_per_thread, runs, quick, &sinks, &mut main_flush, &mut rows);

    // Markdown report: one table per structure, one row per thread count,
    // seed configuration vs. hardened configuration plus the single-knob
    // ablations at the hardened ordering.
    let mut report = Report::new();
    report.heading("Contention sweep");
    report.para(&format!(
        "{per_thread} ops/thread (STM: {stm_per_thread}), median of {runs} runs; \
         seed = unpadded + SeqCst + no backoff; hardened = padded + acqrel + backoff. \
         Host CPUs: {}.",
        std::thread::available_parallelism().map_or(0, |n| n.get()),
    ));
    for structure in ["counter", "stack", "queue"] {
        let mut table = Table::new([
            "threads",
            "seed",
            "hardened",
            "speedup",
            "padded only",
            "acqrel only",
            "backoff only",
        ]);
        for &t in threads_list {
            let seed = find(&rows, structure, t, false, "seqcst", false);
            let hardened = find(&rows, structure, t, true, "acqrel", true);
            table.row([
                t.to_string(),
                fmt_ops(seed),
                fmt_ops(hardened),
                format!("{:.2}x", hardened / seed),
                fmt_ops(find(&rows, structure, t, true, "seqcst", false)),
                fmt_ops(find(&rows, structure, t, false, "acqrel", false)),
                fmt_ops(find(&rows, structure, t, false, "seqcst", true)),
            ]);
        }
        report.heading(structure);
        report.table(&table);
    }
    let mut table = Table::new(["threads", "no backoff", "backoff", "speedup"]);
    for &t in threads_list {
        let seed = find(&rows, "stm_orec", t, true, "acqrel", false);
        let hardened = find(&rows, "stm_orec", t, true, "acqrel", true);
        table.row([
            t.to_string(),
            fmt_ops(seed),
            fmt_ops(hardened),
            format!("{:.2}x", hardened / seed),
        ]);
    }
    report.heading("stm_orec (orec spin-acquire: backoff axis only)");
    report.table(&table);
    print!("{}", report.to_markdown());

    let json = to_json(&rows, threads_list, per_thread, runs, &sinks);
    if let Err(e) = fs::write("BENCH_contention.json", &json) {
        eprintln!("[exp_contention] FAILED to write BENCH_contention.json: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[exp_contention] wrote BENCH_contention.json ({} rows)",
        rows.len()
    );

    // Acceptance gate: at every thread count >= 4 the hardened
    // configuration must beat the seed configuration on the geometric mean
    // of per-workload speedups (the standard aggregate for a suite — a sum
    // would let whichever workload has the biggest absolute ops/s swamp
    // the rest).
    let mut ok = true;
    for &t in threads_list.iter().filter(|&&t| t >= 4) {
        let per = speedups(&rows, t);
        let g = geomean(&per.iter().map(|&(_, s)| s).collect::<Vec<_>>());
        let detail = per
            .iter()
            .map(|(name, s)| format!("{name} {s:.2}x"))
            .collect::<Vec<_>>()
            .join(", ");
        let verdict = if g > 1.0 { "ok" } else { "REGRESSION" };
        eprintln!("[exp_contention] t={t}: geomean speedup {g:.2}x ({detail}) {verdict}");
        // Quick mode is a smoke run: its iteration counts are too small to
        // span scheduler quanta, so the comparison is noise-level and only
        // the full sweep enforces the gate.
        if !quick {
            ok &= g > 1.0;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("[exp_contention] FAILED: hardened config lost to the seed config");
        ExitCode::FAILURE
    }
}
