//! Static protocol-obligation certification (`nbsp_check::flow`), as a
//! CI gate — the client-side complement of `exp_modelcheck`'s
//! provider-side certificates.
//!
//! Runs the keep-lifetime dataflow, the `PROVIDER_K` bound
//! certification, the release/acquire pairing table and the R7
//! backoff-discipline scan over the six client crates; verifies both
//! planted canaries are caught; writes `BENCH_obligations.json`
//! (byte-identical across runs); and exits nonzero on any unallowlisted
//! violation, canary miss, bound mismatch, or nondeterminism.
//!
//! No arguments (`--quick` is accepted and ignored: the pass is already
//! fast and always runs in full).
use std::path::Path;
use std::process::ExitCode;

use nbsp_bench::experiments::e17_obligations;

fn main() -> ExitCode {
    // The binary lives in crates/bench; the repo root is two levels up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let r = e17_obligations::collect(&root);
    println!("{}", e17_obligations::render(&r));
    let json = e17_obligations::to_json(&r);
    let out = root.join("BENCH_obligations.json");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("[exp_obligations] failed to write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("[exp_obligations] wrote {}", out.display());
    let ok = r.canary_leak.caught
        && r.canary_release.caught
        && r.repo.violations.is_empty()
        && r.repo.certified_bound == r.repo.provider_k
        && r.deterministic;
    if ok {
        eprintln!(
            "[exp_obligations] clean: {} function(s), bound {} == PROVIDER_K, {} allowed finding(s)",
            r.functions, r.repo.certified_bound, r.allowed
        );
        return ExitCode::SUCCESS;
    }
    for v in &r.repo.violations {
        println!("{v}");
    }
    eprintln!(
        "[exp_obligations] FAILED: violations={} bound={}(k={}) canaries=({}, {}) deterministic={}",
        r.repo.violations.len(),
        r.repo.certified_bound,
        r.repo.provider_k,
        r.canary_leak.caught,
        r.canary_release.caught,
        r.deterministic,
    );
    ExitCode::FAILURE
}
