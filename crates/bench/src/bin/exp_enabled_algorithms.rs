//! E7: re-enabled non-blocking algorithms. See `EXPERIMENTS.md`.
fn main() {
    println!("{}", nbsp_bench::experiments::e7_structures::run(200_000));
}
