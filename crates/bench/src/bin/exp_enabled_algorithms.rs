//! E7: re-enabled non-blocking algorithms. See `EXPERIMENTS.md`.
use std::process::ExitCode;

fn main() -> ExitCode {
    nbsp_bench::runner::run_experiment("e7_structures", || nbsp_bench::experiments::e7_structures::run(200_000).to_string())
}
