//! Regenerates E16: the consensus-hierarchy portability matrix — the
//! full registry listing with capability/tier metadata, the
//! conformance/differential/DPOR stamps for the weak-primitive providers
//! (`cas-from-swap`, `feb-llsc`), and the "cost of weakening the
//! hardware" throughput ordering. Writes `BENCH_hierarchy.json` (only
//! schedule-deterministic fields, so same-seed runs are byte-identical;
//! schema documented in `e16_hierarchy::to_json`) and hard-fails on any
//! gate: a failed weak-provider stamp, a wrong registry count, or a
//! non-monotone hierarchy ordering.
//!
//! Run with `--quick` for a fast smoke pass (CI uses this; the gates are
//! enforced either way).
use std::process::ExitCode;

use nbsp_bench::experiments::e16_hierarchy;
use nbsp_bench::runner::run_experiment;

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 40_000 } else { 200_000 };
    run_experiment("e16_hierarchy", move || {
        let r = e16_hierarchy::collect(iters, quick);
        let json = e16_hierarchy::to_json(&r);
        std::fs::write("BENCH_hierarchy.json", &json).expect("writing BENCH_hierarchy.json failed");
        eprintln!("[nbsp-bench] wrote BENCH_hierarchy.json");
        let report = e16_hierarchy::render(&r).to_string();
        // Gates run after the artifact is written so a red run still
        // leaves the verdicts on disk for the postmortem.
        e16_hierarchy::enforce(&r);
        report
    })
}
