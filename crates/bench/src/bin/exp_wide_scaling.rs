//! E2: Θ(W) WLL/SC, Θ(1) VL (Theorem 4). See `EXPERIMENTS.md`.
fn main() {
    println!("{}", nbsp_bench::experiments::e2_wide::run(100_000));
}
