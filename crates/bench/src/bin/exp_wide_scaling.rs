//! E2: Θ(W) WLL/SC, Θ(1) VL (Theorem 4). See `EXPERIMENTS.md`.
use std::process::ExitCode;

fn main() -> ExitCode {
    nbsp_bench::runner::run_experiment("e2_wide", || nbsp_bench::experiments::e2_wide::run(100_000).to_string())
}
