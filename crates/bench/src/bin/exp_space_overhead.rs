//! E3: space overhead vs number of variables. See `EXPERIMENTS.md`.
use std::process::ExitCode;

fn main() -> ExitCode {
    nbsp_bench::runner::run_experiment("e3_space", || nbsp_bench::experiments::e3_space::run(nbsp_bench::experiments::e3_space::SpaceConfig::default()).to_string())
}
