//! E3: space overhead vs number of variables. See `EXPERIMENTS.md`.
use nbsp_bench::experiments::e3_space::{run, SpaceConfig};
fn main() {
    println!("{}", run(SpaceConfig::default()));
}
