//! Regenerates every experiment table in `EXPERIMENTS.md` (E1–E5, E7–E10;
//! E6 is `examples/concurrent_sequences.rs` / `tests/figure1.rs`; the
//! model-checking certificates are the separate `exp_modelcheck` binary).
//!
//! Run with `--quick` for a fast smoke pass.
use nbsp_bench::experiments::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (big, mid) = if quick { (5_000, 2_000) } else { (200_000, 100_000) };
    println!("{}\n", e1_time::run(big));
    println!("{}\n", e2_wide::run(mid));
    println!("{}\n", e3_space::run(e3_space::SpaceConfig::default()));
    println!("{}\n", e4_spurious::run(mid));
    println!("{}\n", e5_wraparound::run(big));
    println!("{}\n", e7_structures::run(big));
    println!("{}\n", e8_interface::run(big));
    println!("{}\n", e9_bounded::run(if quick { 20_000 } else { 500_000 }));
    println!("{}\n", e10_disjoint::run(2_000));
}
