//! Regenerates every experiment table in `EXPERIMENTS.md` (E1–E5, E7–E17;
//! E6 is `examples/concurrent_sequences.rs` / `tests/figure1.rs`; the
//! figure-level model-checking certificates and the `BENCH_modelcheck.json`
//! artifact are the separate `exp_modelcheck` binary).
//!
//! Run with `--quick` for a fast smoke pass. Failures are attributed per
//! experiment module and the process exits nonzero if any module failed.
use std::process::ExitCode;

use nbsp_bench::experiments::*;
use nbsp_bench::runner::run_all;

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let (big, mid) = if quick { (5_000, 2_000) } else { (200_000, 100_000) };
    let e9_iters = if quick { 20_000 } else { 500_000 };
    run_all(vec![
        ("e1_time", Box::new(move || e1_time::run(big).to_string())),
        ("e2_wide", Box::new(move || e2_wide::run(mid).to_string())),
        (
            "e3_space",
            Box::new(|| e3_space::run(e3_space::SpaceConfig::default()).to_string()),
        ),
        ("e4_spurious", Box::new(move || e4_spurious::run(mid).to_string())),
        ("e5_wraparound", Box::new(move || e5_wraparound::run(big).to_string())),
        ("e7_structures", Box::new(move || e7_structures::run(big).to_string())),
        ("e8_interface", Box::new(move || e8_interface::run(big).to_string())),
        (
            "e9_bounded",
            Box::new(move || e9_bounded::run(e9_iters, quick).to_string()),
        ),
        ("e10_disjoint", Box::new(|| e10_disjoint::run(2_000).to_string())),
        // Gates are left to the dedicated exp_telemetry_overhead binary:
        // inside exp_all the other experiments have already heated the
        // process, which is exactly the noise the 1% gate cannot tolerate.
        (
            "e11_telemetry",
            Box::new(move || e11_telemetry::run(mid, false).to_string()),
        ),
        (
            "e12_serve",
            Box::new(move || e12_serve::run(if quick { 20_000 } else { 200_000 }).to_string()),
        ),
        (
            "e13_modelcheck",
            Box::new(move || e13_modelcheck::run(quick).to_string()),
        ),
        (
            "e14_elastic",
            Box::new(move || {
                let (requests, trials) = if quick { (20_000, 16) } else { (200_000, 64) };
                e14_elastic::run(requests, trials).to_string()
            }),
        ),
        (
            "e15_structures",
            Box::new(move || {
                let (requests, iters) = if quick { (20_000, 12_000) } else { (100_000, 48_000) };
                e15_structures::run(requests, iters).to_string()
            }),
        ),
        (
            "e16_hierarchy",
            Box::new(move || {
                e16_hierarchy::run(if quick { 40_000 } else { 200_000 }, quick).to_string()
            }),
        ),
        // Static analysis is already fast; it runs in full either way.
        ("e17_obligations", Box::new(|| e17_obligations::run().to_string())),
    ])
}
