//! # nbsp-bench — the experiment harness
//!
//! One module per experiment in `EXPERIMENTS.md` (E1–E9, minus E6 which
//! lives in `examples/concurrent_sequences.rs` and `tests/figure1.rs`).
//! Each module exposes a `run(...) -> Report` function; the `exp_*`
//! binaries print single experiments and `exp_all` regenerates the full
//! results file.
//!
//! Absolute numbers depend on the host; the *shapes* — flat in N, linear
//! in W, space formulas, retry counts tracking the injected adversary —
//! are the reproducible content (see DESIGN.md §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod measure;
pub mod report;
pub mod runner;
pub mod sinks;
