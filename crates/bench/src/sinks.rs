//! Shared telemetry plumbing for experiment harnesses: per-thread
//! flushers publishing into Figure-6 WLL sinks.
//!
//! Every telemetry number a harness reports should flow through this
//! path: each worker session owns a [`Flusher`]/[`HistFlusher`] pair and
//! publishes its per-thread deltas into a run-level
//! [`WideTotals`]/[`WideHists`] sink, and reports read those sinks with a
//! single WLL each — never `racy_totals`, whose cross-event tearing E11
//! demonstrates. Extracted from `exp_contention` so E7 and future
//! harnesses report through the same snapshot-consistent machinery.

use nbsp_core::{WideHists, WideTotals};
use nbsp_telemetry::{Flusher, HistFlusher};

/// Worker ops between telemetry flushes: frequent enough that mid-run
/// reads stay fresh, rare enough that the WLL/SC flush loop is off the
/// hot path.
pub const FLUSH_EVERY: u64 = 8192;

/// The run-level consistent sinks every thread flushes into and every
/// report line reads from (each read is one WLL).
#[derive(Debug)]
pub struct Sinks {
    /// Per-event totals, all in one Figure-6 variable.
    pub events: WideTotals,
    /// Log2 histograms, likewise snapshot-consistent.
    pub hists: WideHists,
}

impl Sinks {
    /// Creates the pair of run-level sinks.
    #[must_use]
    pub fn new() -> Self {
        Sinks {
            events: WideTotals::with_all_slots().expect("events sink"),
            hists: WideHists::with_all_slots().expect("hists sink"),
        }
    }
}

impl Default for Sinks {
    fn default() -> Self {
        Sinks::new()
    }
}

/// A thread's event + histogram flusher pair. Created on the thread that
/// records (the types are `!Send`), flushed together so cross-event and
/// cross-histogram invariants land in the sinks at the same boundaries.
#[derive(Debug)]
pub struct FlushPair {
    events: Flusher,
    hists: HistFlusher,
}

impl FlushPair {
    /// Creates the pair on the recording thread.
    #[must_use]
    pub fn new() -> Self {
        FlushPair {
            events: Flusher::new(),
            hists: HistFlusher::new(),
        }
    }

    /// Publishes this thread's deltas into the run-level sinks.
    pub fn flush(&mut self, sinks: &Sinks) {
        self.events.flush(&sinks.events);
        self.hists.flush(&sinks.hists);
    }

    /// Discard counts foreign threads left on this thread's (wrapped)
    /// slot — see [`Flusher::resync`]. The main thread calls this after
    /// every worker window: a sweep spawns thousands of short-lived
    /// workers, so slots reuse and a worker can land on the main thread's
    /// row. That worker flushes its own deltas; without the resync the
    /// main thread's next flush would publish the same counts again.
    pub fn resync(&mut self) {
        self.events.resync();
        self.hists.resync();
    }
}

impl Default for FlushPair {
    fn default() -> Self {
        FlushPair::new()
    }
}

/// A worker-session loop body: run `iters` ops through `op`, flushing
/// telemetry every [`FLUSH_EVERY`] ops and once at exit.
pub fn session_loop(iters: u64, sinks: &Sinks, mut op: impl FnMut()) {
    let mut flush = FlushPair::new();
    for i in 1..=iters {
        op();
        if i % FLUSH_EVERY == 0 {
            flush.flush(sinks);
        }
    }
    flush.flush(sinks);
}
