//! Markdown report rendering for experiment output.

use std::fmt::Write as _;

/// A rendered experiment: a heading, the paper's claim, and one or more
/// tables with commentary.
#[derive(Clone, Debug, Default)]
pub struct Report {
    sections: Vec<String>,
}

impl Report {
    /// Starts an empty report.
    #[must_use]
    pub fn new() -> Self {
        Report::default()
    }

    /// Adds a `###` heading.
    pub fn heading(&mut self, text: &str) -> &mut Self {
        self.sections.push(format!("### {text}\n"));
        self
    }

    /// Adds a paragraph.
    pub fn para(&mut self, text: &str) -> &mut Self {
        self.sections.push(format!("{text}\n"));
        self
    }

    /// Adds a finished table.
    pub fn table(&mut self, table: &Table) -> &mut Self {
        self.sections.push(table.to_markdown());
        self
    }

    /// Renders the report as markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        self.sections.join("\n")
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

/// A simple column-aligned markdown table builder.
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics on a width mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders as column-aligned markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            let _ = write!(out, "|");
            for i in 0..ncol {
                let _ = write!(out, " {:width$} |", cells[i], width = widths[i]);
            }
            let _ = writeln!(out);
        };
        render_row(&mut out, &self.header);
        let _ = write!(out, "|");
        for w in &widths {
            let _ = write!(out, "{:-<width$}|", "", width = w + 2);
        }
        let _ = writeln!(out);
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Renders the non-zero entries of a per-event totals vector (indexed by
/// [`nbsp_telemetry::Event`]) as a table, with a per-operation column when
/// `ops` is known. Shared by the E11 report and `exp_contention`'s
/// per-cell `--quick` output.
#[must_use]
pub fn event_table(totals: &[u64; nbsp_telemetry::EVENT_COUNT], ops: Option<u64>) -> Table {
    let mut t = if ops.is_some() {
        Table::new(vec!["event", "count", "per op"])
    } else {
        Table::new(vec!["event", "count"])
    };
    for e in nbsp_telemetry::Event::ALL {
        let n = totals[e.index()];
        if n == 0 {
            continue;
        }
        match ops {
            Some(ops) if ops > 0 => {
                t.row([
                    e.name().to_string(),
                    n.to_string(),
                    format!("{:.3}", n as f64 / ops as f64),
                ]);
            }
            Some(_) => {
                t.row([e.name().to_string(), n.to_string(), "-".to_string()]);
            }
            None => {
                t.row([e.name().to_string(), n.to_string()]);
            }
        }
    }
    t
}

/// Formats a nanosecond quantity compactly.
#[must_use]
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Formats an operations-per-second quantity compactly.
#[must_use]
pub fn fmt_ops(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1e6 {
        format!("{:.2} Mops/s", ops_per_sec / 1e6)
    } else if ops_per_sec >= 1e3 {
        format!("{:.1} kops/s", ops_per_sec / 1e3)
    } else {
        format!("{ops_per_sec:.0} ops/s")
    }
}

/// Formats a duration in human units (for the wraparound table, whose
/// entries range from milliseconds to geological time).
#[must_use]
pub fn fmt_duration_secs(secs: f64) -> String {
    const YEAR: f64 = 365.25 * 24.0 * 3600.0;
    if secs.is_infinite() {
        "∞".to_string()
    } else if secs < 1.0 {
        format!("{:.1} ms", secs * 1e3)
    } else if secs < 60.0 {
        format!("{secs:.1} s")
    } else if secs < 3600.0 {
        format!("{:.1} min", secs / 60.0)
    } else if secs < 86_400.0 {
        format!("{:.1} h", secs / 3600.0)
    } else if secs < YEAR {
        format!("{:.1} days", secs / 86_400.0)
    } else if secs < 1e6 * YEAR {
        format!("{:.1} years", secs / YEAR)
    } else {
        format!("{:.2e} years", secs / YEAR)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new(["impl", "ns/op"]);
        t.row(["figure 4", "12.3"]);
        t.row(["lock", "45.6"]);
        let md = t.to_markdown();
        assert!(md.contains("| impl     | ns/op |"));
        assert!(md.lines().nth(1).unwrap().starts_with("|--"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn report_concatenates_sections() {
        let mut r = Report::new();
        r.heading("E1").para("claim").table(Table::new(["x"]).row(["1"]));
        let md = r.to_markdown();
        assert!(md.starts_with("### E1"));
        assert!(md.contains("claim"));
        assert!(md.contains("| x |"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(1_234.0), "1.23 µs");
        assert_eq!(fmt_ns(12_345_678.0), "12.35 ms");
        assert_eq!(fmt_ops(2.5e6), "2.50 Mops/s");
        assert_eq!(fmt_ops(2.5e3), "2.5 kops/s");
        assert_eq!(fmt_ops(42.0), "42 ops/s");
        assert_eq!(fmt_duration_secs(0.5), "500.0 ms");
        assert_eq!(fmt_duration_secs(90.0), "1.5 min");
        assert!(fmt_duration_secs(9.0 * 365.25 * 24.0 * 3600.0).contains("years"));
        assert_eq!(fmt_duration_secs(f64::INFINITY), "∞");
    }
}
