//! **E8 — the keep-pointer interface ablation** (§3.2).
//!
//! The paper's second contribution is an interface change: LL takes a
//! pointer to a private word, VL/SC get that word back. Without it, an
//! implementation must *associate* each in-flight sequence with its
//! process and variable somehow, paying either space (a per-variable
//! keep array: Θ(NT) words) or time (a searchable registry — which also
//! reintroduces blocking). This experiment measures all three.

use nbsp_core::keep_search::{KeepRegistry, PerVarKeepVar, RegistryKeepVar};
use nbsp_core::{CasLlSc, Keep, Native, TagLayout};
use nbsp_memsim::ProcId;

use crate::measure::{ns_per_op, throughput};
use crate::report::{fmt_ns, fmt_ops, Report, Table};

/// Latency of one uncontended LL;SC cycle per association mechanism.
#[derive(Clone, Copy, Debug)]
pub struct InterfacePoint {
    /// Keep-pointer (the paper's interface).
    pub keep_pointer_ns: f64,
    /// Per-variable keep array.
    pub keep_array_ns: f64,
    /// Shared registry (hash map under a lock).
    pub registry_ns: f64,
}

/// Measures uncontended latency with `live` *other* live sequences in the
/// registry (lookup pressure).
#[must_use]
pub fn measure_latency(iters: u64, live: usize) -> InterfacePoint {
    const N: usize = 16;
    let layout = TagLayout::half();

    let v = CasLlSc::new_native(layout, 0).unwrap();
    let keep_pointer_ns = ns_per_op(iters, 3, || {
        let mut keep = Keep::default();
        let x = v.ll(&Native, &mut keep);
        let ok = v.sc(&Native, &keep, (x + 1) & 0xFFFF);
        debug_assert!(ok);
    });

    let v = PerVarKeepVar::new(N, layout, 0).unwrap();
    let p = ProcId::new(0);
    let keep_array_ns = ns_per_op(iters, 3, || {
        let x = v.ll(p);
        let ok = v.sc(p, (x + 1) & 0xFFFF);
        debug_assert!(ok);
    });

    let registry = KeepRegistry::new();
    // Fill the registry with `live` in-flight sequences on other variables.
    let others: Vec<RegistryKeepVar> = (0..live)
        .map(|_| RegistryKeepVar::new(&registry, N, layout, 0).unwrap())
        .collect();
    for (i, o) in others.iter().enumerate() {
        let _ = o.ll(ProcId::new(i % N));
    }
    let v = RegistryKeepVar::new(&registry, N, layout, 0).unwrap();
    let registry_ns = ns_per_op(iters, 3, || {
        let x = v.ll(p);
        let ok = v.sc(p, (x + 1) & 0xFFFF);
        debug_assert!(ok);
    });

    InterfacePoint {
        keep_pointer_ns,
        keep_array_ns,
        registry_ns,
    }
}

/// Multi-thread throughput on disjoint variables: the registry serialises
/// unrelated operations through its lock; the keep-pointer version does
/// not.
#[must_use]
pub fn disjoint_throughput(threads: usize, iters: u64) -> (f64, f64) {
    let layout = TagLayout::half();
    let vars: Vec<CasLlSc<Native>> = (0..threads)
        .map(|_| CasLlSc::new_native(layout, 0).unwrap())
        .collect();
    let keep_ptr = throughput(threads, iters, |tid| {
        let v = &vars[tid];
        move || {
            let mut keep = Keep::default();
            let x = v.ll(&Native, &mut keep);
            let _ = v.sc(&Native, &keep, (x + 1) & 0xFFFF);
        }
    });

    let registry = KeepRegistry::new();
    let rvars: Vec<RegistryKeepVar> = (0..threads)
        .map(|_| RegistryKeepVar::new(&registry, threads, layout, 0).unwrap())
        .collect();
    let reg = throughput(threads, iters, |tid| {
        let v = &rvars[tid];
        let p = ProcId::new(tid);
        move || {
            let x = v.ll(p);
            let _ = v.sc(p, (x + 1) & 0xFFFF);
        }
    });
    (keep_ptr, reg)
}

/// Runs E8.
#[must_use]
pub fn run(iters: u64) -> Report {
    let mut report = Report::new();
    report.heading("E8 — what the keep-pointer interface buys (§3.2)");
    report.para(
        "Paper claim: passing a private keep word to LL avoids \"a \
         fundamental space-time tradeoff that would render the \
         implementation impractical\". Latency of an uncontended LL;SC \
         cycle under each association mechanism:",
    );
    let mut t = Table::new([
        "association mechanism",
        "ns/cycle (idle registry)",
        "ns/cycle (4096 live seqs)",
        "space for T vars, N=16",
    ]);
    let idle = measure_latency(iters, 0);
    let loaded = measure_latency(iters, 4096);
    t.row([
        "keep pointer (paper)".to_string(),
        fmt_ns(idle.keep_pointer_ns),
        fmt_ns(loaded.keep_pointer_ns),
        "0".to_string(),
    ]);
    t.row([
        "per-var keep array".to_string(),
        fmt_ns(idle.keep_array_ns),
        fmt_ns(loaded.keep_array_ns),
        "16·T words".to_string(),
    ]);
    t.row([
        "shared registry (lock + hash)".to_string(),
        fmt_ns(idle.registry_ns),
        fmt_ns(loaded.registry_ns),
        "dyn (+ blocking!)".to_string(),
    ]);
    report.table(&t);

    report.para(
        "Disjoint-access scalability: 4 threads on 4 *unrelated* variables. \
         The registry's lock serialises them; the paper's interface keeps \
         them independent (disjoint access parallelism, §5):",
    );
    let (kp, reg) = disjoint_throughput(4, iters);
    let mut t2 = Table::new(["mechanism", "4-thread disjoint throughput"]);
    t2.row(["keep pointer (paper)".to_string(), fmt_ops(kp)]);
    t2.row(["shared registry".to_string(), fmt_ops(reg)]);
    report.table(&t2);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_pointer_is_not_slower_than_registry() {
        let p = measure_latency(20_000, 256);
        assert!(
            p.keep_pointer_ns < p.registry_ns,
            "registry lookup should cost more: {p:?}"
        );
    }

    #[test]
    fn disjoint_scaling_favors_keep_pointer() {
        let (kp, reg) = disjoint_throughput(4, 50_000);
        assert!(
            kp > reg,
            "lock-serialised registry should not beat disjoint access: {kp} vs {reg}"
        );
    }

    #[test]
    fn report_smoke() {
        let md = run(2_000).to_markdown();
        assert!(md.contains("E8"));
        assert!(md.contains("keep pointer"));
    }
}
