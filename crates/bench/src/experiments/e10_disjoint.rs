//! **E10 — disjoint-access parallelism** (§5).
//!
//! > *"Our first three implementations are disjoint access parallel \[10\].
//! > Roughly, this means that memory contention is not introduced by these
//! > implementations. While our other two implementations are not disjoint
//! > access parallel, we believe that it is unlikely that they will
//! > introduce excessive contention because accesses to common variables
//! > are not concentrated in any one area."*
//!
//! Disjoint-access parallelism is a property of *which words operations
//! touch*, so it is measured here exactly that way — host-independently —
//! using the simulator's instruction traces: two processes run LL;SC
//! cycles on two **different** variables, and we intersect the sets of
//! addresses they accessed. A DAP construction has an empty intersection;
//! Figures 6 and 7 share announce-array words (the paper's admission), and
//! the table quantifies how many.

use std::collections::BTreeSet;

use nbsp_core::bounded::BoundedDomain;
use nbsp_core::wide::{WideDomain, WideKeep};
use nbsp_core::{CasLlSc, EmuCasWord, Keep, RllLlSc, SimCas, SimFamily, TagLayout};
use nbsp_memsim::{InstructionSet, Machine, ProcId, Processor};

use crate::report::{Report, Table};

/// Shared-address analysis for one construction: each process ran `ops`
/// operations on its own variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Footprint {
    /// Words touched by both processes.
    pub shared: usize,
    /// Words touched in total.
    pub union: usize,
}

impl Footprint {
    /// True iff the construction behaved disjoint-access parallel in this
    /// run.
    #[must_use]
    pub fn is_disjoint(&self) -> bool {
        self.shared == 0
    }
}

fn traced_machine(n: usize, isa: InstructionSet) -> Machine {
    Machine::builder(n)
        .instruction_set(isa)
        .trace_depth(1 << 16)
        .build()
}

fn footprints(procs: &[Processor]) -> Footprint {
    let sets: Vec<BTreeSet<usize>> = procs
        .iter()
        .map(|p| p.trace().iter().map(|e| e.addr).collect())
        .collect();
    let union: BTreeSet<usize> = sets.iter().flatten().copied().collect();
    let shared: BTreeSet<usize> = sets[0].intersection(&sets[1]).copied().collect();
    Footprint {
        shared: shared.len(),
        union: union.len(),
    }
}

/// Figure 3 (emulated CAS): two processes CAS-increment disjoint words.
#[must_use]
pub fn fig3_footprint(ops: u64) -> Footprint {
    let m = traced_machine(2, InstructionSet::RllRscOnly);
    let procs = m.processors();
    let vars = [
        EmuCasWord::new(TagLayout::half(), 0).unwrap(),
        EmuCasWord::new(TagLayout::half(), 0).unwrap(),
    ];
    for (p, v) in procs.iter().zip(&vars) {
        for i in 0..ops {
            assert!(v.cas(p, i, i + 1));
        }
    }
    footprints(&procs)
}

/// Figure 4 over simulated CAS: two processes on disjoint variables.
#[must_use]
pub fn fig4_footprint(ops: u64) -> Footprint {
    let m = traced_machine(2, InstructionSet::CasOnly);
    let procs = m.processors();
    let vars = [
        CasLlSc::<SimFamily>::new(TagLayout::half(), 0).unwrap(),
        CasLlSc::<SimFamily>::new(TagLayout::half(), 0).unwrap(),
    ];
    for (p, v) in procs.iter().zip(&vars) {
        let mem = SimCas::new(p);
        for _ in 0..ops {
            let mut keep = Keep::default();
            let x = v.ll(&mem, &mut keep);
            assert!(v.sc(&mem, &keep, x + 1));
        }
    }
    footprints(&procs)
}

/// Figure 5: two processes on disjoint variables.
#[must_use]
pub fn fig5_footprint(ops: u64) -> Footprint {
    let m = traced_machine(2, InstructionSet::RllRscOnly);
    let procs = m.processors();
    let vars = [
        RllLlSc::new(TagLayout::half(), 0).unwrap(),
        RllLlSc::new(TagLayout::half(), 0).unwrap(),
    ];
    for (p, v) in procs.iter().zip(&vars) {
        for _ in 0..ops {
            let mut keep = Keep::default();
            let x = v.ll(p, &mut keep);
            assert!(v.sc(p, &keep, x + 1));
        }
    }
    footprints(&procs)
}

/// Figure 6: two processes on disjoint wide variables of one domain.
#[must_use]
pub fn fig6_footprint(ops: u64) -> Footprint {
    const W: usize = 4;
    let m = traced_machine(2, InstructionSet::CasOnly);
    let procs = m.processors();
    let d = WideDomain::<SimFamily>::new(2, W, 32).unwrap();
    let vars = [d.var(&[0; W]).unwrap(), d.var(&[0; W]).unwrap()];
    for (i, (p, v)) in procs.iter().zip(&vars).enumerate() {
        let mem = SimCas::new(p);
        let pid = ProcId::new(i);
        for _ in 0..ops {
            let mut keep = WideKeep::default();
            let mut buf = [0u64; W];
            assert!(v.wll(&mem, &mut keep, &mut buf).is_success());
            assert!(v.sc(&mem, pid, &keep, &[buf[0] + 1; W]));
        }
    }
    footprints(&procs)
}

/// Figure 7: two processes on disjoint bounded variables of one domain.
#[must_use]
pub fn fig7_footprint(ops: u64) -> Footprint {
    let m = traced_machine(2, InstructionSet::CasOnly);
    let procs = m.processors();
    let d = BoundedDomain::<SimFamily>::new(2, 2).unwrap();
    let vars = [d.var(0).unwrap(), d.var(0).unwrap()];
    let mut states: Vec<_> = (0..2).map(|i| d.proc(i)).collect();
    for (i, p) in procs.iter().enumerate() {
        let mem = SimCas::new(p);
        for _ in 0..ops {
            let (x, keep) = vars[i].ll(&mem, &mut states[i]);
            assert!(vars[i].sc(&mem, &mut states[i], keep, x + 1));
        }
    }
    footprints(&procs)
}

/// Runs E10.
#[must_use]
pub fn run(ops: u64) -> Report {
    let mut report = Report::new();
    report.heading("E10 — disjoint-access parallelism (§5)");
    report.para(
        "Paper claim: Figures 3/4/5 are disjoint-access parallel (DAP); \
         Figures 6/7 are not, but their shared accesses \"are not \
         concentrated in any one area\". Measured directly from simulator \
         traces: two processes each run LL;SC cycles on their *own* \
         variable; the table counts distinct words touched by both. DAP = \
         zero shared words; for Figures 6/7 the shared words are the \
         domain's announce arrays — a few words out of many, confirming \
         \"not concentrated\".",
    );
    let mut t = Table::new([
        "construction",
        "shared words",
        "total words touched",
        "disjoint-access parallel?",
    ]);
    type Runner = fn(u64) -> Footprint;
    let rows: [(&str, Runner); 5] = [
        ("Figure 3 (CAS from RLL/RSC)", fig3_footprint),
        ("Figure 4 (LL/VL/SC from CAS)", fig4_footprint),
        ("Figure 5 (LL/VL/SC from RLL/RSC)", fig5_footprint),
        ("Figure 6 (W=4, helping-only sharing)", fig6_footprint),
        ("Figure 7 (shared announce + scan)", fig7_footprint),
    ];
    for (name, f) in rows {
        let fp = f(ops);
        t.row([
            name.to_string(),
            fp.shared.to_string(),
            fp.union.to_string(),
            if fp.is_disjoint() { "yes" } else { "no" }.to_string(),
        ]);
    }
    report.table(&t);
    report.para(
        "Expected shape: zero shared words for Figures 3/4/5 — the paper's \
         DAP claim, with the trace proving the code matches it. Figure 7 \
         is *structurally* non-DAP: every SC scans the shared announce \
         array, so shared words appear even in this uncontended run. \
         Figure 6 refines the paper's blanket \"not DAP\" statement: its \
         cross-variable sharing arises only *while helping an interrupted \
         SC* (a reader touching the owner's announce row), so an \
         uncontended disjoint run shows zero shared words — the sharing is \
         transient, which is the strongest form of the paper's \"not \
         concentrated in any one area\" expectation. The helping \
         interleavings themselves are covered exhaustively by \
         exp_modelcheck.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_three_constructions_are_dap() {
        assert!(fig3_footprint(200).is_disjoint());
        assert!(fig4_footprint(200).is_disjoint());
        assert!(fig5_footprint(200).is_disjoint());
    }

    #[test]
    fn figure7_is_structurally_non_dap() {
        // Every Figure-7 SC scans the shared announce array, so disjoint
        // variables still share words.
        let f7 = fig7_footprint(100);
        assert!(!f7.is_disjoint(), "{f7:?}");
        // …but the shared portion is small relative to the total — the
        // paper's "not concentrated in any one area".
        assert!(f7.shared < f7.union, "{f7:?}");
    }

    #[test]
    fn figure6_shares_only_while_helping() {
        // Without an interrupted SC to help, Figure 6's disjoint
        // operations touch no common words (a refinement of the paper's
        // blanket "not disjoint access parallel").
        let f6 = fig6_footprint(100);
        assert!(f6.is_disjoint(), "{f6:?}");
    }

    #[test]
    fn report_smoke() {
        let md = run(100).to_markdown();
        assert!(md.contains("E10"));
        assert!(md.contains("disjoint-access parallel?"));
    }
}
