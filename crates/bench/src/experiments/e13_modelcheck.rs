//! E13: DPOR model checking of the real registry providers. See
//! `EXPERIMENTS.md`.
//!
//! Where the `exp_modelcheck` certificates check *re-implementations* of
//! the paper's figures (explicit step machines in `nbsp-linearize`), this
//! experiment schedule-controls the **shipped providers themselves**:
//! every [`ProviderId`](nbsp_core::ProviderId) registry entry is run on
//! real OS threads under `nbsp-check`'s cooperative scheduler, every
//! interleaving of its shared accesses is enumerated with dynamic
//! partial-order reduction (spurious RSC failures included as explicit
//! scheduler branches), and every distinct history is checked against the
//! Figure-2 sequential specification.
//!
//! Four deterministic gates:
//! * every provider × configuration completes exhaustively (no cap) with
//!   no violation;
//! * DPOR prunes at least [`MIN_PRUNING_RATIO`]× versus the naive full
//!   DFS on the designated ratio configuration;
//! * the planted tag-drop provider (`nbsp_check::planted`) is caught with
//!   a concrete violating schedule — the checker is not vacuous;
//! * multi-word LLX/SCX commits (`nbsp_check::llx`) conserve exhaustively
//!   on the overlap program, and the planted lost-freeze domain is caught
//!   with the same counterexample schedule on two independent
//!   explorations.
//!
//! Configurations scale per provider by measured cost, not by name: every
//! provider runs the base configuration; providers whose base run costs
//! more than [`HEAVY_THRESHOLD`] executions skip the larger
//! configurations (recorded as skipped, deterministically — cost depends
//! only on the provider's access pattern). Weak-primitive-tier providers
//! also stop at the base configuration: their base counts are tiny
//! (await-parking collapses the blocking waits), but every emulated
//! CAS/LL/SC expands into many schedule points, so the 3-process
//! configuration's interleaving space is intractable rather than merely
//! heavy. Their base-configuration DPOR verdict is (re-)gated in E16.

use nbsp_check::planted::{aba_program, PlantedTagDrop};
use nbsp_check::{
    check, check_conservation, check_lost_freeze, llx::overlap_program, Mode, Outcome, PlanOp,
    Program,
};
use nbsp_core::Provider;

use crate::report::{Report, Table};

/// Executions+blocked of the base configuration above which a provider is
/// considered heavy and skips the larger configurations.
pub const HEAVY_THRESHOLD: u64 = 20_000;

/// Hard cap per (provider, configuration) exploration; hitting it fails
/// the exhaustiveness gate.
pub const MAX_EXECUTIONS: u64 = 400_000;

/// The pruning-ratio gate: naive/DPOR executions on the ratio
/// configuration must be at least this.
pub const MIN_PRUNING_RATIO: f64 = 2.0;

/// A named small configuration.
#[derive(Clone, Debug)]
pub struct ConfigSpec {
    /// Stable name used in the report and JSON.
    pub name: &'static str,
    /// The program to explore.
    pub program: Program,
}

/// The configuration ladder. The base (first) configuration runs for
/// every provider and includes a spurious-failure budget so RSC-based
/// providers get their adversary enumerated; the rest widen the program
/// and the process count.
#[must_use]
pub fn configs() -> Vec<ConfigSpec> {
    vec![
        ConfigSpec {
            name: "c1-2p-ll.sc-spurious1",
            program: Program {
                initial: 0,
                plans: vec![
                    vec![PlanOp::Ll, PlanOp::Sc(1)],
                    vec![PlanOp::Ll, PlanOp::Sc(2)],
                ],
                spurious_budget: 1,
            },
        },
        ConfigSpec {
            name: "c2-2p-mixed",
            program: Program {
                initial: 0,
                plans: vec![
                    vec![PlanOp::Ll, PlanOp::Vl, PlanOp::Sc(1)],
                    vec![PlanOp::Ll, PlanOp::Sc(2), PlanOp::Read],
                ],
                spurious_budget: 0,
            },
        },
        ConfigSpec {
            name: "c3-3p-ll.sc",
            program: Program {
                initial: 0,
                plans: vec![
                    vec![PlanOp::Ll, PlanOp::Sc(1)],
                    vec![PlanOp::Ll, PlanOp::Sc(2)],
                    vec![PlanOp::Ll, PlanOp::Sc(3)],
                ],
                spurious_budget: 0,
            },
        },
    ]
}

/// The configuration on which the pruning ratio is measured and gated:
/// LL and VL are loads, so the read-heavy prefixes commute and the
/// reduction has real races to prune.
#[must_use]
pub fn ratio_config() -> ConfigSpec {
    ConfigSpec {
        name: "ratio-2p-ll.vl.vl.sc",
        program: Program {
            initial: 0,
            plans: vec![
                vec![PlanOp::Ll, PlanOp::Vl, PlanOp::Vl, PlanOp::Sc(1)],
                vec![PlanOp::Ll, PlanOp::Vl, PlanOp::Vl, PlanOp::Sc(2)],
            ],
            spurious_budget: 0,
        },
    }
}

/// One provider × configuration result.
#[derive(Clone, Debug)]
pub struct ConfigResult {
    /// Configuration name.
    pub config: &'static str,
    /// `None` iff skipped (heavy provider or `--quick`).
    pub outcome: Option<Outcome>,
}

/// One provider's sweep row.
#[derive(Clone, Debug)]
pub struct ProviderRow {
    /// Registry name.
    pub provider: &'static str,
    /// One entry per ladder configuration.
    pub results: Vec<ConfigResult>,
}

/// The measured pruning ratio.
#[derive(Clone, Debug)]
pub struct RatioResult {
    /// Provider measured (the default Figure-4 entry).
    pub provider: &'static str,
    /// Configuration name.
    pub config: &'static str,
    /// Naive full-DFS executions.
    pub naive_executions: u64,
    /// DPOR completed executions.
    pub dpor_executions: u64,
    /// DPOR sleep-blocked (abandoned) executions.
    pub dpor_sleep_blocked: u64,
}

impl RatioResult {
    /// naive / (DPOR completed + abandoned).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        let denom = self.dpor_executions + self.dpor_sleep_blocked;
        if denom == 0 {
            return 0.0;
        }
        self.naive_executions as f64 / denom as f64
    }
}

/// The planted-bug (non-vacuity) result.
#[derive(Clone, Debug)]
pub struct PlantedResult {
    /// Whether a violating schedule was found (it must be).
    pub found: bool,
    /// Completed executions until the violation surfaced.
    pub executions: u64,
    /// Length of the counterexample schedule.
    pub schedule_len: usize,
}

/// The multi-word LLX/SCX gate data: the overlap program (two SCXs whose
/// linked sets intersect on the written record) explored exhaustively on
/// the default Figure-4 provider, judged by conservation, plus the
/// planted lost-freeze domain — which must be caught with the *same*
/// counterexample schedule on two independent explorations.
#[derive(Clone, Debug)]
pub struct LlxResult {
    /// Exhaustive conservation exploration of the faithful protocol.
    pub conserve: Outcome,
    /// Completed executions until the lost-freeze violation surfaced.
    pub flawed_executions: u64,
    /// Whether the lost-freeze canary was caught (it must be).
    pub flawed_found: bool,
    /// Length of the lost-freeze counterexample schedule.
    pub flawed_schedule_len: usize,
    /// Whether two independent explorations produced identical
    /// counterexample schedules.
    pub deterministic: bool,
}

/// Everything E13 measures.
#[derive(Clone, Debug)]
pub struct E13Results {
    /// Per-provider sweep.
    pub rows: Vec<ProviderRow>,
    /// Pruning-ratio gate data.
    pub ratio: RatioResult,
    /// Non-vacuity gate data.
    pub planted: PlantedResult,
    /// Multi-word LLX/SCX gate data.
    pub llx: LlxResult,
    /// Whether the sweep ran in quick mode (base configuration only).
    pub quick: bool,
}

fn check_provider<P: Provider>(quick: bool) -> ProviderRow {
    let provider = <P as Provider>::ID.name();
    let ladder = configs();
    let mut results = Vec::with_capacity(ladder.len());
    // Weak-primitive emulations expand every op into many schedule
    // points; their base run is cheap but the 3-process configuration is
    // intractable, so they stop at the base rung (module doc).
    let weak = matches!(
        <P as Provider>::ID.meta().tier,
        nbsp_core::provider::Tier::WeakPrimitive
    );
    let mut heavy = false;
    for (i, cfg) in ladder.iter().enumerate() {
        let skip = ((quick || weak) && i > 0) || heavy;
        if skip {
            results.push(ConfigResult {
                config: cfg.name,
                outcome: None,
            });
            continue;
        }
        let out = check::<P>(&cfg.program, Mode::Dpor, MAX_EXECUTIONS)
            .unwrap_or_else(|e| panic!("{provider}: building the environment failed: {e}"));
        if i == 0 && out.executions + out.sleep_blocked > HEAVY_THRESHOLD {
            heavy = true;
        }
        results.push(ConfigResult {
            config: cfg.name,
            outcome: Some(out),
        });
    }
    ProviderRow { provider, results }
}

/// Runs the full sweep, the ratio measurement and the planted-bug check.
#[must_use]
pub fn collect(quick: bool) -> E13Results {
    let mut rows: Vec<ProviderRow> = Vec::new();
    macro_rules! sweep {
        ($name:ident, $ty:ty) => {
            rows.push(check_provider::<$ty>(quick));
        };
    }
    nbsp_core::for_each_provider!(sweep);

    let rc = ratio_config();
    let naive = check::<nbsp_core::provider::Fig4Native>(&rc.program, Mode::Naive, MAX_EXECUTIONS)
        .expect("native env is infallible");
    let dpor = check::<nbsp_core::provider::Fig4Native>(&rc.program, Mode::Dpor, MAX_EXECUTIONS)
        .expect("native env is infallible");
    assert!(
        naive.violation.is_none() && dpor.violation.is_none(),
        "the ratio configuration must be violation-free"
    );
    let ratio = RatioResult {
        provider: <nbsp_core::provider::Fig4Native as Provider>::ID.name(),
        config: rc.name,
        naive_executions: naive.executions,
        dpor_executions: dpor.executions,
        dpor_sleep_blocked: dpor.sleep_blocked,
    };

    let planted_out = check::<PlantedTagDrop>(&aba_program(), Mode::Dpor, MAX_EXECUTIONS)
        .expect("planted env is infallible");
    let planted = PlantedResult {
        found: planted_out.violation.is_some(),
        executions: planted_out.executions,
        schedule_len: planted_out
            .violation
            .as_ref()
            .map_or(0, |v| v.schedule.len()),
    };

    let lp = overlap_program();
    let conserve =
        check_conservation::<nbsp_core::provider::Fig4Native>(&lp, Mode::Dpor, MAX_EXECUTIONS)
            .expect("native env is infallible");
    let f1 = check_lost_freeze::<nbsp_core::provider::Fig4Native>(&lp, Mode::Dpor, MAX_EXECUTIONS)
        .expect("native env is infallible");
    let f2 = check_lost_freeze::<nbsp_core::provider::Fig4Native>(&lp, Mode::Dpor, MAX_EXECUTIONS)
        .expect("native env is infallible");
    let llx = LlxResult {
        flawed_executions: f1.executions,
        flawed_found: f1.violation.is_some(),
        flawed_schedule_len: f1.violation.as_ref().map_or(0, |v| v.schedule.len()),
        deterministic: match (&f1.violation, &f2.violation) {
            (Some(a), Some(b)) => a.schedule == b.schedule,
            _ => false,
        },
        conserve,
    };

    E13Results {
        rows,
        ratio,
        planted,
        llx,
        quick,
    }
}

/// Renders the markdown report.
#[must_use]
pub fn render(r: &E13Results) -> Report {
    let mut report = Report::new();
    report.heading("E13: DPOR model checking of the real providers");
    report.para(&format!(
        "Every registry provider, exhaustively explored under the cooperative \
         scheduler (DPOR + sleep sets; spurious RSC failures enumerated); every \
         distinct history checked against the Figure-2 specification. \
         quick = {}.",
        r.quick
    ));
    let mut t = Table::new([
        "provider",
        "config",
        "executions",
        "blocked",
        "unique histories",
        "verdict",
    ]);
    for row in &r.rows {
        for cr in &row.results {
            match &cr.outcome {
                None => {
                    t.row([row.provider, cr.config, "-", "-", "-", "skipped"]);
                }
                Some(out) => {
                    let verdict = if out.violation.is_some() {
                        "VIOLATION"
                    } else if out.capped {
                        "capped"
                    } else {
                        "linearizable"
                    };
                    t.row([
                        row.provider.to_string(),
                        cr.config.to_string(),
                        out.executions.to_string(),
                        out.sleep_blocked.to_string(),
                        out.unique_histories.to_string(),
                        verdict.to_string(),
                    ]);
                }
            }
        }
    }
    report.table(&t);
    report.para(&format!(
        "Pruning: naive DFS explores {} executions on {} where DPOR explores {} \
         (+{} abandoned) — a {:.2}x reduction (gate: >= {MIN_PRUNING_RATIO}x).",
        r.ratio.naive_executions,
        r.ratio.config,
        r.ratio.dpor_executions,
        r.ratio.dpor_sleep_blocked,
        r.ratio.ratio(),
    ));
    report.para(&format!(
        "Non-vacuity: the planted tag-drop provider was {} after {} executions \
         (counterexample schedule of {} decisions).",
        if r.planted.found { "caught" } else { "MISSED" },
        r.planted.executions,
        r.planted.schedule_len,
    ));
    report.para(&format!(
        "Multi-word LLX/SCX: the two-SCX overlap program conserved across {} \
         executions ({} blocked) on fig4-native — every interleaving of the \
         freeze/write/settle/release protocol — and the planted lost-freeze \
         domain was {} after {} executions (schedule of {} decisions, \
         deterministic across two explorations: {}).",
        r.llx.conserve.executions,
        r.llx.conserve.sleep_blocked,
        if r.llx.flawed_found { "caught" } else { "MISSED" },
        r.llx.flawed_executions,
        r.llx.flawed_schedule_len,
        r.llx.deterministic,
    ));
    report
}

/// JSON artifact for CI (`BENCH_modelcheck.json` is written by the
/// `exp_modelcheck` binary).
#[must_use]
pub fn to_json(r: &E13Results) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema_version\": 1,\n");
    s.push_str("  \"experiment\": \"modelcheck\",\n");
    s.push_str(&format!("  \"quick\": {},\n", r.quick));
    s.push_str("  \"providers\": [\n");
    for (i, row) in r.rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"provider\": \"{}\", \"configs\": [\n",
            row.provider
        ));
        for (j, cr) in row.results.iter().enumerate() {
            let comma = if j + 1 == row.results.len() { "" } else { "," };
            match &cr.outcome {
                None => s.push_str(&format!(
                    "      {{\"config\": \"{}\", \"skipped\": true}}{comma}\n",
                    cr.config
                )),
                Some(out) => s.push_str(&format!(
                    "      {{\"config\": \"{}\", \"skipped\": false, \"executions\": {}, \
                     \"sleep_blocked\": {}, \"unique_histories\": {}, \"lin_checks\": {}, \
                     \"steps\": {}, \"capped\": {}, \"violation\": {}}}{comma}\n",
                    cr.config,
                    out.executions,
                    out.sleep_blocked,
                    out.unique_histories,
                    out.lin_checks,
                    out.steps,
                    out.capped,
                    out.violation.is_some(),
                )),
            }
        }
        s.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 == r.rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"pruning\": {{\"provider\": \"{}\", \"config\": \"{}\", \
         \"naive_executions\": {}, \"dpor_executions\": {}, \"dpor_sleep_blocked\": {}, \
         \"ratio\": {:.4}, \"min_ratio\": {MIN_PRUNING_RATIO}}},\n",
        r.ratio.provider,
        r.ratio.config,
        r.ratio.naive_executions,
        r.ratio.dpor_executions,
        r.ratio.dpor_sleep_blocked,
        r.ratio.ratio(),
    ));
    s.push_str(&format!(
        "  \"planted\": {{\"found\": {}, \"executions\": {}, \"schedule_len\": {}}},\n",
        r.planted.found, r.planted.executions, r.planted.schedule_len,
    ));
    s.push_str(&format!(
        "  \"llx\": {{\"conserve_executions\": {}, \"conserve_blocked\": {}, \
         \"conserve_violation\": {}, \"conserve_capped\": {}, \"flawed_found\": {}, \
         \"flawed_executions\": {}, \"flawed_schedule_len\": {}, \"deterministic\": {}}}\n",
        r.llx.conserve.executions,
        r.llx.conserve.sleep_blocked,
        r.llx.conserve.violation.is_some(),
        r.llx.conserve.capped,
        r.llx.flawed_found,
        r.llx.flawed_executions,
        r.llx.flawed_schedule_len,
        r.llx.deterministic,
    ));
    s.push_str("}\n");
    s
}

/// Enforces the three gates; panics (→ nonzero exit) on any failure.
pub fn enforce(r: &E13Results) {
    for row in &r.rows {
        for cr in &row.results {
            if let Some(out) = &cr.outcome {
                assert!(
                    out.violation.is_none(),
                    "{} violated linearizability on {} — schedule: {:?}",
                    row.provider,
                    cr.config,
                    out.violation.as_ref().map(|v| &v.schedule),
                );
                assert!(
                    !out.capped,
                    "{} did not finish {} within {MAX_EXECUTIONS} executions",
                    row.provider,
                    cr.config,
                );
            }
        }
        assert!(
            row.results.first().is_some_and(|cr| cr.outcome.is_some()),
            "{} must run the base configuration",
            row.provider,
        );
    }
    assert!(
        r.ratio.ratio() >= MIN_PRUNING_RATIO,
        "pruning ratio {:.2} below the {MIN_PRUNING_RATIO} gate ({} naive vs {}+{} DPOR)",
        r.ratio.ratio(),
        r.ratio.naive_executions,
        r.ratio.dpor_executions,
        r.ratio.dpor_sleep_blocked,
    );
    assert!(
        r.planted.found,
        "the planted tag-drop bug was not caught — the checker is vacuous"
    );
    assert!(
        r.llx.conserve.violation.is_none(),
        "the faithful LLX/SCX overlap program lost an update"
    );
    assert!(
        !r.llx.conserve.capped,
        "the LLX/SCX conservation exploration did not finish within {MAX_EXECUTIONS} executions"
    );
    assert!(
        r.llx.flawed_found,
        "the planted lost-freeze bug was not caught — multi-word commits are unchecked"
    );
    assert!(
        r.llx.deterministic,
        "the lost-freeze counterexample differed between explorations"
    );
}

/// Collect + render + enforce, for `exp_all`.
#[must_use]
pub fn run(quick: bool) -> Report {
    let r = collect(quick);
    let report = render(&r);
    enforce(&r);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_passes_all_gates() {
        let r = collect(true);
        assert_eq!(r.rows.len(), 17, "every registry entry is swept");
        enforce(&r);
        let json = to_json(&r);
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"planted\""));
        assert!(json.contains("\"llx\""));
        assert!(json.contains("\"flawed_found\": true"));
    }
}
