//! **E1 — time optimality** (Theorems 1–3).
//!
//! The theorems claim constant-time operations: the cost of an LL/VL/SC or
//! emulated CAS must not depend on the number of processes N (unlike, say,
//! the Figure-2 specification executed literally, whose SC clears N valid
//! bits — the lock baseline pays exactly that). Two measurements:
//!
//! * native wall-clock: ns/op for an uncontended LL;SC increment cycle,
//!   and total throughput under full contention, per implementation;
//! * simulated instruction counts: instructions per operation on the
//!   simulated machine, N ∈ {1..16}, uncontended — the machine-independent
//!   form of "constant time".

use nbsp_core::bounded::BoundedDomain;
use nbsp_core::lock_baseline::LockLlSc;
use nbsp_core::{CasLlSc, EmuCas, EmuCasWord, EmuFamily, Keep, Native, RllLlSc, TagLayout};
use nbsp_memsim::{CostModel, InstructionSet, Machine, ProcId, ProcStats};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::measure::{ns_per_op, throughput};
use crate::report::{fmt_ns, fmt_ops, Report, Table};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs E1 with `iters` operations per measurement (use ~200k for the
/// report, less for smoke tests).
#[must_use]
pub fn run(iters: u64) -> Report {
    let mut report = Report::new();
    report.heading("E1 — time optimality (Theorems 1–3)");
    report.para(
        "Paper claim: every operation is constant-time — independent of N \
         and of history length. The lock baseline implements Figure 2 \
         literally (its SC clears N valid bits), so it is the shape the \
         theorems improve on.",
    );

    // ------------------------------------------------------------------
    // Table 1: native wall-clock.
    // ------------------------------------------------------------------
    let mut t = Table::new(vec![
        "implementation".to_string(),
        "uncontended ns/op".to_string(),
        "contended throughput, 1/2/4/8 threads".to_string(),
    ]);

    // Raw hardware CAS loop — the floor.
    {
        let cell = AtomicU64::new(0);
        let ns = ns_per_op(iters, 3, || {
            let v = cell.load(Ordering::SeqCst);
            let _ = cell.compare_exchange(v, v + 1, Ordering::SeqCst, Ordering::SeqCst);
        });
        let tp: Vec<String> = THREAD_COUNTS
            .iter()
            .map(|&n| {
                let shared = AtomicU64::new(0);
                fmt_ops(throughput(n, iters / n as u64, |_| {
                    let shared = &shared;
                    move || loop {
                        let v = shared.load(Ordering::SeqCst);
                        if shared
                            .compare_exchange(v, v + 1, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                        {
                            break;
                        }
                    }
                }))
            })
            .collect();
        t.row(vec![
            "hardware CAS loop (floor)".to_string(),
            fmt_ns(ns),
            tp.join(" / "),
        ]);
    }

    // Figure 4 on native CAS.
    {
        let var = CasLlSc::new_native(TagLayout::half(), 0).unwrap();
        let ns = ns_per_op(iters, 3, || {
            let mut keep = Keep::default();
            let v = var.ll(&Native, &mut keep);
            let _ = var.sc(&Native, &keep, v + 1);
        });
        let tp: Vec<String> = THREAD_COUNTS
            .iter()
            .map(|&n| {
                let shared = CasLlSc::new_native(TagLayout::half(), 0).unwrap();
                fmt_ops(throughput(n, iters / n as u64, |_| {
                    let shared = &shared;
                    move || loop {
                        let mut keep = Keep::default();
                        let v = shared.ll(&Native, &mut keep);
                        if shared.sc(&Native, &keep, v + 1) {
                            break;
                        }
                    }
                }))
            })
            .collect();
        t.row(vec![
            "Figure 4: LL/VL/SC from CAS".to_string(),
            fmt_ns(ns),
            tp.join(" / "),
        ]);
    }

    // Figure 7 bounded tags (N = 16, k = 2).
    {
        let d = BoundedDomain::<Native>::new(16, 2).unwrap();
        let var = d.var(0).unwrap();
        let mut me = d.proc(0);
        let ns = ns_per_op(iters, 3, || {
            let (v, keep) = var.ll(&Native, &mut me);
            let _ = var.sc(&Native, &mut me, keep, v + 1);
        });
        let tp: Vec<String> = THREAD_COUNTS
            .iter()
            .map(|&n| {
                let d = BoundedDomain::<Native>::new(16, 2).unwrap();
                let shared = d.var(0).unwrap();
                fmt_ops(throughput(n, iters / n as u64, |tid| {
                    let shared = &shared;
                    let mut me = d.proc(tid);
                    move || loop {
                        let (v, keep) = shared.ll(&Native, &mut me);
                        if shared.sc(&Native, &mut me, keep, v + 1) {
                            break;
                        }
                    }
                }))
            })
            .collect();
        t.row(vec![
            "Figure 7: bounded tags (N=16, k=2)".to_string(),
            fmt_ns(ns),
            tp.join(" / "),
        ]);
    }

    // Lock baseline (Figure 2 under a mutex).
    {
        let var = LockLlSc::new(16, 0);
        let p = ProcId::new(0);
        let ns = ns_per_op(iters, 3, || {
            let v = var.ll(p);
            let _ = var.sc(p, v + 1);
        });
        let tp: Vec<String> = THREAD_COUNTS
            .iter()
            .map(|&n| {
                let shared = LockLlSc::new(16, 0);
                fmt_ops(throughput(n, iters / n as u64, |tid| {
                    let shared = &shared;
                    let p = ProcId::new(tid);
                    move || loop {
                        let v = shared.ll(p);
                        if shared.sc(p, v + 1) {
                            break;
                        }
                    }
                }))
            })
            .collect();
        t.row(vec![
            "Figure 2 lock baseline (N=16)".to_string(),
            fmt_ns(ns),
            tp.join(" / "),
        ]);
    }
    report.table(&t);

    // ------------------------------------------------------------------
    // Table 2: simulated instructions per op vs N (flat = constant time).
    // ------------------------------------------------------------------
    report.para(
        "Simulated instruction counts per operation, uncontended (one \
         variable per processor), as N grows — the machine-independent \
         statement of the constant-time claims:",
    );
    let ns_list = [1usize, 2, 4, 8, 16];
    let mut t2 = Table::new(
        std::iter::once("implementation (sim)".to_string())
            .chain(ns_list.iter().map(|n| format!("N={n}")))
            .collect::<Vec<_>>(),
    );

    let sim_iters = (iters / 10).max(1_000);

    // Figure 3: emulated CAS.
    let mut row = vec!["Figure 3: CAS from RLL/RSC (instr/op)".to_string()];
    for &n in &ns_list {
        row.push(format!("{:.2}", sim_instr_fig3(n, sim_iters)));
    }
    t2.row(row);

    // Figure 5: direct LL/SC.
    let mut row = vec!["Figure 5: LL+SC from RLL/RSC (instr/op)".to_string()];
    for &n in &ns_list {
        row.push(format!("{:.2}", sim_instr_fig5(n, sim_iters)));
    }
    t2.row(row);

    // Figure 4 over Figure 3.
    let mut row = vec!["Figure 4 over Figure 3 (instr/op)".to_string()];
    for &n in &ns_list {
        row.push(format!("{:.2}", sim_instr_fig4_over_fig3(n, sim_iters)));
    }
    t2.row(row);

    report.table(&t2);

    // ------------------------------------------------------------------
    // Table 3: contention and the cycle-cost model.
    // ------------------------------------------------------------------
    report.para(
        "Contended behaviour and cost-model sensitivity (Figure 5, one \
         shared variable, all N processors): instructions per *completed* \
         op grow with contention — lock-free retries, not a violation of \
         the per-attempt constant-time bound — and the cycle column prices \
         them with the default 1990s-flavoured cost model (read 1 / RLL 2 \
         / RSC 3):",
    );
    let mut t3 = Table::new(["N (contended)", "instr per completed op", "sim cycles per op"]);
    let model = CostModel::default();
    for &n in &[1usize, 2, 4] {
        let (instr, stats) = sim_contended_fig5(n, sim_iters);
        let cycles = model.cycles(&stats) as f64 / (sim_iters * n as u64) as f64;
        t3.row([n.to_string(), format!("{instr:.2}"), format!("{cycles:.2}")]);
    }
    report.table(&t3);
    report.para(
        "Expected shape: columns identical across N in table 2 (constant \
         time); the lock baseline row in table 1 shows what Θ(N) cost \
         looks like; table 3's growth is contention (retries), which \
         affects every lock-free algorithm equally.",
    );
    report
}

/// Aggregate stats of `n` processors each doing `iters` uncontended
/// Figure-3 CAS ops.
fn sim_stats_fig3(n: usize, iters: u64) -> ProcStats {
    let m = Machine::builder(n)
        .instruction_set(InstructionSet::RllRscOnly)
        .build();
    std::thread::scope(|s| {
        (0..n)
            .map(|id| {
                let p = m.processor(id);
                s.spawn(move || {
                    let var = EmuCasWord::new(TagLayout::half(), 0).unwrap();
                    for i in 0..iters {
                        assert!(var.cas(&p, i, i + 1));
                    }
                    p.stats()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    })
}

fn sim_instr_fig3(n: usize, iters: u64) -> f64 {
    sim_stats_fig3(n, iters).total_instructions() as f64 / (iters * n as u64) as f64
}

/// Aggregate stats of `n` processors each doing `iters` uncontended
/// Figure-5 LL;SC cycles.
fn sim_stats_fig5(n: usize, iters: u64) -> ProcStats {
    let m = Machine::builder(n)
        .instruction_set(InstructionSet::RllRscOnly)
        .build();
    std::thread::scope(|s| {
        (0..n)
            .map(|id| {
                let p = m.processor(id);
                s.spawn(move || {
                    let var = RllLlSc::new(TagLayout::half(), 0).unwrap();
                    for _ in 0..iters {
                        let mut keep = Keep::default();
                        let v = var.ll(&p, &mut keep);
                        assert!(var.sc(&p, &keep, v + 1));
                    }
                    p.stats()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    })
}

fn sim_instr_fig5(n: usize, iters: u64) -> f64 {
    sim_stats_fig5(n, iters).total_instructions() as f64 / (iters * n as u64) as f64
}

/// Contended Figure-5 cycles: `n` processors hammer ONE variable; returns
/// (instructions per completed op, aggregate stats). Retries grow with
/// contention — the lock-free (not wait-free) cost profile.
fn sim_contended_fig5(n: usize, iters: u64) -> (f64, ProcStats) {
    let m = Machine::builder(n)
        .instruction_set(InstructionSet::RllRscOnly)
        .build();
    let var = RllLlSc::new(TagLayout::half(), 0).unwrap();
    let stats: ProcStats = std::thread::scope(|s| {
        (0..n)
            .map(|id| {
                let p = m.processor(id);
                let var = &var;
                s.spawn(move || {
                    for _ in 0..iters {
                        loop {
                            let mut keep = Keep::default();
                            let v = var.ll(&p, &mut keep);
                            if var.sc(&p, &keep, v + 1) {
                                break;
                            }
                        }
                    }
                    p.stats()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    (
        stats.total_instructions() as f64 / (iters * n as u64) as f64,
        stats,
    )
}

fn sim_instr_fig4_over_fig3(n: usize, iters: u64) -> f64 {
    let m = Machine::builder(n)
        .instruction_set(InstructionSet::RllRscOnly)
        .build();
    let total: u64 = std::thread::scope(|s| {
        (0..n)
            .map(|id| {
                let p = m.processor(id);
                s.spawn(move || {
                    let var = CasLlSc::<EmuFamily<32>>::new(
                        TagLayout::for_width(16, 16, 32).unwrap(),
                        0,
                    )
                    .unwrap();
                    let mem = EmuCas::<32>::new(&p);
                    for _ in 0..iters {
                        let mut keep = Keep::default();
                        let v = var.ll(&mem, &mut keep);
                        assert!(var.sc(&mem, &keep, (v + 1) & 0xFFFF));
                    }
                    p.stats().total_instructions()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    total as f64 / (iters * n as u64) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_counts_are_flat_in_n() {
        // The actual E1 acceptance criterion, as a test: per-op simulated
        // instruction counts must not grow with N (uncontended).
        let at_1 = sim_instr_fig3(1, 2_000);
        let at_8 = sim_instr_fig3(8, 2_000);
        assert!((at_1 - at_8).abs() < 0.01, "{at_1} vs {at_8}");

        let at_1 = sim_instr_fig5(1, 2_000);
        let at_8 = sim_instr_fig5(8, 2_000);
        assert!((at_1 - at_8).abs() < 0.01, "{at_1} vs {at_8}");
    }

    #[test]
    fn report_smoke() {
        let r = run(2_000);
        let md = r.to_markdown();
        assert!(md.contains("E1"));
        assert!(md.contains("Figure 4"));
        assert!(md.contains("N=16"));
        assert!(md.contains("sim cycles per op"));
    }

    #[test]
    fn contended_ops_still_complete_exactly() {
        let (instr, stats) = sim_contended_fig5(4, 1_000);
        assert!(instr >= 3.0, "at least ll+rll+rsc per op: {instr}");
        assert_eq!(stats.rsc_success, 4 * 1_000);
    }

    #[test]
    fn cost_model_prices_uncontended_fig5() {
        // 1 read (LL) + 1 RLL + 1 RSC per op => 1 + 2 + 3 = 6 cycles.
        let stats = sim_stats_fig5(1, 500);
        let cycles = CostModel::default().cycles(&stats);
        assert_eq!(cycles, 500 * 6);
    }
}
