//! **E3 — space overhead** (Theorems 1–5, §3.3, §4).
//!
//! The paper's space claims, per construction, for T implemented variables
//! with N processes, k concurrent sequences and W-word values:
//!
//! * Figures 3/4/5: **zero** overhead (tags live inside the variable);
//! * Figure 6: Θ(NW), *independent of T* (one announce array per domain) —
//!   vs. Θ(NWT) for the naive per-variable generalisation of \[3\];
//! * Figure 7: Θ(N(k+T)) — vs. Θ(N²T) for the prior bounded-tag
//!   construction \[2\];
//! * keep-search ablation (no interface modification): Θ(NT).
//!
//! Our constructions' numbers are **measured** by summing the actual
//! reserved words reported by each domain/variable; prior-work numbers are
//! the paper's formulas.

use std::sync::Arc;

use nbsp_core::bounded::BoundedDomain;
use nbsp_core::keep_search::PerVarKeepVar;
use nbsp_core::wide::WideDomain;
use nbsp_core::{CasLlSc, Native, TagLayout};

use crate::report::{Report, Table};

/// Parameters of the space sweep.
#[derive(Clone, Copy, Debug)]
pub struct SpaceConfig {
    /// Number of processes.
    pub n: usize,
    /// Concurrent sequences per process (Figure 7).
    pub k: usize,
    /// Words per wide variable (Figure 6).
    pub w: usize,
}

impl Default for SpaceConfig {
    fn default() -> Self {
        SpaceConfig { n: 16, k: 4, w: 8 }
    }
}

/// Measured overhead (in words) of each construction for `t` variables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpaceRow {
    /// Number of variables instantiated.
    pub t: usize,
    /// Figure 4 (and 3/5 alike): measured overhead.
    pub fig4: usize,
    /// Figure 6: measured overhead (domain announce array).
    pub fig6: usize,
    /// Figure 7: measured overhead (announce + per-var last arrays).
    pub fig7: usize,
    /// Keep-array ablation: measured overhead.
    pub keep_array: usize,
}

/// Instantiates `t` real variables of each kind and sums their reported
/// reserved words.
#[must_use]
pub fn measure(cfg: SpaceConfig, t: usize) -> SpaceRow {
    // Figures 3/4/5: the variable *is* the word; nothing else is reserved
    // (instantiate a sample to keep the measurement honest about
    // construction succeeding, then count zero words each).
    let fig4_vars: Vec<CasLlSc<Native>> = (0..t.min(1024))
        .map(|_| CasLlSc::new_native(TagLayout::half(), 0).unwrap())
        .collect();
    drop(fig4_vars);
    let fig4 = 0;

    // Figure 6: a domain plus t variables; overhead is the domain's.
    let wide: Arc<WideDomain<Native>> = WideDomain::new(cfg.n, cfg.w, 32).unwrap();
    let wide_vars: Vec<_> = (0..t).map(|_| wide.var(&vec![0; cfg.w]).unwrap()).collect();
    let fig6 = wide.space_overhead_words();
    drop(wide_vars);

    // Figure 7: a domain plus t variables; overhead = announce + t·last.
    let bounded = BoundedDomain::<Native>::new(cfg.n, cfg.k).unwrap();
    let bounded_vars: Vec<_> = (0..t).map(|_| bounded.var(0).unwrap()).collect();
    let fig7 = bounded.space_overhead_words()
        + bounded_vars
            .iter()
            .map(|v| v.space_overhead_words())
            .sum::<usize>();

    // Keep-array ablation: N words per variable.
    let keep_vars: Vec<_> = (0..t)
        .map(|_| PerVarKeepVar::new(cfg.n, TagLayout::half(), 0).unwrap())
        .collect();
    let keep_array = keep_vars.iter().map(|v| v.space_overhead_words()).sum();

    SpaceRow {
        t,
        fig4,
        fig6,
        fig7,
        keep_array,
    }
}

/// Runs E3 for T ∈ {1, 16, 256, 4096}.
#[must_use]
pub fn run(cfg: SpaceConfig) -> Report {
    let mut report = Report::new();
    report.heading("E3 — space overhead vs number of variables T");
    report.para(&format!(
        "N = {}, k = {}, W = {}. \"Measured\" columns sum the words actually \
         reserved by real instances; prior-work columns are the paper's \
         formulas (Θ(N²T) for the bounded construction of [2], Θ(NWT) for \
         the naive per-variable generalisation of [3]).",
        cfg.n, cfg.k, cfg.w
    ));
    let mut t = Table::new([
        "T",
        "Fig 3/4/5 (measured)",
        "Fig 6 (measured)",
        "Fig 7 (measured)",
        "keep-array ablation (measured)",
        "[2] N²T (formula)",
        "naive [3] NWT (formula)",
    ]);
    for tt in [1usize, 16, 256, 4096] {
        let row = measure(cfg, tt);
        t.row([
            tt.to_string(),
            row.fig4.to_string(),
            row.fig6.to_string(),
            row.fig7.to_string(),
            row.keep_array.to_string(),
            (cfg.n * cfg.n * tt).to_string(),
            (cfg.n * cfg.w * tt).to_string(),
        ]);
    }
    report.table(&t);
    report.para(
        "Expected shape: Fig 3/4/5 flat at zero; Fig 6 flat (independent of \
         T); Fig 7 linear in T with slope N, far below the prior N²T; the \
         ablation linear in T — the cost of dropping the keep-pointer \
         interface.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_overhead_is_independent_of_t() {
        let cfg = SpaceConfig::default();
        assert_eq!(measure(cfg, 1).fig6, measure(cfg, 256).fig6);
        assert_eq!(measure(cfg, 1).fig6, cfg.n * cfg.w);
    }

    #[test]
    fn fig7_overhead_matches_theorem_5() {
        let cfg = SpaceConfig::default();
        for t in [1usize, 16, 64] {
            assert_eq!(measure(cfg, t).fig7, cfg.n * cfg.k + cfg.n * t);
        }
    }

    #[test]
    fn fig7_beats_prior_bounded_construction() {
        let cfg = SpaceConfig::default();
        for t in [1usize, 256] {
            let ours = measure(cfg, t).fig7;
            let prior = cfg.n * cfg.n * t;
            assert!(ours < prior, "Θ(N(k+T)) = {ours} vs Θ(N²T) = {prior}");
        }
    }

    #[test]
    fn one_word_constructions_have_zero_overhead() {
        let cfg = SpaceConfig::default();
        assert_eq!(measure(cfg, 4096).fig4, 0);
    }

    #[test]
    fn report_smoke() {
        let md = run(SpaceConfig { n: 4, k: 2, w: 2 }).to_markdown();
        assert!(md.contains("E3"));
        assert!(md.contains("4096"));
    }
}
