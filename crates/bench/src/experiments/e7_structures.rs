//! **E7 — the re-enabled algorithms** (§1, §5).
//!
//! The paper's motivation: algorithms like [4, 7, 14] assume LL/VL/SC and
//! were inapplicable on real machines. Here they run — counter, Treiber
//! stack, Michael–Scott queue and a lock-free set — on registry providers
//! (the Figure-4 construction vs. the Figure-2 lock baseline, footnote 1's
//! "straightforward" alternative, plus the two weak-primitive emulations
//! as "cost of weakening the hardware" rows), and the static STM against
//! a coarse mutex heap. The LL/SC substrates come from `nbsp_core::provider`; this
//! module keeps no construction list of its own.
//!
//! Telemetry: every throughput cell runs through `nbsp_bench::sinks` —
//! worker sessions flush per-thread deltas into a run-level Figure-6 sink,
//! and the closing event table is a single-WLL snapshot of that sink
//! (never `racy_totals`, whose tearing E11 demonstrates).

use std::sync::Arc;

use nbsp_core::wide::WideDomain;
use nbsp_core::{with_provider, Native, Provider, ProviderId};
use nbsp_memsim::ProcId;
use nbsp_structures::stm::Stm;
use nbsp_structures::stm_orec::OrecStm;
use nbsp_structures::{Counter, Queue, Set, Stack};
use nbsp_telemetry::AtomicTotals;
use std::sync::Mutex;

use crate::measure::{throughput, throughput_sessions};
use crate::report::{event_table, fmt_ops, Report, Table};
use crate::sinks::{session_loop, FlushPair, Sinks};

const THREADS: [usize; 3] = [1, 2, 4];

/// The substrates this experiment compares, by registry id: the paper's
/// Figure-4 construction, the Figure-2 lock baseline, and the two
/// consensus-hierarchy emulations — LL/SC built from swap+fetch-add
/// (Khanchandani–Wattenhofer) and from NB-FEB. The weak-primitive rows
/// price "weakening the hardware": same structures, same LL/VL/SC
/// interface, strictly weaker instruction set underneath.
const E7_PROVIDERS: [ProviderId; 4] = [
    ProviderId::Fig4Native,
    ProviderId::LockBaseline,
    ProviderId::CasFromSwap,
    ProviderId::FebLlSc,
];

/// Shared-counter increments.
fn counter_tput<P: Provider>(n: usize, per_thread: u64, sinks: &Sinks, main: &mut FlushPair) -> f64 {
    let env = P::env(n + 1).expect("provider env");
    let c = Counter::new(P::var(&env, 0).expect("provider var"));
    main.flush(sinks);
    let tput = throughput_sessions(n, per_thread, |tid| {
        let c = &c;
        let mut tc = P::thread_ctx(&env, tid);
        move |iters: u64| {
            let mut ctx = P::ctx(&mut tc);
            session_loop(iters, sinks, || {
                c.increment(&mut ctx);
            });
        }
    });
    main.resync();
    tput
}

/// Treiber-stack push+pop pairs.
fn stack_tput<P: Provider>(n: usize, per_thread: u64, sinks: &Sinks, main: &mut FlushPair) -> f64 {
    let env = P::env(n + 1).expect("provider env");
    // Construction does LL/SC work: it uses the env's extra context slot.
    let mut setup_tc = P::thread_ctx(&env, n);
    let mut setup = P::ctx(&mut setup_tc);
    let s = Stack::new(
        64,
        P::var(&env, 0).expect("provider var"),
        P::var(&env, 0).expect("provider var"),
        &mut setup,
    );
    main.flush(sinks);
    let tput = throughput_sessions(n, per_thread, |tid| {
        let s = &s;
        let mut tc = P::thread_ctx(&env, tid);
        move |iters: u64| {
            let mut ctx = P::ctx(&mut tc);
            session_loop(iters, sinks, || {
                let _ = s.push(&mut ctx, 1);
                let _ = s.pop(&mut ctx);
            });
        }
    });
    main.resync();
    tput
}

/// Michael–Scott-queue enqueue+dequeue pairs.
fn queue_tput<P: Provider>(n: usize, per_thread: u64, sinks: &Sinks, main: &mut FlushPair) -> f64 {
    let env = P::env(n + 1).expect("provider env");
    let mut setup_tc = P::thread_ctx(&env, n);
    let mut setup = P::ctx(&mut setup_tc);
    let q = Queue::new(64, || P::var(&env, 0).expect("provider var"), &mut setup);
    main.flush(sinks);
    let tput = throughput_sessions(n, per_thread, |tid| {
        let q = &q;
        let mut tc = P::thread_ctx(&env, tid);
        move |iters: u64| {
            let mut ctx = P::ctx(&mut tc);
            session_loop(iters, sinks, || {
                let _ = q.enqueue(&mut ctx, 1);
                let _ = q.dequeue(&mut ctx);
            });
        }
    });
    main.resync();
    tput
}

/// Set add+remove pairs on per-thread key ranges. Arena sized for the
/// set's lifetime-insert budget (nodes are not recycled; see the Set
/// docs).
fn set_tput<P: Provider>(n: usize, per_thread: u64, sinks: &Sinks, main: &mut FlushPair) -> f64 {
    let env = P::env(n + 1).expect("provider env");
    let mut setup_tc = P::thread_ctx(&env, n);
    let mut setup = P::ctx(&mut setup_tc);
    let capacity = (per_thread as usize) * n + 64;
    let s = Set::new(capacity, || P::var(&env, 0).expect("provider var"), &mut setup);
    main.flush(sinks);
    let tput = throughput_sessions(n, per_thread, |tid| {
        let s = &s;
        let mut tc = P::thread_ctx(&env, tid);
        let key_base = tid as u64 * 1_000_000;
        move |iters: u64| {
            let mut ctx = P::ctx(&mut tc);
            let mut i = 0u64;
            session_loop(iters, sinks, || {
                i += 1;
                let _ = s.add(&mut ctx, key_base + (i % 64));
                let _ = s.remove(&mut ctx, key_base + (i % 64));
            });
        }
    });
    main.resync();
    tput
}

/// One provider's throughput cells, in the structure order the report
/// table uses.
fn provider_rows<P: Provider>(
    iters: u64,
    sinks: &Sinks,
    main: &mut FlushPair,
) -> Vec<(&'static str, String)> {
    let sweep = |work: fn(usize, u64, &Sinks, &mut FlushPair) -> f64,
                 per_thread: fn(u64, usize) -> u64,
                 main: &mut FlushPair| {
        THREADS
            .iter()
            .map(|&n| fmt_ops(work(n, per_thread(iters, n), sinks, main)))
            .collect::<Vec<_>>()
            .join(" / ")
    };
    vec![
        ("counter", sweep(counter_tput::<P>, |i, n| i / n as u64, main)),
        ("stack push+pop", sweep(stack_tput::<P>, |i, n| i / n as u64, main)),
        ("queue enq+deq", sweep(queue_tput::<P>, |i, n| i / n as u64, main)),
        ("set add+remove", sweep(set_tput::<P>, |i, n| i / (4 * n as u64), main)),
    ]
}

/// STM transfer throughput, Figure-6 STM vs a coarse mutex heap. (Not
/// provider-backed: the wide STM runs on a `WideDomain`, not a swappable
/// single-word LL/SC variable — but its operations still flush telemetry
/// into the run sink.)
fn stm_rows(iters: u64, sinks: &Sinks, main: &mut FlushPair, t: &mut Table) {
    const CELLS: usize = 8;
    let tp_stm: Vec<String> = THREADS
        .iter()
        .map(|&n| {
            let d: Arc<WideDomain<Native>> = WideDomain::new(n.max(2), CELLS, 32).unwrap();
            let stm = Stm::new(&d, &[100; CELLS]).unwrap();
            main.flush(sinks);
            let tput = throughput_sessions(n, iters / n as u64, |tid| {
                let stm = &stm;
                let p = ProcId::new(tid);
                let mut x = tid as u64;
                move |iters: u64| {
                    session_loop(iters, sinks, || {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let from = (x >> 33) as usize % CELLS;
                        let to = (x >> 13) as usize % CELLS;
                        stm.transact(&Native, p, |h| {
                            let amt = h[from].min(1);
                            h[from] -= amt;
                            h[to] += amt;
                        });
                    });
                }
            });
            main.resync();
            fmt_ops(tput)
        })
        .collect();
    t.row(vec![
        "STM 2-cell transfer".into(),
        "Figure-6 STM".into(),
        tp_stm.join(" / "),
    ]);
    let tp_mutex: Vec<String> = THREADS
        .iter()
        .map(|&n| {
            let heap = Mutex::new(vec![100u64; CELLS]);
            fmt_ops(throughput(n, iters / n as u64, |tid| {
                let heap = &heap;
                let mut x = tid as u64;
                move || {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (x >> 33) as usize % CELLS;
                    let to = (x >> 13) as usize % CELLS;
                    let mut h = heap.lock().unwrap();
                    let amt = h[from].min(1);
                    h[from] -= amt;
                    h[to] += amt;
                }
            }))
        })
        .collect();
    t.row(vec![
        "STM 2-cell transfer".into(),
        "mutex heap".into(),
        tp_mutex.join(" / "),
    ]);
}

/// Disjoint-footprint STM comparison: each of 4 threads transacts on its
/// own pair of cells. The wide STM serialises them (its documented cost);
/// the ownership-record baseline parallelises them (its documented
/// benefit) but is blocking. Returns (wide, orec) ops/sec.
#[must_use]
pub fn stm_disjoint_throughput(iters: u64) -> (f64, f64) {
    const THREADS: usize = 4;
    const CELLS: usize = 2 * THREADS;
    let d: Arc<WideDomain<Native>> = WideDomain::new(THREADS, CELLS, 32).unwrap();
    let wide = Stm::new(&d, &[100; CELLS]).unwrap();
    let wide_tp = throughput(THREADS, iters, |tid| {
        let stm = &wide;
        let p = ProcId::new(tid);
        let (a, b) = (2 * tid, 2 * tid + 1);
        move || {
            stm.transact(&Native, p, |h| {
                let amt = h[a].min(1);
                h[a] -= amt;
                h[b] += amt;
                h.swap(a, b);
            });
        }
    });

    let orec = OrecStm::new(&[100; CELLS]);
    let orec_tp = throughput(THREADS, iters, |tid| {
        let stm = &orec;
        let p = ProcId::new(tid);
        let (a, b) = (2 * tid, 2 * tid + 1);
        move || {
            stm.transact(p, &[a, b], |v| {
                let amt = v[0].min(1);
                v[0] -= amt;
                v[1] += amt;
                v.swap(0, 1);
            });
        }
    });
    (wide_tp, orec_tp)
}

/// Runs E7.
#[must_use]
pub fn run(iters: u64) -> Report {
    let mut report = Report::new();
    report.heading("E7 — re-enabled non-blocking algorithms");
    report.para(
        "Paper claim: algorithms assuming LL/VL/SC ([4, 7, 14] …) become \
         deployable; §5 specifically claims STM is implementable. \
         Throughput of each structure on the registry's Figure-4 provider \
         vs the Figure-2 lock baseline (and a mutex heap for the STM), at \
         1/2/4 threads. The non-blocking versions additionally survive \
         arbitrary delays and failures of individual threads, which no \
         lock can. The cas-from-swap and feb-llsc rows are the cost of \
         weakening the hardware: the same structures running unchanged on \
         LL/SC emulated from swap+fetch-add and from NB-FEB — weaker \
         instruction sets that real CAS-less machines would offer.",
    );

    let sinks = Sinks::new();
    let mut main_flush = FlushPair::new();
    let mut per_provider: Vec<(&'static str, Vec<(&'static str, String)>)> = Vec::new();
    for id in E7_PROVIDERS {
        macro_rules! rows_one {
            ($p:ty) => {
                per_provider.push((
                    id.meta().name,
                    provider_rows::<$p>(iters, &sinks, &mut main_flush),
                ))
            };
        }
        with_provider!(id, rows_one);
    }

    let mut t = Table::new(["structure", "substrate", "throughput 1/2/4 threads"]);
    // Structure-major, provider-minor: adjacent rows compare substrates.
    for si in 0..per_provider[0].1.len() {
        for (provider, rows) in &per_provider {
            let (structure, cells) = &rows[si];
            t.row(vec![(*structure).into(), (*provider).into(), cells.clone()]);
        }
    }
    stm_rows(iters / 2, &sinks, &mut main_flush, &mut t);
    report.table(&t);

    report.para(
        "The two STM axes (§5): 4 threads on *disjoint* 2-cell footprints. \
         The Figure-6 STM is non-blocking but serialises everything; the \
         ownership-record baseline (Shavit–Touitou without helping) is \
         disjoint-access parallel but blocking. The full [14] design would \
         combine both — the \"more algorithmic and experimental work\" the \
         paper calls for:",
    );
    let (wide_tp, orec_tp) = stm_disjoint_throughput(iters / 2);
    let mut t2 = Table::new(["STM design", "progress", "disjoint 4-thread throughput"]);
    t2.row([
        "Figure-6 STM (one wide var)".to_string(),
        "lock-free".to_string(),
        fmt_ops(wide_tp),
    ]);
    t2.row([
        "ownership records, no helping".to_string(),
        "blocking".to_string(),
        fmt_ops(orec_tp),
    ]);
    report.table(&t2);

    if nbsp_telemetry::enabled() {
        report.para(
            "Telemetry totals across every cell above, read from the \
             run-level Figure-6 sink with a single WLL (E11 shows why a \
             racy per-counter sum could not be trusted here):",
        );
        report.table(&event_table(&sinks.events.totals(), None));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_core::provider::{CasFromSwap, FebLlSc, Fig4Native, LockBaseline};

    fn counter_smoke<P: Provider>() {
        // Cheap correctness pass of exactly the code paths the experiment
        // times (the experiment itself only reports throughput).
        let env = P::env(2).unwrap();
        let c = Counter::new(P::var(&env, 0).unwrap());
        let mut tc = P::thread_ctx(&env, 0);
        let mut ctx = P::ctx(&mut tc);
        c.increment(&mut ctx);
        assert_eq!(c.get(&mut ctx), 1);
    }

    #[test]
    fn structures_work_on_every_swept_substrate() {
        counter_smoke::<Fig4Native>();
        counter_smoke::<LockBaseline>();
        counter_smoke::<CasFromSwap>();
        counter_smoke::<FebLlSc>();
    }

    #[test]
    fn report_smoke() {
        let md = run(2_000).to_markdown();
        assert!(md.contains("E7"));
        assert!(md.contains("Figure-6 STM"));
        assert!(md.contains("queue enq+deq"));
        assert!(md.contains("fig4-native"));
        assert!(md.contains("lock"));
        assert!(md.contains("cas-from-swap"));
        assert!(md.contains("feb-llsc"));
    }
}
