//! **E7 — the re-enabled algorithms** (§1, §5).
//!
//! The paper's motivation: algorithms like [4, 7, 14] assume LL/VL/SC and
//! were inapplicable on real machines. Here they run — counter, Treiber
//! stack, Michael–Scott queue and the static STM — on the Figure-4
//! construction, against the Figure-2 lock baseline (footnote 1's
//! "straightforward" alternative) and, for the STM, a coarse mutex heap.

use std::sync::Arc;

use nbsp_core::lock_baseline::LockLlSc;
use nbsp_core::wide::WideDomain;
use nbsp_core::{CasLlSc, Native, TagLayout};
use nbsp_memsim::ProcId;
use nbsp_structures::stm::Stm;
use nbsp_structures::stm_orec::OrecStm;
use nbsp_structures::{Counter, Queue, Set, Stack};
use std::sync::Mutex;

use crate::measure::throughput;
use crate::report::{fmt_ops, Report, Table};

const THREADS: [usize; 3] = [1, 2, 4];

fn nat() -> CasLlSc<Native> {
    CasLlSc::new_native(TagLayout::half(), 0).unwrap()
}

/// Counter throughput, Figure 4 vs lock.
fn counter_rows(iters: u64, t: &mut Table) {
    let tp_fig4: Vec<String> = THREADS
        .iter()
        .map(|&n| {
            let c = Counter::new(nat());
            fmt_ops(throughput(n, iters / n as u64, |_| {
                let c = &c;
                move || {
                    c.increment(&mut Native);
                }
            }))
        })
        .collect();
    t.row(vec!["counter".into(), "Figure 4".into(), tp_fig4.join(" / ")]);
    let tp_lock: Vec<String> = THREADS
        .iter()
        .map(|&n| {
            let c = Counter::new(LockLlSc::new(n.max(2), 0));
            fmt_ops(throughput(n, iters / n as u64, |tid| {
                let c = &c;
                move || {
                    let mut ctx = ProcId::new(tid);
                    c.increment(&mut ctx);
                }
            }))
        })
        .collect();
    t.row(vec!["counter".into(), "lock".into(), tp_lock.join(" / ")]);
}

/// Stack push+pop throughput, Figure 4 vs lock.
fn stack_rows(iters: u64, t: &mut Table) {
    let tp_fig4: Vec<String> = THREADS
        .iter()
        .map(|&n| {
            let s = Stack::new(64, nat(), nat(), &mut Native);
            fmt_ops(throughput(n, iters / n as u64, |_| {
                let s = &s;
                move || {
                    let _ = s.push(&mut Native, 1);
                    let _ = s.pop(&mut Native);
                }
            }))
        })
        .collect();
    t.row(vec![
        "stack push+pop".into(),
        "Figure 4".into(),
        tp_fig4.join(" / "),
    ]);
    let tp_lock: Vec<String> = THREADS
        .iter()
        .map(|&n| {
            let np = n.max(2);
            let mut init = ProcId::new(0);
            let s = Stack::new(
                64,
                LockLlSc::new(np, 0),
                LockLlSc::new(np, 0),
                &mut init,
            );
            fmt_ops(throughput(n, iters / n as u64, |tid| {
                let s = &s;
                move || {
                    let mut ctx = ProcId::new(tid);
                    let _ = s.push(&mut ctx, 1);
                    let _ = s.pop(&mut ctx);
                }
            }))
        })
        .collect();
    t.row(vec![
        "stack push+pop".into(),
        "lock".into(),
        tp_lock.join(" / "),
    ]);
}

/// Queue enqueue+dequeue throughput, Figure 4 vs lock.
fn queue_rows(iters: u64, t: &mut Table) {
    let tp_fig4: Vec<String> = THREADS
        .iter()
        .map(|&n| {
            let q = Queue::new(64, nat, &mut Native);
            fmt_ops(throughput(n, iters / n as u64, |_| {
                let q = &q;
                move || {
                    let _ = q.enqueue(&mut Native, 1);
                    let _ = q.dequeue(&mut Native);
                }
            }))
        })
        .collect();
    t.row(vec![
        "queue enq+deq".into(),
        "Figure 4".into(),
        tp_fig4.join(" / "),
    ]);
    let tp_lock: Vec<String> = THREADS
        .iter()
        .map(|&n| {
            let np = n.max(2);
            let mut init = ProcId::new(0);
            let q = Queue::new(64, || LockLlSc::new(np, 0), &mut init);
            fmt_ops(throughput(n, iters / n as u64, |tid| {
                let q = &q;
                move || {
                    let mut ctx = ProcId::new(tid);
                    let _ = q.enqueue(&mut ctx, 1);
                    let _ = q.dequeue(&mut ctx);
                }
            }))
        })
        .collect();
    t.row(vec![
        "queue enq+deq".into(),
        "lock".into(),
        tp_lock.join(" / "),
    ]);
}

/// STM transfer throughput, Figure-6 STM vs a coarse mutex heap.
fn stm_rows(iters: u64, t: &mut Table) {
    const CELLS: usize = 8;
    let tp_stm: Vec<String> = THREADS
        .iter()
        .map(|&n| {
            let d: Arc<WideDomain<Native>> = WideDomain::new(n.max(2), CELLS, 32).unwrap();
            let stm = Stm::new(&d, &[100; CELLS]).unwrap();
            fmt_ops(throughput(n, iters / n as u64, |tid| {
                let stm = &stm;
                let p = ProcId::new(tid);
                let mut x = tid as u64;
                move || {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (x >> 33) as usize % CELLS;
                    let to = (x >> 13) as usize % CELLS;
                    stm.transact(&Native, p, |h| {
                        let amt = h[from].min(1);
                        h[from] -= amt;
                        h[to] += amt;
                    });
                }
            }))
        })
        .collect();
    t.row(vec![
        "STM 2-cell transfer".into(),
        "Figure-6 STM".into(),
        tp_stm.join(" / "),
    ]);
    let tp_mutex: Vec<String> = THREADS
        .iter()
        .map(|&n| {
            let heap = Mutex::new(vec![100u64; CELLS]);
            fmt_ops(throughput(n, iters / n as u64, |tid| {
                let heap = &heap;
                let mut x = tid as u64;
                move || {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (x >> 33) as usize % CELLS;
                    let to = (x >> 13) as usize % CELLS;
                    let mut h = heap.lock().unwrap();
                    let amt = h[from].min(1);
                    h[from] -= amt;
                    h[to] += amt;
                }
            }))
        })
        .collect();
    t.row(vec![
        "STM 2-cell transfer".into(),
        "mutex heap".into(),
        tp_mutex.join(" / "),
    ]);
}

/// Set add+remove throughput, Figure 4 vs lock. Arena sized for the
/// set's lifetime-insert budget (nodes are not recycled; see the Set
/// docs).
fn set_rows(iters: u64, t: &mut Table) {
    let tp_fig4: Vec<String> = THREADS
        .iter()
        .map(|&n| {
            let s = Set::new(iters as usize + 64, nat, &mut Native);
            fmt_ops(throughput(n, iters / (2 * n as u64), |tid| {
                let s = &s;
                let key_base = tid as u64 * 1_000_000;
                let mut i = 0u64;
                move || {
                    i += 1;
                    let _ = s.add(&mut Native, key_base + (i % 64));
                    let _ = s.remove(&mut Native, key_base + (i % 64));
                }
            }))
        })
        .collect();
    t.row(vec![
        "set add+remove".into(),
        "Figure 4".into(),
        tp_fig4.join(" / "),
    ]);
    let tp_lock: Vec<String> = THREADS
        .iter()
        .map(|&n| {
            let np = n.max(2);
            let mut init = ProcId::new(0);
            let s = Set::new(iters as usize + 64, || LockLlSc::new(np, 0), &mut init);
            fmt_ops(throughput(n, iters / (2 * n as u64), |tid| {
                let s = &s;
                let key_base = tid as u64 * 1_000_000;
                let mut i = 0u64;
                move || {
                    i += 1;
                    let mut ctx = ProcId::new(tid);
                    let _ = s.add(&mut ctx, key_base + (i % 64));
                    let _ = s.remove(&mut ctx, key_base + (i % 64));
                }
            }))
        })
        .collect();
    t.row(vec![
        "set add+remove".into(),
        "lock".into(),
        tp_lock.join(" / "),
    ]);
}

/// Disjoint-footprint STM comparison: each of 4 threads transacts on its
/// own pair of cells. The wide STM serialises them (its documented cost);
/// the ownership-record baseline parallelises them (its documented
/// benefit) but is blocking. Returns (wide, orec) ops/sec.
#[must_use]
pub fn stm_disjoint_throughput(iters: u64) -> (f64, f64) {
    const THREADS: usize = 4;
    const CELLS: usize = 2 * THREADS;
    let d: Arc<WideDomain<Native>> = WideDomain::new(THREADS, CELLS, 32).unwrap();
    let wide = Stm::new(&d, &[100; CELLS]).unwrap();
    let wide_tp = throughput(THREADS, iters, |tid| {
        let stm = &wide;
        let p = ProcId::new(tid);
        let (a, b) = (2 * tid, 2 * tid + 1);
        move || {
            stm.transact(&Native, p, |h| {
                let amt = h[a].min(1);
                h[a] -= amt;
                h[b] += amt;
                h.swap(a, b);
            });
        }
    });

    let orec = OrecStm::new(&[100; CELLS]);
    let orec_tp = throughput(THREADS, iters, |tid| {
        let stm = &orec;
        let p = ProcId::new(tid);
        let (a, b) = (2 * tid, 2 * tid + 1);
        move || {
            stm.transact(p, &[a, b], |v| {
                let amt = v[0].min(1);
                v[0] -= amt;
                v[1] += amt;
                v.swap(0, 1);
            });
        }
    });
    (wide_tp, orec_tp)
}

/// Runs E7.
#[must_use]
pub fn run(iters: u64) -> Report {
    let mut report = Report::new();
    report.heading("E7 — re-enabled non-blocking algorithms");
    report.para(
        "Paper claim: algorithms assuming LL/VL/SC ([4, 7, 14] …) become \
         deployable; §5 specifically claims STM is implementable. \
         Throughput of each structure on the Figure-4 construction vs the \
         Figure-2 lock baseline (and a mutex heap for the STM), at 1/2/4 \
         threads. The non-blocking versions additionally survive arbitrary \
         delays and failures of individual threads, which no lock can.",
    );
    let mut t = Table::new(["structure", "substrate", "throughput 1/2/4 threads"]);
    counter_rows(iters, &mut t);
    stack_rows(iters, &mut t);
    queue_rows(iters, &mut t);
    set_rows(iters / 2, &mut t);
    stm_rows(iters / 2, &mut t);
    report.table(&t);

    report.para(
        "The two STM axes (§5): 4 threads on *disjoint* 2-cell footprints. \
         The Figure-6 STM is non-blocking but serialises everything; the \
         ownership-record baseline (Shavit–Touitou without helping) is \
         disjoint-access parallel but blocking. The full [14] design would \
         combine both — the \"more algorithmic and experimental work\" the \
         paper calls for:",
    );
    let (wide_tp, orec_tp) = stm_disjoint_throughput(iters / 2);
    let mut t2 = Table::new(["STM design", "progress", "disjoint 4-thread throughput"]);
    t2.row([
        "Figure-6 STM (one wide var)".to_string(),
        "lock-free".to_string(),
        fmt_ops(wide_tp),
    ]);
    t2.row([
        "ownership records, no helping".to_string(),
        "blocking".to_string(),
        fmt_ops(orec_tp),
    ]);
    report.table(&t2);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structures_work_on_both_substrates() {
        // Cheap correctness pass of exactly the code paths the experiment
        // times (the experiment itself only reports throughput).
        let c = Counter::new(nat());
        c.increment(&mut Native);
        assert_eq!(c.get(&mut Native), 1);

        let c = Counter::new(LockLlSc::new(2, 0));
        let mut ctx = ProcId::new(0);
        c.increment(&mut ctx);
        assert_eq!(c.get(&mut ctx), 1);
    }

    #[test]
    fn report_smoke() {
        let md = run(2_000).to_markdown();
        assert!(md.contains("E7"));
        assert!(md.contains("Figure-6 STM"));
        assert!(md.contains("queue enq+deq"));
    }
}
