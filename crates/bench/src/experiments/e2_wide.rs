//! **E2 — W-word scaling** (Theorem 4).
//!
//! > WLL and SC run in Θ(W); VL runs in Θ(1).
//!
//! We measure single-threaded ns/op for each operation across W and report
//! the per-word cost: WLL and SC should have roughly constant ns/word
//! (linear total), VL roughly constant ns (flat).

use nbsp_core::wide::{WideDomain, WideKeep};
use nbsp_core::Native;
use nbsp_memsim::ProcId;

use crate::measure::ns_per_op;
use crate::report::{fmt_ns, Report, Table};

/// Width sweep used by the experiment.
pub const WIDTHS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Raw measurements for one width.
#[derive(Clone, Copy, Debug)]
pub struct WidePoint {
    /// Words per variable.
    pub w: usize,
    /// ns per WLL.
    pub wll_ns: f64,
    /// ns per successful SC (including its WLL).
    pub sc_ns: f64,
    /// ns per VL.
    pub vl_ns: f64,
}

/// Measures one width (exposed for tests and the criterion bench).
#[must_use]
pub fn measure_width(w: usize, iters: u64) -> WidePoint {
    let domain = WideDomain::<Native>::new(4, w, 32).unwrap();
    let var = domain.var(&vec![0u64; w]).unwrap();
    let mem = Native;
    let p = ProcId::new(0);
    let mut buf = vec![0u64; w];

    let mut keep = WideKeep::default();
    let wll_ns = ns_per_op(iters, 3, || {
        let _ = var.wll(&mem, &mut keep, &mut buf);
    });

    let vl_keep = {
        let mut k = WideKeep::default();
        let _ = var.wll(&mem, &mut k, &mut buf);
        k
    };
    let vl_ns = ns_per_op(iters, 3, || {
        let _ = var.vl(&mem, &vl_keep);
    });

    let newval = vec![1u64; w];
    let sc_ns = ns_per_op(iters, 3, || {
        let mut k = WideKeep::default();
        let _ = var.wll(&mem, &mut k, &mut buf);
        let ok = var.sc(&mem, p, &k, &newval);
        debug_assert!(ok);
    });

    WidePoint {
        w,
        wll_ns,
        sc_ns,
        vl_ns,
    }
}

/// Runs E2 with `iters` operations per point.
#[must_use]
pub fn run(iters: u64) -> Report {
    let mut report = Report::new();
    report.heading("E2 — W-word operation scaling (Theorem 4)");
    report.para(
        "Paper claim: WLL and SC cost Θ(W); VL costs Θ(1). Expected shape: \
         the ns/word columns roughly constant for WLL and WLL+SC, the VL \
         column flat in W.",
    );
    let mut t = Table::new([
        "W", "WLL", "WLL ns/word", "WLL+SC", "SC ns/word", "VL",
    ]);
    for &w in &WIDTHS {
        let pt = measure_width(w, iters);
        t.row([
            w.to_string(),
            fmt_ns(pt.wll_ns),
            format!("{:.1}", pt.wll_ns / w as f64),
            fmt_ns(pt.sc_ns),
            format!("{:.1}", pt.sc_ns / w as f64),
            fmt_ns(pt.vl_ns),
        ]);
    }
    report.table(&t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wll_scales_roughly_linearly_and_vl_is_flat() {
        let small = measure_width(2, 20_000);
        let big = measure_width(64, 20_000);
        let wll_ratio = big.wll_ns / small.wll_ns;
        // 32x more words: demand at least ~6x more time (loose: constant
        // overheads dampen the ratio at small W) and that VL grew far less.
        assert!(
            wll_ratio > 6.0,
            "WLL cost should grow with W: {small:?} -> {big:?}"
        );
        assert!(
            big.vl_ns < big.wll_ns / 4.0,
            "VL must be much cheaper than WLL at large W: {big:?}"
        );
    }

    #[test]
    fn report_smoke() {
        let md = run(2_000).to_markdown();
        assert!(md.contains("E2"));
        assert!(md.contains("ns/word"));
    }
}
