//! **E15 — the LLX/SCX ordered map, served and swept.**
//!
//! PR 8's tentpole: `nbsp-llx` turns the registry's single-word LL/SC
//! into Brown–Ellen–Ruppert multi-word LLX/SCX, and
//! [`nbsp_structures::OrdMap`] builds the external-BST ordered map on
//! top. This experiment closes the loop from both ends:
//!
//! 1. **Keyed fabric cells** — the serving fabric routes
//!    [`Workload::OrdMap`] requests to shards by key hash, so a skewed
//!    key distribution becomes a skewed *shard* load. Cells sweep worker
//!    count × key skew (uniform vs Zipf(1) hot keys) on the virtual
//!    clock; every cell is run **twice** and the results must be
//!    identical (the cell is a pure function of the seed), and each cell
//!    conserves requests (`completed == admitted == generated` — no
//!    admission gate here, the sweep compares skews, not policies). The
//!    map's own conservation (`inserts − deletes == final size`) is
//!    asserted inside the cell by `MapCell`.
//! 2. **Closed-loop throughput** — the racy, wall-clock half: `threads ×
//!    skew × substrate` where the substrates are the ordmap on four
//!    registry providers (Figure 4 native, Figure 7 bounded-tag, the
//!    dynamic-joining domain, and the Figure-2 **lock substrate** —
//!    footnote 1's "straightforward" mutex implementation of LL/SC,
//!    running the *same* ordmap; E7's substrate-comparison convention)
//!    plus a coarse mutex around `BTreeMap` as an out-of-family
//!    reference row. Each thread draws keys from its own seeded
//!    SplitMix64 stream — a read-dominated 1/1/8 insert/delete/get mix
//!    on the uniform cells, an adversarial 50/50 insert/delete mix on
//!    the Zipf cells (their job is to force conflicts); per-cell
//!    conservation (successful inserts − successful deletes == final
//!    `len`) is asserted for every substrate, and the headline gate is
//!    **the ordmap on fig4-native beating the ordmap on the lock
//!    substrate at 4 threads on the uniform cell** (every Figure-2
//!    LL/VL/SC/read takes a per-variable mutex; the native CAS cells
//!    run the identical algorithm without them).
//!
//! Under the Zipf cell the hot keys force real SCX conflicts: when
//! telemetry is compiled in, the `llx_help` and `scx_abort` totals for
//! that sweep must be nonzero — helping actually happens end to end, not
//! just in the model checker.
//!
//! `BENCH_structures.json` records the **deterministic** artifacts only:
//! the keyed-cell results (virtual-time percentiles and counters) and the
//! gate verdicts as booleans. Wall-clock throughput stays in the markdown
//! report — that is what keeps the JSON byte-identical across same-seed
//! runs, which is itself one of the gates.

use std::sync::atomic::{AtomicU64, Ordering};

use nbsp_core::{with_provider, Provider, ProviderId};
use nbsp_memsim::rng::SplitMix64;
use nbsp_serve::{run_fabric_cell, ArrivalProcess, CellResult, FabricConfig, Workload};
use nbsp_structures::{ordmap_capacity, LockMap, OrdMap};
use nbsp_telemetry::{AtomicTotals, Event};

use crate::measure::{throughput, throughput_sessions};
use crate::report::{event_table, fmt_ns, fmt_ops, Report, Table};
use crate::sinks::{session_loop, FlushPair, Sinks};

/// Seed for every keyed cell and every per-thread key stream.
const SEED: u64 = 0x5e15_5e15;

/// Mean virtual service demand per keyed request.
const SERVICE_MEAN_NS: f64 = 1_000.0;

/// Offered rate as a fraction of each keyed cell's pool capacity —
/// below saturation, so the tail reflects routing skew, not overload.
const KEYED_RHO: f64 = 0.8;

/// Worker counts for the keyed fabric sweep.
const KEYED_WORKERS: [usize; 2] = [2, 4];

/// Key space of the keyed cells and the Zipf throughput cells: small
/// enough that Zipf(1)'s head is genuinely hot (key 0 draws ~21%).
const HOT_KEY_SPACE: u64 = 64;

/// Key space of the uniform throughput cells: large enough that 4
/// threads mostly touch disjoint subtrees.
const UNIFORM_KEY_SPACE: u64 = 256;

/// Key space of the Zipf throughput cells: tiny, so the Zipf(1) head
/// (key 0 draws ~37% of 8) lands concurrent SCXs on the same records
/// often enough that freezes are *observed* — that is what drives the
/// nonzero `llx_help`/`scx_abort` gate.
const ZIPF_TPUT_SPACE: u64 = 8;

/// Per-shard ring capacity (as E12/E14).
const RING_CAPACITY: usize = 1024;

/// Global → shard token refill batch (idle here: admission is off).
const REFILL_BATCH: u64 = 64;

/// Thread counts for the closed-loop throughput sweep.
const THREADS: [usize; 3] = [1, 2, 4];

/// Operation mix modulus for the uniform sweep: residue 0 inserts, 1
/// deletes, the rest get — the read-dominated shape of keyed serving
/// traffic (1/1/8).
const SERVE_MIX: u64 = 10;

/// Mix modulus for the Zipf sweep: pure 50/50 insert/delete. The Zipf
/// cells exist to force SCX conflicts on the hot head, so they get the
/// adversarial all-update mix.
const ADVERSARIAL_MIX: u64 = 2;

/// The registry substrates the ordmap is timed on: the paper's native
/// Figure-4 construction, the bounded-tag Figure-7 construction, the
/// dynamic-joining domain, and the Figure-2 lock substrate — footnote
/// 1's "straightforward" lock implementation of LL/SC, running the
/// *same* ordmap (E7's substrate-comparison convention; this is the
/// gated baseline). (`constant-time` is excluded: its fixed
/// 256-variable budget cannot hold an arena of LLX records.)
const TPUT_PROVIDERS: [ProviderId; 4] = [
    ProviderId::Fig4Native,
    ProviderId::Fig7Bounded,
    ProviderId::Dynamic,
    ProviderId::LockBaseline,
];

/// One keyed fabric cell configuration. Everything downstream of the
/// seed is deterministic, so the same config must reproduce the same
/// [`CellResult`] bit for bit.
fn keyed_config(workers: usize, requests: u64, zipf: bool) -> FabricConfig {
    FabricConfig {
        seed: SEED,
        process: ArrivalProcess::Poisson {
            rate_per_sec: KEYED_RHO * workers as f64 * 1e9 / SERVICE_MEAN_NS,
        },
        workload: Workload::OrdMap {
            key_space: HOT_KEY_SPACE,
            zipf,
        },
        workers,
        requests,
        service_mean_ns: SERVICE_MEAN_NS,
        admission: None,
        ring_capacity: RING_CAPACITY,
        refill_batch: REFILL_BATCH,
    }
}

fn skew_name(zipf: bool) -> &'static str {
    if zipf {
        "zipf"
    } else {
        "uniform"
    }
}

/// One substrate's numbers for one throughput cell.
#[derive(Debug)]
pub struct MapStats {
    /// Wall-clock map operations per second.
    pub tput: f64,
    /// Successful new-key inserts across all threads.
    pub inserted: u64,
    /// Successful deletes across all threads.
    pub deleted: u64,
    /// `len()` observed after the threads joined.
    pub final_len: u64,
}

/// One skew's sweep: substrate name → per-thread-count stats (ordmap
/// providers first, the mutex-btreemap reference last).
pub type SkewRows = Vec<(&'static str, Vec<(usize, MapStats)>)>;

/// Everything E15 measures, separated from rendering/enforcement so
/// tests can gate without touching the filesystem.
#[derive(Debug)]
pub struct E15Results {
    /// Keyed fabric cells: (workers, zipf, result) — already verified
    /// identical across two same-seed runs.
    pub keyed: Vec<(usize, bool, CellResult)>,
    /// Uniform-key throughput sweep.
    pub uniform: SkewRows,
    /// Zipf-key throughput sweep.
    pub zipf: SkewRows,
    /// `(llx_help, scx_abort)` deltas recorded during the Zipf sweep
    /// (plus any bounded re-rolls); `None` when telemetry is compiled
    /// out.
    pub zipf_contention: Option<(u64, u64)>,
    /// Extra adversarial cells run because one of the counters was
    /// still zero (rare events at quick scales).
    pub zipf_rerolls: u32,
    /// Run-level event sink (for the report's closing table).
    pub sinks: Sinks,
    /// Requests per keyed cell.
    pub requests: u64,
    /// Total map operations per throughput cell.
    pub iters: u64,
}

impl E15Results {
    fn at4(rows: &SkewRows, name: &str) -> f64 {
        rows.iter()
            .find(|(n, _)| *n == name)
            .expect("substrate present")
            .1
            .last()
            .expect("4-thread cell")
            .1
            .tput
    }

    /// The headline pair at 4 threads on the uniform cell: the ordmap on
    /// fig4-native vs the same ordmap on the Figure-2 lock substrate.
    #[must_use]
    pub fn headline(&self) -> (f64, f64) {
        (
            Self::at4(&self.uniform, ProviderId::Fig4Native.name()),
            Self::at4(&self.uniform, ProviderId::LockBaseline.name()),
        )
    }

    /// The throughput gate's verdict.
    #[must_use]
    pub fn tput_gate(&self) -> bool {
        let (ord, lock) = self.headline();
        ord > lock
    }
}

/// Zipf(1) CDF over `space` keys (the same shape the load generator
/// uses), or empty for uniform.
fn zipf_cdf(space: u64) -> Vec<f64> {
    let mut acc = 0.0f64;
    let mut cdf: Vec<f64> = (0..space)
        .map(|k| {
            acc += 1.0 / (k + 1) as f64;
            acc
        })
        .collect();
    for c in &mut cdf {
        *c /= acc;
    }
    cdf
}

fn draw_key(rng: &mut SplitMix64, space: u64, cdf: &[f64]) -> u64 {
    if cdf.is_empty() {
        rng.next_below(space)
    } else {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        cdf.partition_point(|&c| c <= u) as u64
    }
}

/// Closed-loop insert/delete mix on the LLX/SCX ordmap over provider
/// `P`: each thread alternates operations on keys from its own seeded
/// stream. Asserts conservation before returning.
fn ordmap_tput<P: Provider>(
    n: usize,
    per_thread: u64,
    space: u64,
    cdf: &[f64],
    mix: u64,
    sinks: &Sinks,
    main: &mut FlushPair,
) -> MapStats {
    let env = P::env(n + 1).expect("provider env");
    // Construction does LL/SC work: it uses the env's extra context slot.
    let mut setup_tc = P::thread_ctx(&env, n);
    let mut setup = P::ctx(&mut setup_tc);
    let ops = (n as u64 * per_thread) as usize;
    let m = OrdMap::new(
        n,
        ordmap_capacity(ops),
        || P::var(&env, 0).expect("provider var"),
        &mut setup,
    );
    let inserted = AtomicU64::new(0);
    let deleted = AtomicU64::new(0);
    main.flush(sinks);
    let tput = throughput_sessions(n, per_thread, |tid| {
        let m = &m;
        let (inserted, deleted) = (&inserted, &deleted);
        let mut tc = P::thread_ctx(&env, tid);
        let mut rng = SplitMix64::new(SEED ^ (tid as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        move |iters: u64| {
            let mut ctx = P::ctx(&mut tc);
            let (mut ins, mut del) = (0u64, 0u64);
            session_loop(iters, sinks, || {
                let op = rng.next_u64();
                let key = draw_key(&mut rng, space, cdf);
                match op % mix {
                    0 => {
                        if m.insert(&mut ctx, tid, key, op).expect("record budget").is_none() {
                            ins += 1;
                        }
                    }
                    1 => {
                        if m.delete(&mut ctx, tid, key).expect("record budget").is_some() {
                            del += 1;
                        }
                    }
                    _ => {
                        let _ = m.get(&mut ctx, key);
                    }
                }
            });
            inserted.fetch_add(ins, Ordering::Relaxed);
            deleted.fetch_add(del, Ordering::Relaxed);
        }
    });
    main.resync();
    let final_len = m.len(&mut setup) as u64;
    let (inserted, deleted) = (inserted.load(Ordering::Relaxed), deleted.load(Ordering::Relaxed));
    assert_eq!(
        inserted - deleted,
        final_len,
        "ordmap conservation: inserts − deletes must equal the final size"
    );
    MapStats {
        tput,
        inserted,
        deleted,
        final_len,
    }
}

/// The same closed loop on the lock-baseline map.
fn lockmap_tput(n: usize, per_thread: u64, space: u64, cdf: &[f64], mix: u64) -> MapStats {
    let m = LockMap::new();
    let inserted = AtomicU64::new(0);
    let deleted = AtomicU64::new(0);
    let tput = throughput(n, per_thread, |tid| {
        let m = &m;
        let (inserted, deleted) = (&inserted, &deleted);
        let mut rng = SplitMix64::new(SEED ^ (tid as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        move || {
            let op = rng.next_u64();
            let key = draw_key(&mut rng, space, cdf);
            match op % mix {
                0 => {
                    if m.insert(key, op).is_none() {
                        inserted.fetch_add(1, Ordering::Relaxed);
                    }
                }
                1 => {
                    if m.delete(key).is_some() {
                        deleted.fetch_add(1, Ordering::Relaxed);
                    }
                }
                _ => {
                    let _ = m.get(key);
                }
            }
        }
    });
    let final_len = m.len() as u64;
    let (inserted, deleted) = (inserted.load(Ordering::Relaxed), deleted.load(Ordering::Relaxed));
    assert_eq!(inserted - deleted, final_len, "lock map conservation");
    MapStats {
        tput,
        inserted,
        deleted,
        final_len,
    }
}

/// One provider's thread sweep for one skew.
fn ordmap_rows<P: Provider>(
    iters: u64,
    space: u64,
    cdf: &[f64],
    mix: u64,
    sinks: &Sinks,
    main: &mut FlushPair,
) -> Vec<(usize, MapStats)> {
    THREADS
        .iter()
        .map(|&n| (n, ordmap_tput::<P>(n, iters / n as u64, space, cdf, mix, sinks, main)))
        .collect()
}

/// All substrates' thread sweeps for one skew.
fn skew_sweep(iters: u64, space: u64, zipf: bool, sinks: &Sinks, main: &mut FlushPair) -> SkewRows {
    let cdf = if zipf { zipf_cdf(space) } else { Vec::new() };
    let mix = if zipf { ADVERSARIAL_MIX } else { SERVE_MIX };
    let mut rows: SkewRows = Vec::new();
    for id in TPUT_PROVIDERS {
        macro_rules! one {
            ($p:ty) => {
                rows.push((id.name(), ordmap_rows::<$p>(iters, space, &cdf, mix, sinks, main)))
            };
        }
        with_provider!(id, one);
        eprintln!("[e15_structures] tput {} ({}) done", id.name(), skew_name(zipf));
    }
    rows.push((
        "mutex-btreemap",
        THREADS
            .iter()
            .map(|&n| (n, lockmap_tput(n, iters / n as u64, space, &cdf, mix)))
            .collect(),
    ));
    eprintln!("[e15_structures] tput mutex-btreemap ({}) done", skew_name(zipf));
    rows
}

/// Runs both halves of the sweep. Every keyed cell is run twice and the
/// pair asserted identical here (the determinism gate cannot be deferred:
/// only one result is kept).
#[must_use]
pub fn collect(requests: u64, iters: u64) -> E15Results {
    let mut keyed: Vec<(usize, bool, CellResult)> = Vec::new();
    for &w in &KEYED_WORKERS {
        for zipf in [false, true] {
            let cfg = keyed_config(w, requests, zipf);
            let a = run_fabric_cell(&cfg, None);
            let b = run_fabric_cell(&cfg, None);
            assert_eq!(
                a, b,
                "gate: keyed cell w={w} {} must be byte-identical across same-seed runs",
                skew_name(zipf),
            );
            eprintln!(
                "[e15_structures] keyed w={w} {}: p50={} p99={} steals={}",
                skew_name(zipf),
                fmt_ns(a.p50_ns as f64),
                fmt_ns(a.p99_ns as f64),
                a.snapshot.steals,
            );
            keyed.push((w, zipf, a));
        }
    }

    // The event totals before/after the Zipf sweep isolate its
    // helps/aborts from the uniform sweep's.
    let sinks = Sinks::new();
    let mut main_flush = FlushPair::new();
    let uniform = skew_sweep(iters, UNIFORM_KEY_SPACE, false, &sinks, &mut main_flush);
    let before = sinks.events.totals();
    let zipf = skew_sweep(iters, ZIPF_TPUT_SPACE, true, &sinks, &mut main_flush);
    let after = sinks.events.totals();
    let mut zipf_contention = nbsp_telemetry::enabled().then(|| {
        (
            after[Event::LlxHelp.index()] - before[Event::LlxHelp.index()],
            after[Event::ScxAbort.index()] - before[Event::ScxAbort.index()],
        )
    });

    // A help or abort needs two threads inside the same record's freeze
    // window — tens of nanoseconds — so at quick scales either counter
    // can land on zero by luck. Re-roll the 4-thread adversarial cell
    // (bounded) until both have fired: the gate asserts the helping path
    // is *reachable* end to end, not that a particular run was lucky.
    // The re-roll cell has a per-thread floor so each thread outlasts a
    // scheduler quantum on a single-CPU host — a cell that finishes
    // inside one timeslice runs its threads back to back and can never
    // overlap a freeze window.
    let mut zipf_rerolls = 0u32;
    if let Some((ref mut helps, ref mut aborts)) = zipf_contention {
        let cdf = zipf_cdf(ZIPF_TPUT_SPACE);
        let n = *THREADS.last().expect("thread sweep is non-empty");
        let per_thread = (iters / n as u64).max(25_000);
        while (*helps == 0 || *aborts == 0) && zipf_rerolls < 8 {
            let before = sinks.events.totals();
            macro_rules! reroll {
                ($p:ty) => {
                    ordmap_tput::<$p>(
                        n,
                        per_thread,
                        ZIPF_TPUT_SPACE,
                        &cdf,
                        ADVERSARIAL_MIX,
                        &sinks,
                        &mut main_flush,
                    )
                };
            }
            let _ = with_provider!(ProviderId::Fig4Native, reroll);
            let after = sinks.events.totals();
            *helps += after[Event::LlxHelp.index()] - before[Event::LlxHelp.index()];
            *aborts += after[Event::ScxAbort.index()] - before[Event::ScxAbort.index()];
            zipf_rerolls += 1;
            eprintln!(
                "[e15_structures] adversarial re-roll {zipf_rerolls}: \
                 llx_help={helps} scx_abort={aborts}"
            );
        }
    }

    E15Results {
        keyed,
        uniform,
        zipf,
        zipf_contention,
        zipf_rerolls,
        sinks,
        requests,
        iters,
    }
}

fn keyed_json(keyed: &[(usize, bool, CellResult)]) -> String {
    keyed
        .iter()
        .enumerate()
        .map(|(i, (w, zipf, r))| {
            let snap = &r.snapshot;
            format!(
                "    {{\"workers\": {w}, \"skew\": \"{}\", \"generated\": {}, \
                 \"admitted\": {}, \"shed\": {}, \"completed\": {}, \"steals\": {}, \
                 \"refills\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \
                 \"p999_ns\": {}}}{}",
                skew_name(*zipf),
                snap.generated(),
                snap.admitted,
                snap.shed,
                snap.completed,
                snap.steals,
                snap.refills,
                r.p50_ns,
                r.p95_ns,
                r.p99_ns,
                r.p999_ns,
                if i + 1 == keyed.len() { "" } else { "," },
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Deterministic JSON only: keyed cells + gate verdicts. No wall-clock
/// numbers — same seed, same build config ⇒ byte-identical file.
#[must_use]
pub fn to_json(r: &E15Results) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema_version\": 1,\n");
    s.push_str("  \"experiment\": \"structures\",\n");
    s.push_str(&format!("  \"seed\": {SEED},\n"));
    s.push_str(&format!("  \"requests_per_keyed_cell\": {},\n", r.requests));
    s.push_str(&format!("  \"ops_per_tput_cell\": {},\n", r.iters));
    s.push_str(&format!("  \"service_mean_ns\": {SERVICE_MEAN_NS},\n"));
    s.push_str(&format!(
        "  \"key_space\": {{\"keyed\": {HOT_KEY_SPACE}, \"uniform\": {UNIFORM_KEY_SPACE}, \
         \"zipf\": {ZIPF_TPUT_SPACE}}},\n"
    ));
    s.push_str("  \"keyed\": [\n");
    s.push_str(&keyed_json(&r.keyed));
    s.push_str("\n  ],\n");
    // The racy halves are reduced to verdicts so the file stays
    // deterministic; the measured numbers live in EXPERIMENTS.md.
    s.push_str("  \"gates\": {\n");
    s.push_str(&format!(
        "    \"ordmap_beats_lock_at_4_threads_uniform\": {},\n",
        r.tput_gate()
    ));
    s.push_str("    \"conservation\": true,\n");
    s.push_str("    \"keyed_deterministic\": true,\n");
    match r.zipf_contention {
        None => s.push_str("    \"zipf_contention\": {\"enabled\": false}\n"),
        Some((helps, aborts)) => s.push_str(&format!(
            "    \"zipf_contention\": {{\"enabled\": true, \"llx_help_nonzero\": {}, \
             \"scx_abort_nonzero\": {}}}\n",
            helps > 0,
            aborts > 0,
        )),
    }
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

/// Asserts every gate. Separate from [`collect`] so the JSON (which
/// records verdicts) is written even on a failing run's way down.
pub fn enforce(r: &E15Results) {
    for (w, zipf, c) in &r.keyed {
        assert_eq!(c.snapshot.shed, 0, "keyed w={w} {}: nothing sheds", skew_name(*zipf));
        assert_eq!(
            c.snapshot.completed,
            c.snapshot.generated(),
            "keyed w={w} {}: conservation",
            skew_name(*zipf),
        );
    }
    let (ord, lock) = r.headline();
    // An unoptimized build is not a benchmark — the ordmap's constant
    // factors balloon under debug while the mutex's barely move. The
    // JSON verdict records the measurement either way.
    if cfg!(debug_assertions) {
        if !r.tput_gate() {
            eprintln!(
                "[e15_structures] tput gate skipped (debug build): ordmap {ord:.0} vs lock {lock:.0}"
            );
        }
    } else {
        assert!(
            r.tput_gate(),
            "gate: ordmap(fig4-native) {ord:.0} ops/s must beat the ordmap on the Figure-2 \
             lock substrate {lock:.0} ops/s at 4 threads on the uniform cell"
        );
    }
    if let Some((helps, aborts)) = r.zipf_contention {
        assert!(
            helps > 0 && aborts > 0,
            "gate: the Zipf sweep must exercise helping (llx_help={helps}, scx_abort={aborts})"
        );
    }
}

fn tput_table(rows: &SkewRows) -> Table {
    let mut t = Table::new(["substrate", "throughput 1/2/4 threads", "ins/del/len @4t"]);
    for (name, cells) in rows {
        let tps = cells
            .iter()
            .map(|(_, s)| fmt_ops(s.tput))
            .collect::<Vec<_>>()
            .join(" / ");
        let last = &cells.last().expect("thread sweep is non-empty").1;
        t.row(vec![
            (*name).to_string(),
            tps,
            format!("{}/{}/{}", last.inserted, last.deleted, last.final_len),
        ]);
    }
    t
}

fn render(r: &E15Results) -> Report {
    let (ord, lock) = r.headline();
    let mut report = Report::new();
    report.heading("E15 — LLX/SCX ordered map: keyed serving + throughput");
    report.para(&format!(
        "The `nbsp-llx` multi-word primitives carry `nbsp_structures::OrdMap` (an external BST \
         with one SCX per update) into two harnesses. Keyed fabric cells route each request to \
         a shard by key hash, so Zipf(1) hot keys become hot shards: {} requests per cell at \
         {:.0}% of pool capacity over {HOT_KEY_SPACE} keys, seed `{SEED:#x}`, every cell run \
         twice and bit-identical. Closed-loop cells time {} map ops per cell at 1/2/4 \
         threads (1/1/8 insert/delete/get on uniform keys, 50/50 insert/delete on Zipf); the \
         gated baseline is the same ordmap on the Figure-2 lock substrate, with a coarse \
         mutex`BTreeMap` as reference.",
        r.requests,
        KEYED_RHO * 100.0,
        r.iters,
    ));

    let mut t = Table::new(["workers", "skew", "p50", "p99", "p99.9", "steals"]);
    for (w, zipf, c) in &r.keyed {
        t.row([
            format!("{w}"),
            skew_name(*zipf).to_string(),
            fmt_ns(c.p50_ns as f64),
            fmt_ns(c.p99_ns as f64),
            fmt_ns(c.p999_ns as f64),
            format!("{}", c.snapshot.steals),
        ]);
    }
    report.heading("keyed fabric cells (virtual time, deterministic)");
    report.table(&t);
    report.para(
        "Requests conserve exactly (`completed == admitted == generated`; admission is off so \
         nothing sheds) and the map's `inserts − deletes == len` invariant is asserted inside \
         each cell. Work stealing rebalances part of the hot-shard skew: the steal counts rise \
         with the Zipf cells.",
    );

    report.heading("closed-loop throughput, uniform keys");
    report.table(&tput_table(&r.uniform));
    report.heading("closed-loop throughput, Zipf(1) hot keys");
    report.table(&tput_table(&r.zipf));
    report.para(&format!(
        "Uniform 4-thread headline: ordmap on fig4-native {} vs the same ordmap on the \
         Figure-2 lock substrate {} — every lock-substrate LL/VL/SC/read takes a per-variable \
         mutex, while the native CAS cells run the identical algorithm without them. The \
         `mutex-btreemap` row is the out-of-family reference: a coarse lock around std's \
         `BTreeMap` wins on constant factors at this key-space size but is blocking — no \
         progress guarantee, and a stalled holder stalls everyone. Under Zipf(1) the hot head \
         concentrates SCX conflicts and the helping path does real work.",
        fmt_ops(ord),
        fmt_ops(lock),
    ));

    if let Some((helps, aborts)) = r.zipf_contention {
        report.para(&format!(
            "Zipf-sweep contention telemetry: {helps} llx_help (a reader finalized someone \
             else's stalled SCX) and {aborts} scx_abort (a commit lost its freeze race and \
             retried), after {} adversarial re-roll(s). Run-total event table:",
            r.zipf_rerolls,
        ));
        report.table(&event_table(&r.sinks.events.totals(), None));
    }

    report.para(
        "Gates: every keyed cell is byte-identical across same-seed runs and conserves \
         requests; every map cell (ordmap on all four providers and the mutex-btreemap \
         reference, both skews, all thread counts) satisfies inserts − deletes == len; the \
         ordmap on fig4-native beats the ordmap on the lock substrate at 4 threads on uniform \
         keys (optimized builds); and (telemetry builds) the Zipf sweep records nonzero \
         llx_help and scx_abort. All enforced; deterministic artifacts in \
         `BENCH_structures.json`.",
    );
    report
}

/// Runs the E15 sweep with `requests` per keyed cell and `iters` total
/// map operations per throughput cell, writes `BENCH_structures.json`,
/// and returns the report.
///
/// # Panics
///
/// Panics (failing the experiment) if a keyed cell is not byte-identical
/// across same-seed runs or fails request conservation, a map cell fails
/// `inserts − deletes == len`, the ordmap on fig4-native does not beat
/// the ordmap on the lock substrate at 4 threads (optimized builds), the
/// Zipf sweep records no helps/aborts (telemetry builds), or the JSON
/// cannot be written.
pub fn run(requests: u64, iters: u64) -> Report {
    let results = collect(requests, iters);
    let json = to_json(&results);
    std::fs::write("BENCH_structures.json", &json).expect("write BENCH_structures.json");
    eprintln!("[e15_structures] wrote BENCH_structures.json");
    let report = render(&results);
    enforce(&results);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_cdf_is_monotone_and_normalized() {
        let cdf = zipf_cdf(HOT_KEY_SPACE);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
        // The head is genuinely hot: key 0 draws ~1/H(64) ≈ 21%.
        assert!(cdf[0] > 0.2);
    }

    #[test]
    fn keyed_cells_are_deterministic_and_conserve() {
        let cfg = keyed_config(2, 2_000, true);
        let a = run_fabric_cell(&cfg, None);
        let b = run_fabric_cell(&cfg, None);
        assert_eq!(a, b);
        assert_eq!(a.snapshot.completed, a.snapshot.generated());
    }

    #[test]
    fn quick_sweep_passes_all_gates() {
        // Release gets enough ops per cell that the wall-clock gates sit
        // well clear of spawn/scheduling noise; debug (which skips the
        // throughput gate) stays small so tier-1 stays fast.
        let iters = if cfg!(debug_assertions) { 6_000 } else { 40_000 };
        let r = collect(2_000, iters);
        let md = render(&r).to_markdown();
        enforce(&r);
        assert!(md.contains("E15"));
        assert!(md.contains("fig4-native"));
        assert!(md.contains("mutex-btreemap"));
        let json = to_json(&r);
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"keyed_deterministic\": true"));
        assert!(json.contains("\"ordmap_beats_lock_at_4_threads_uniform\""));
        // The JSON is a pure function of the deterministic results.
        assert_eq!(json, to_json(&r));
    }
}
