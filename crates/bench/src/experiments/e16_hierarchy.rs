//! **E16 — the consensus-hierarchy portability matrix.**
//!
//! The paper closes the CAS ↔ RLL/RSC gap; the weak-primitive tier goes
//! two rungs further down the hierarchy — LL/SC from swap + fetch-add
//! (Khanchandani–Wattenhofer, arXiv:1802.03844) and from NB-FEB
//! (Ha–Tsigas–Anshus, arXiv:0811.1304). This experiment is the matrix's
//! certificate, in three sections:
//!
//! * **registry listing** — every provider with its capability bitset and
//!   tier, so the artifact records exactly which instruction set each
//!   construction needs (the portability matrix itself);
//! * **weak-provider stamps** — for each weak-primitive entry, an
//!   in-process conformance pass (LL/VL/SC sequencing, tag wraparound,
//!   two-writer linearization), a seeded differential check against the
//!   sequential LL/SC specification, and an exhaustive DPOR exploration
//!   of the E13 base configuration;
//! * **hierarchy ordering** — the E7-style throughput column over
//!   native CAS / cas-from-swap / feb-llsc, gated on the documented
//!   monotone cost of weakening the hardware (native ≥ swap+faa ≥ FEB,
//!   within [`ORDER_SLACK`]).
//!
//! The JSON artifact (`BENCH_hierarchy.json`) contains only
//! schedule-deterministic fields — verdict booleans, DPOR execution
//! counts, registry metadata — so same-seed runs produce byte-identical
//! artifacts; raw throughput appears only in the markdown report.

use nbsp_check::{check, Mode};
use nbsp_core::{with_provider, LlScVar, Provider, ProviderId};

use crate::experiments::e13_modelcheck::{configs, MAX_EXECUTIONS};
use crate::measure::throughput;
use crate::report::{fmt_ops, Report, Table};

/// The weak-primitive tier, in registry order.
const WEAK: [ProviderId; 2] = [ProviderId::CasFromSwap, ProviderId::FebLlSc];

/// The hierarchy-ordering triple, strongest first: the native-CAS
/// Figure-4 construction, then each rung down the consensus hierarchy.
const ORDERING: [ProviderId; 3] = [
    ProviderId::Fig4Native,
    ProviderId::CasFromSwap,
    ProviderId::FebLlSc,
];

/// Thread counts for the ordering column (E7's sweep).
const THREADS: [usize; 3] = [1, 2, 4];

/// Ordering-gate slack: a higher rung passes if its aggregate throughput
/// is at least this fraction of the rung below it. The native-vs-weak gap
/// is ~2x and the swap-vs-FEB gap ~40% at best-of-[`REPS`], but a noisy
/// shared runner can still dent single cells; the slack absorbs that
/// without ever letting a genuine inversion (a *faster* lower rung)
/// through.
const ORDER_SLACK: f64 = 0.75;

/// Repetitions per throughput cell; the best run is kept. The ordering
/// gate is about intrinsic cost, so each rung deserves its
/// least-disturbed measurement (this also serves as warmup — cold first
/// cells were visibly depressed without it).
const REPS: usize = 3;

/// One registry entry of the portability matrix.
#[derive(Clone, Debug)]
pub struct Listing {
    /// Registry name.
    pub provider: &'static str,
    /// Process-model tier name.
    pub tier: &'static str,
    /// Required instruction set, rendered (`"cas+rll_rsc"` style).
    pub capability: String,
}

/// The deterministic verdicts for one weak-primitive provider.
#[derive(Clone, Debug)]
pub struct WeakStamp {
    /// Registry name.
    pub provider: &'static str,
    /// In-process conformance pass (sequencing, wraparound,
    /// two-writer linearization).
    pub conformance: bool,
    /// Seeded differential check against the sequential LL/SC spec.
    pub differential: bool,
    /// DPOR exploration of the E13 base configuration finished
    /// uncapped with no linearizability violation.
    pub modelcheck: bool,
    /// Completed DPOR executions (deterministic: exploration order
    /// depends only on the provider's access pattern).
    pub modelcheck_executions: u64,
}

/// One rung of the throughput column (markdown only, never JSON).
#[derive(Clone, Debug)]
pub struct TputRow {
    /// Registry name.
    pub provider: &'static str,
    /// (threads, ops/sec) cells, [`THREADS`] order.
    pub cells: Vec<(usize, f64)>,
    /// Sum of the cells — the ordering-gate metric.
    pub aggregate: f64,
}

/// Everything E16 measures.
#[derive(Clone, Debug)]
pub struct E16Results {
    /// The full registry, with capability and tier.
    pub listing: Vec<Listing>,
    /// Per-weak-provider verdicts.
    pub stamps: Vec<WeakStamp>,
    /// The ordering column, [`ORDERING`] order.
    pub tput: Vec<TputRow>,
    /// Whether this was a `--quick` run.
    pub quick: bool,
}

/// Non-panicking conformance pass: LL/VL/SC sequencing, tag wraparound,
/// and a two-writer linearization audit — the suite's core properties,
/// condensed to a verdict boolean so the artifact can carry it.
fn conformance_stamp<P: Provider>() -> bool {
    // Sequencing: an undisturbed sequence commits; a disturbed one fails
    // both VL and SC without writing; CL abandons cleanly.
    let env = match P::env(3) {
        Ok(env) => env,
        Err(_) => return false,
    };
    let var = match P::var(&env, 7) {
        Ok(var) => var,
        Err(_) => return false,
    };
    let mut tc0 = P::thread_ctx(&env, 0);
    let mut tc1 = P::thread_ctx(&env, 1);
    {
        let mut ctx0 = P::ctx(&mut tc0);
        let mut keep = <P::Var as LlScVar>::Keep::default();
        if var.ll(&mut ctx0, &mut keep) != 7 || !var.vl(&mut ctx0, &keep) {
            return false;
        }
        if !var.sc(&mut ctx0, &mut keep, 8) || var.read(&mut ctx0) != 8 {
            return false;
        }
    }
    {
        let mut ctx0 = P::ctx(&mut tc0);
        let mut ctx1 = P::ctx(&mut tc1);
        let mut keep0 = <P::Var as LlScVar>::Keep::default();
        let mut keep1 = <P::Var as LlScVar>::Keep::default();
        let _ = var.ll(&mut ctx0, &mut keep0);
        let _ = var.ll(&mut ctx1, &mut keep1);
        if !var.sc(&mut ctx1, &mut keep1, 9) {
            return false;
        }
        if var.vl(&mut ctx0, &keep0) || var.sc(&mut ctx0, &mut keep0, 10) {
            return false;
        }
        if var.read(&mut ctx0) != 9 {
            return false;
        }
        let mut keep = <P::Var as LlScVar>::Keep::default();
        let _ = var.ll(&mut ctx0, &mut keep);
        var.cl(&mut ctx0, &mut keep);
        let mut keep = <P::Var as LlScVar>::Keep::default();
        let v = var.ll(&mut ctx0, &mut keep);
        if !var.sc(&mut ctx0, &mut keep, v + 1) || var.read(&mut ctx0) != 10 {
            return false;
        }
    }

    // Wraparound: enough sequential commits to cycle the provider's tag
    // universe several times over.
    {
        let mut ctx0 = P::ctx(&mut tc0);
        let mask = var.max_val().min(0xFFFF);
        let base = var.read(&mut ctx0);
        for i in 0..3_000u64 {
            let mut keep = <P::Var as LlScVar>::Keep::default();
            let v = var.ll(&mut ctx0, &mut keep);
            if v != (base + i) & mask || !var.sc(&mut ctx0, &mut keep, (base + i + 1) & mask) {
                return false;
            }
        }
    }

    // Linearization: two racing writers; the final count must be exact
    // (a lost update would mean a falsely-successful SC).
    const WRITERS: usize = 2;
    const PER_WRITER: u64 = 2_000;
    let env = match P::env(WRITERS + 1) {
        Ok(env) => env,
        Err(_) => return false,
    };
    let var = match P::var(&env, 0) {
        Ok(var) => var,
        Err(_) => return false,
    };
    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let var = &var;
            let mut tc = P::thread_ctx(&env, t);
            s.spawn(move || {
                let mut ctx = P::ctx(&mut tc);
                let mut keep = <P::Var as LlScVar>::Keep::default();
                for _ in 0..PER_WRITER {
                    loop {
                        let v = var.ll(&mut ctx, &mut keep);
                        if var.sc(&mut ctx, &mut keep, v + 1) {
                            break;
                        }
                    }
                }
            });
        }
    });
    let mut tc = P::thread_ctx(&env, WRITERS);
    let mut ctx = P::ctx(&mut tc);
    var.read(&mut ctx) == WRITERS as u64 * PER_WRITER
}

/// Seeded differential check against the sequential LL/SC specification:
/// an LCG drives interleaved sequences on two contexts and every read,
/// VL verdict, and SC verdict must match the model (value plus a
/// version counter bumped per committed SC). Entirely single-threaded,
/// so the expected verdicts are exact — the contract's spurious-failure
/// allowance is never exercised by this schedule.
fn differential_stamp<P: Provider>() -> bool {
    let env = match P::env(2) {
        Ok(env) => env,
        Err(_) => return false,
    };
    let var = match P::var(&env, 0) {
        Ok(var) => var,
        Err(_) => return false,
    };
    let mut tc0 = P::thread_ctx(&env, 0);
    let mut tc1 = P::thread_ctx(&env, 1);
    let mut ctx0 = P::ctx(&mut tc0);
    let mut ctx1 = P::ctx(&mut tc1);

    let mut model: u64 = 0;
    let mut lcg: u64 = 0x9E37_79B9_7F4A_7C15;
    for _ in 0..600 {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        match (lcg >> 60) % 4 {
            0 => {
                // Undisturbed sequence on context 0: must commit.
                let mut keep = <P::Var as LlScVar>::Keep::default();
                if var.ll(&mut ctx0, &mut keep) != model {
                    return false;
                }
                model = (model + 1) & 0xFFFF;
                if !var.sc(&mut ctx0, &mut keep, model) {
                    return false;
                }
            }
            1 => {
                // Interference: 0 links, 1 commits, 0's VL and SC must
                // both fail and the failed SC must not write.
                let mut keep0 = <P::Var as LlScVar>::Keep::default();
                let mut keep1 = <P::Var as LlScVar>::Keep::default();
                if var.ll(&mut ctx0, &mut keep0) != model {
                    return false;
                }
                let _ = var.ll(&mut ctx1, &mut keep1);
                model = (model + 1) & 0xFFFF;
                if !var.sc(&mut ctx1, &mut keep1, model) {
                    return false;
                }
                if var.vl(&mut ctx0, &keep0) || var.sc(&mut ctx0, &mut keep0, 0xDEAD) {
                    return false;
                }
            }
            2 => {
                // Reads on both contexts agree with the model.
                if var.read(&mut ctx0) != model || var.read(&mut ctx1) != model {
                    return false;
                }
            }
            _ => {
                // CL abandons without poisoning the next sequence.
                let mut keep = <P::Var as LlScVar>::Keep::default();
                let _ = var.ll(&mut ctx1, &mut keep);
                var.cl(&mut ctx1, &mut keep);
                let mut keep = <P::Var as LlScVar>::Keep::default();
                if var.ll(&mut ctx1, &mut keep) != model {
                    return false;
                }
                model = (model + 1) & 0xFFFF;
                if !var.sc(&mut ctx1, &mut keep, model) {
                    return false;
                }
            }
        }
    }
    var.read(&mut ctx0) == model
}

/// DPOR stamp: exhaustively explore the E13 base configuration (the
/// 2-process LL/SC race with a spurious-failure budget) and report
/// (passed, completed executions).
fn modelcheck_stamp<P: Provider>() -> (bool, u64) {
    let cfg = &configs()[0];
    match check::<P>(&cfg.program, Mode::Dpor, MAX_EXECUTIONS) {
        Ok(out) => (out.violation.is_none() && !out.capped, out.executions),
        Err(_) => (false, 0),
    }
}

/// Contended LL/SC increments — the E7 counter workload, without the
/// telemetry sessions (E16 gates on ordering, not absolute numbers).
/// Best of [`REPS`] runs.
fn counter_tput<P: Provider>(threads: usize, per_thread: u64) -> f64 {
    let mut best = 0.0f64;
    // Fresh env per repetition: a provider's per-process slots are
    // claimed once per environment, so reps cannot share one.
    for _ in 0..REPS {
        let env = P::env(threads).expect("provider env");
        let var = P::var(&env, 0).expect("provider var");
        let t = throughput(threads, per_thread, |tid| {
            let var = &var;
            let mut tc = P::thread_ctx(&env, tid);
            move || {
                let mut ctx = P::ctx(&mut tc);
                let mut keep = <P::Var as LlScVar>::Keep::default();
                loop {
                    let v = var.ll(&mut ctx, &mut keep);
                    if var.sc(&mut ctx, &mut keep, (v + 1) & 0xFFFF) {
                        break;
                    }
                }
            }
        });
        best = best.max(t);
    }
    best
}

/// Runs every E16 measurement.
#[must_use]
pub fn collect(iters: u64, quick: bool) -> E16Results {
    let listing = ProviderId::ALL
        .iter()
        .map(|id| {
            let meta = id.meta();
            Listing {
                provider: meta.name,
                tier: meta.tier.name(),
                capability: meta.capability.to_string(),
            }
        })
        .collect();

    let mut stamps = Vec::new();
    for id in WEAK {
        macro_rules! stamp_one {
            ($p:ty) => {{
                let (modelcheck, modelcheck_executions) = modelcheck_stamp::<$p>();
                stamps.push(WeakStamp {
                    provider: id.meta().name,
                    conformance: conformance_stamp::<$p>(),
                    differential: differential_stamp::<$p>(),
                    modelcheck,
                    modelcheck_executions,
                });
            }};
        }
        with_provider!(id, stamp_one);
    }

    let mut tput = Vec::new();
    for id in ORDERING {
        macro_rules! tput_one {
            ($p:ty) => {{
                let cells: Vec<(usize, f64)> = THREADS
                    .iter()
                    .map(|&n| (n, counter_tput::<$p>(n, iters / n as u64)))
                    .collect();
                let aggregate = cells.iter().map(|&(_, t)| t).sum();
                tput.push(TputRow {
                    provider: id.meta().name,
                    cells,
                    aggregate,
                });
            }};
        }
        with_provider!(id, tput_one);
    }

    E16Results {
        listing,
        stamps,
        tput,
        quick,
    }
}

/// The named gate verdicts: every weak-provider stamp, plus the monotone
/// hierarchy ordering (each rung at least [`ORDER_SLACK`] of the rung
/// below it on aggregate throughput).
#[must_use]
pub fn gates(r: &E16Results) -> Vec<(String, bool)> {
    let mut gates = vec![(
        "registry_has_17_providers".to_string(),
        r.listing.len() == ProviderId::ALL.len(),
    )];
    for s in &r.stamps {
        gates.push((format!("{}_conformance", s.provider), s.conformance));
        gates.push((format!("{}_differential", s.provider), s.differential));
        gates.push((format!("{}_modelcheck", s.provider), s.modelcheck));
    }
    for pair in r.tput.windows(2) {
        gates.push((
            format!("{}_ge_{}", pair[0].provider, pair[1].provider),
            pair[0].aggregate >= ORDER_SLACK * pair[1].aggregate,
        ));
    }
    gates
}

/// Panics (naming the gate) on any failed verdict.
pub fn enforce(r: &E16Results) {
    for (name, ok) in gates(r) {
        assert!(ok, "E16 gate '{name}' failed (quick = {})", r.quick);
    }
}

/// Renders the E16 report (including the raw throughput cells the JSON
/// deliberately omits).
#[must_use]
pub fn render(r: &E16Results) -> Report {
    let mut report = Report::new();
    report.heading("E16 — consensus-hierarchy portability matrix");
    report.para(
        "Every registry provider with the instruction set it requires and \
         its process-model tier. The weak-primitive tier runs on machines \
         with no CAS and no LL/SC at all — swap + fetch-add \
         (arXiv:1802.03844) and NB-FEB (arXiv:0811.1304):",
    );
    let mut t = Table::new(["provider", "tier", "instruction set"]);
    for l in &r.listing {
        t.row([l.provider, l.tier, l.capability.as_str()]);
    }
    report.table(&t);

    report.para(
        "Weak-provider stamps: in-process conformance (sequencing, \
         wraparound, two-writer linearization), a seeded differential \
         check against the sequential LL/SC specification, and exhaustive \
         DPOR of the E13 base configuration:",
    );
    let mut t = Table::new(["provider", "conformance", "differential", "DPOR", "executions"]);
    for s in &r.stamps {
        t.row([
            s.provider.to_string(),
            s.conformance.to_string(),
            s.differential.to_string(),
            s.modelcheck.to_string(),
            s.modelcheck_executions.to_string(),
        ]);
    }
    report.table(&t);

    report.para(
        "The cost of weakening the hardware: contended LL/SC increments \
         (the E7 counter workload) down the hierarchy. The gate is the \
         documented monotone ordering — native CAS at least as fast as \
         cas-from-swap, which is at least as fast as feb-llsc (the \
         emulations serialise every write through a ticket handoff or a \
         full/empty claim ring):",
    );
    let mut t = Table::new(["provider", "throughput 1/2/4 threads", "aggregate"]);
    for row in &r.tput {
        t.row([
            row.provider.to_string(),
            row.cells
                .iter()
                .map(|&(_, tp)| fmt_ops(tp))
                .collect::<Vec<_>>()
                .join(" / "),
            fmt_ops(row.aggregate),
        ]);
    }
    report.table(&t);

    let gate_line = gates(r)
        .iter()
        .map(|(name, ok)| format!("{name}={}", if *ok { "ok" } else { "FAILED" }))
        .collect::<Vec<_>>()
        .join(", ");
    report.para(&format!("Gates: {gate_line}."));
    report
}

/// JSON artifact for CI. Only schedule-deterministic fields: registry
/// metadata, verdict booleans, and DPOR execution counts — never raw
/// throughput — so same-seed runs are byte-identical.
#[must_use]
pub fn to_json(r: &E16Results) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema_version\": 1,\n");
    s.push_str("  \"experiment\": \"hierarchy\",\n");
    s.push_str(&format!("  \"quick\": {},\n", r.quick));
    s.push_str(&format!("  \"provider_count\": {},\n", r.listing.len()));
    s.push_str("  \"providers\": [\n");
    for (i, l) in r.listing.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"tier\": \"{}\", \"capability\": \"{}\"}}{}\n",
            l.provider,
            l.tier,
            l.capability,
            if i + 1 == r.listing.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"weak_stamps\": [\n");
    for (i, st) in r.stamps.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"provider\": \"{}\", \"conformance\": {}, \"differential\": {}, \
             \"modelcheck\": {}, \"modelcheck_executions\": {}}}{}\n",
            st.provider,
            st.conformance,
            st.differential,
            st.modelcheck,
            st.modelcheck_executions,
            if i + 1 == r.stamps.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"gates\": {{{}}}\n",
        gates(r)
            .iter()
            .map(|(name, ok)| format!("\"{name}\": {ok}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str("}\n");
    s
}

/// Collect + render + enforce, for `exp_all`.
#[must_use]
pub fn run(iters: u64, quick: bool) -> Report {
    let r = collect(iters, quick);
    let report = render(&r);
    enforce(&r);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_passes_all_gates() {
        let r = collect(4_000, true);
        assert_eq!(r.listing.len(), 17, "every registry entry is listed");
        assert_eq!(r.stamps.len(), WEAK.len());
        enforce(&r);
        let json = to_json(&r);
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"provider_count\": 17"));
        assert!(json.contains("\"cas-from-swap\""));
        assert!(json.contains("\"feb-llsc\""));
    }

    #[test]
    fn json_is_deterministic_across_runs() {
        // The artifact's byte-identity contract: two collections (whose
        // raw throughput necessarily differs) must serialise identically,
        // because the JSON carries only schedule-deterministic fields.
        let a = collect(2_000, true);
        let b = collect(2_000, true);
        assert_eq!(to_json(&a), to_json(&b));
    }

    #[test]
    fn weak_tier_capabilities_exclude_cas() {
        for id in WEAK {
            let cap = id.meta().capability.to_string();
            assert!(
                !cap.contains("cas") && !cap.contains("rll"),
                "{} claims a strong primitive: {cap}",
                id.meta().name
            );
        }
    }

    #[test]
    fn report_smoke() {
        let r = collect(2_000, true);
        let md = render(&r).to_markdown();
        assert!(md.contains("E16"));
        assert!(md.contains("cas-from-swap"));
        assert!(md.contains("feb-llsc"));
        assert!(md.contains("instruction set"));
    }
}
