//! E17: static LL/SC protocol-obligation certification. See
//! `EXPERIMENTS.md`.
//!
//! Where E13 certifies the *providers* (every interleaving of the shipped
//! LL/SC implementations is linearizable), this experiment certifies the
//! *clients*: `nbsp_check::flow` lexes the six client crates, builds an
//! intraprocedural CFG per function, and runs the keep-lifetime dataflow,
//! the `PROVIDER_K` bound certification, the release/acquire pairing
//! table, and the R7 backoff-discipline scan.
//!
//! Four deterministic gates:
//! * zero unallowlisted violations across the scanned crates;
//! * the repo-wide certified keep bound **equals**
//!   [`nbsp_core::provider::PROVIDER_K`] (a drifting bound in either
//!   direction means the constant and the code disagree);
//! * both planted canaries (the PR 6 keep-leak-on-early-return and an
//!   unpaired Release store) are caught with file:line + path
//!   diagnostics — the analyzer is not vacuous;
//! * the whole report is byte-identical across two back-to-back runs
//!   (the JSON artifact is diffable in CI).

use std::path::Path;

use nbsp_check::flow::{self, CanaryVerdict, RepoFlow};

use crate::report::{Report, Table};

/// Everything E17 measures.
#[derive(Clone, Debug)]
pub struct E17Results {
    /// The aggregate repo analysis.
    pub repo: RepoFlow,
    /// Keep-leak canary verdict.
    pub canary_leak: CanaryVerdict,
    /// Unpaired-release canary verdict.
    pub canary_release: CanaryVerdict,
    /// True iff two consecutive analyses serialized byte-identically.
    pub deterministic: bool,
    /// Number of functions analyzed (post-filter: protocol-relevant).
    pub functions: usize,
    /// Total keep births across those functions.
    pub births: usize,
    /// Findings suppressed by annotations/allowlists.
    pub allowed: usize,
}

/// Runs the analyzer twice against `root` and compares the serialized
/// artifacts for byte-identity.
#[must_use]
pub fn collect(root: &Path) -> E17Results {
    let repo = flow::analyze_repo(root);
    let again = flow::analyze_repo(root);
    let (canary_leak, canary_release) = flow::check_canaries();
    let first = E17Results {
        functions: repo.functions.len(),
        births: repo.functions.iter().map(|f| f.births).sum(),
        allowed: repo.allowed.len(),
        deterministic: true,
        canary_leak: canary_leak.clone(),
        canary_release: canary_release.clone(),
        repo,
    };
    let second = E17Results {
        functions: again.functions.len(),
        births: again.functions.iter().map(|f| f.births).sum(),
        allowed: again.allowed.len(),
        deterministic: true,
        canary_leak,
        canary_release,
        repo: again,
    };
    let deterministic = to_json(&first) == to_json(&second);
    E17Results { deterministic, ..first }
}

/// Renders the markdown report.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn render(r: &E17Results) -> Report {
    let mut report = Report::new();
    report.heading("E17: static LL/SC protocol-obligation certification");
    report.para(&format!(
        "Keep-lifetime dataflow over {} protocol-touching functions ({} keep \
         births) in crates/{{core,llx,structures,serve,dynamic,telemetry}}: \
         every LL/WLL/LLX birth must reach an SC/VL/CL/SCX-shaped consumer \
         on all paths, the certified simultaneous-keep bound must equal \
         PROVIDER_K = {}, and every Release store site must pair with an \
         Acquire load site on the same field. {} finding(s) are suppressed \
         by in-source annotations/allowlists (each with a reason); \
         unallowlisted violations: {}.",
        r.functions,
        r.births,
        r.repo.provider_k,
        r.allowed,
        r.repo.violations.len(),
    ));
    let mut t = Table::new(["function", "file", "births", "max live", "certified", "llx +1"]);
    let mut top: Vec<_> = r.repo.functions.iter().filter(|f| !f.protocol_impl).collect();
    top.sort_by(|a, b| {
        (std::cmp::Reverse(b.certified), &b.file, b.line)
            .cmp(&(std::cmp::Reverse(a.certified), &a.file, a.line))
            .reverse()
    });
    for f in top.iter().take(12) {
        t.row([
            f.name.clone(),
            f.file.clone(),
            f.births.to_string(),
            f.max_live.to_string(),
            f.certified.to_string(),
            if f.uses_llx_family { "yes" } else { "-" }.to_string(),
        ]);
    }
    report.table(&t);
    report.para(&format!(
        "Certified repo-wide keep bound: {} (PROVIDER_K = {}, {}).",
        r.repo.certified_bound,
        r.repo.provider_k,
        if r.repo.certified_bound == r.repo.provider_k {
            "exact match — the hand audit is now mechanical"
        } else {
            "MISMATCH"
        },
    ));
    let mut ot = Table::new(["crate", "field", "release sites", "acquire sites", "paired via"]);
    for e in &r.repo.ordering {
        if e.releases.is_empty() {
            continue;
        }
        ot.row([
            e.crate_name.clone(),
            e.field.clone(),
            e.releases.len().to_string(),
            e.acquires.len().to_string(),
            match (&e.alias, e.paired) {
                (Some(a), _) => format!("alias `{a}`"),
                (None, true) if !e.acquires.is_empty() => "same field".to_string(),
                (None, true) => "annotation".to_string(),
                (None, false) => "UNPAIRED".to_string(),
            },
        ]);
    }
    report.table(&ot);
    report.para(&format!(
        "Canaries: keep-leak {} ({}); unpaired-release {} ({}). \
         Deterministic across two runs: {}.",
        if r.canary_leak.caught { "caught" } else { "MISSED" },
        r.canary_leak.diagnostic,
        if r.canary_release.caught { "caught" } else { "MISSED" },
        r.canary_release.diagnostic,
        r.deterministic,
    ));
    for v in &r.repo.violations {
        report.para(&format!("VIOLATION: {v}"));
    }
    report
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// JSON artifact for CI (`BENCH_obligations.json` is written by the
/// `exp_obligations` binary). Byte-identical across runs by
/// construction: everything serialized is sorted and line-number based.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn to_json(r: &E17Results) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema_version\": 1,\n");
    s.push_str("  \"experiment\": \"obligations\",\n");
    s.push_str(&format!("  \"provider_k\": {},\n", r.repo.provider_k));
    s.push_str(&format!(
        "  \"certified_keep_bound\": {},\n",
        r.repo.certified_bound
    ));
    s.push_str(&format!(
        "  \"bound_matches_provider_k\": {},\n",
        r.repo.certified_bound == r.repo.provider_k
    ));
    s.push_str(&format!(
        "  \"canaries\": {{\"keep_leak_caught\": {}, \"unpaired_release_caught\": {}}},\n",
        r.canary_leak.caught, r.canary_release.caught,
    ));
    s.push_str(&format!("  \"deterministic\": {},\n", r.deterministic));
    s.push_str(&format!("  \"functions_analyzed\": {},\n", r.functions));
    s.push_str(&format!("  \"keep_births\": {},\n", r.births));
    s.push_str(&format!("  \"allowed_findings\": {},\n", r.allowed));
    s.push_str("  \"functions\": [\n");
    for (i, f) in r.repo.functions.iter().enumerate() {
        let comma = if i + 1 == r.repo.functions.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"file\": \"{}\", \"fn\": \"{}\", \"line\": {}, \"births\": {}, \
             \"max_live\": {}, \"certified\": {}, \"uses_llx_family\": {}, \
             \"protocol_impl\": {}, \"leaks_allowed\": {}}}{comma}\n",
            esc(&f.file),
            esc(&f.name),
            f.line,
            f.births,
            f.max_live,
            f.certified,
            f.uses_llx_family,
            f.protocol_impl,
            f.leaks.iter().filter(|l| l.allowed.is_some()).count(),
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"ordering\": [\n");
    let with_sites: Vec<_> = r
        .repo
        .ordering
        .iter()
        .filter(|e| !e.releases.is_empty())
        .collect();
    for (i, e) in with_sites.iter().enumerate() {
        let comma = if i + 1 == with_sites.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"crate\": \"{}\", \"field\": \"{}\", \"releases\": {}, \
             \"acquires\": {}, \"alias\": {}, \"paired\": {}}}{comma}\n",
            esc(&e.crate_name),
            esc(&e.field),
            e.releases.len(),
            e.acquires.len(),
            e.alias
                .as_ref()
                .map_or("null".to_string(), |a| format!("\"{}\"", esc(a))),
            e.paired,
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"violations\": [\n");
    for (i, v) in r.repo.violations.iter().enumerate() {
        let comma = if i + 1 == r.repo.violations.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{comma}\n",
            esc(v.rule),
            esc(&v.path),
            v.line,
            esc(&v.message),
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// Enforces the four gates; panics (→ nonzero exit) on any failure.
pub fn enforce(r: &E17Results) {
    assert!(
        r.canary_leak.caught,
        "planted keep-leak canary missed — the dataflow pass is vacuous: {}",
        r.canary_leak.diagnostic
    );
    assert!(
        r.canary_release.caught,
        "planted unpaired-release canary missed — the ordering pass is vacuous: {}",
        r.canary_release.diagnostic
    );
    assert!(
        r.repo.violations.is_empty(),
        "{} unallowlisted obligation violation(s):\n{}",
        r.repo.violations.len(),
        r.repo
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(
        r.repo.certified_bound, r.repo.provider_k,
        "certified keep bound {} != PROVIDER_K {} — update the constant or the client",
        r.repo.certified_bound, r.repo.provider_k
    );
    assert!(
        r.deterministic,
        "BENCH_obligations.json differed between two back-to-back analyses"
    );
}

/// Collect + render + enforce against the workspace root, for `exp_all`.
#[must_use]
pub fn run() -> Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let r = collect(&root);
    let report = render(&r);
    enforce(&r);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> std::path::PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    #[test]
    fn repo_passes_all_gates() {
        let r = collect(&repo_root());
        enforce(&r);
        let json = to_json(&r);
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"keep_leak_caught\": true"));
        assert!(json.contains("\"unpaired_release_caught\": true"));
    }

    #[test]
    fn certified_bound_equals_provider_k() {
        // The satellite replacing the PR 8 hand audit: the analyzer's
        // repo-wide static maximum of simultaneously-live keeps (plus the
        // LLX help transient) must equal the constant the providers
        // allocate for. A new nested-keep structure bumps this test, and
        // the constant, mechanically.
        let r = flow::analyze_repo(&repo_root());
        assert_eq!(r.certified_bound, nbsp_core::provider::PROVIDER_K);
    }

    #[test]
    fn artifact_is_byte_identical_across_runs() {
        let a = collect(&repo_root());
        let b = collect(&repo_root());
        assert_eq!(to_json(&a), to_json(&b));
    }
}
