//! **E4 — spurious-failure resilience** (§1, §5).
//!
//! The RLL/RSC-based constructions are wait-free *provided finitely many
//! spurious failures occur per operation*, and terminate in constant time
//! after the last one. Two adversaries:
//!
//! * probabilistic background noise (cache-invalidation traffic): every
//!   RSC fails with probability p — mean attempts per operation should be
//!   the geometric 1/(1-p);
//! * a worst-case budget adversary that fails the first B RSCs outright —
//!   the operation must complete in exactly B + 1 attempts.

use nbsp_core::{Keep, RllLlSc, TagLayout};
use nbsp_memsim::{InstructionSet, Machine, SpuriousMode};

use crate::report::{Report, Table};

/// Mean RSC attempts per successful Figure-5 SC under failure probability
/// `p`, over `ops` operations.
#[must_use]
pub fn attempts_under_probability(p: f64, ops: u64, seed: u64) -> f64 {
    let m = Machine::builder(1)
        .instruction_set(InstructionSet::RllRscOnly)
        .spurious(SpuriousMode::Probability { p })
        .seed(seed)
        .build();
    let proc = m.processor(0);
    let var = RllLlSc::new(TagLayout::half(), 0).unwrap();
    for _ in 0..ops {
        let mut keep = Keep::default();
        let v = var.ll(&proc, &mut keep);
        assert!(var.sc(&proc, &keep, v + 1), "single-threaded SC must win");
    }
    proc.stats().rsc_attempts as f64 / ops as f64
}

/// Attempts used by one SC against a budget adversary failing the first
/// `budget` RSCs.
#[must_use]
pub fn attempts_under_budget(budget: u64) -> u64 {
    let m = Machine::builder(1)
        .instruction_set(InstructionSet::RllRscOnly)
        .spurious(SpuriousMode::Budget { per_proc: budget })
        .build();
    let proc = m.processor(0);
    let var = RllLlSc::new(TagLayout::half(), 0).unwrap();
    let mut keep = Keep::default();
    let v = var.ll(&proc, &mut keep);
    assert!(var.sc(&proc, &keep, v + 1));
    proc.stats().rsc_attempts
}

/// Runs E4.
#[must_use]
pub fn run(ops: u64) -> Report {
    let mut report = Report::new();
    report.heading("E4 — spurious-failure resilience (wait-freedom caveat)");
    report.para(
        "Paper claim: RLL/RSC-based operations terminate given finitely \
         many spurious failures, in constant time after the last one. \
         Probabilistic adversary: mean attempts should track the geometric \
         expectation 1/(1-p).",
    );
    let mut t = Table::new(["P(spurious)", "mean RSC attempts/op", "expected 1/(1-p)"]);
    for p in [0.0, 0.01, 0.1, 0.5, 0.9] {
        let measured = attempts_under_probability(p, ops, 42);
        t.row([
            format!("{p:.2}"),
            format!("{measured:.3}"),
            format!("{:.3}", 1.0 / (1.0 - p)),
        ]);
    }
    report.table(&t);

    report.para(
        "Budget adversary (fails the first B RSCs outright): the operation \
         must finish in exactly B + 1 attempts — \"constant time after the \
         last spurious failure\" with zero slack.",
    );
    let mut t2 = Table::new(["B (forced failures)", "attempts used", "bound B + 1"]);
    for b in [0u64, 1, 4, 16, 64, 256] {
        let used = attempts_under_budget(b);
        t2.row([b.to_string(), used.to_string(), (b + 1).to_string()]);
    }
    report.table(&t2);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_means_one_attempt() {
        assert!((attempts_under_probability(0.0, 2_000, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn attempts_track_geometric_mean() {
        let a = attempts_under_probability(0.5, 20_000, 7);
        assert!((a - 2.0).abs() < 0.1, "p=0.5 should need ~2 attempts, got {a}");
    }

    #[test]
    fn budget_adversary_is_exactly_b_plus_one() {
        for b in [0u64, 3, 17, 100] {
            assert_eq!(attempts_under_budget(b), b + 1);
        }
    }

    #[test]
    fn report_smoke() {
        let md = run(2_000).to_markdown();
        assert!(md.contains("E4"));
        assert!(md.contains("1/(1-p)"));
    }
}
