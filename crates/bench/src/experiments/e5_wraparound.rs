//! **E5 — tag size vs wraparound horizon** (§1, §3.2).
//!
//! The paper's arithmetic: "on a 64-bit machine, reserving 48 bits for the
//! tag means that an error can occur only if a variable is modified 2⁴⁸
//! times during one LL-SC sequence. (Even if a variable is modified a
//! million times a second, this would take about nine years.)" We
//! reproduce the table for a range of tag widths, at both the paper's
//! canonical 10⁶ modifications/second and the *measured* peak modification
//! rate of this host — and we quantify the §3.2 "two tags in one word"
//! penalty of naively stacking Figure 4 on Figure 3.

use nbsp_core::{CasLlSc, Keep, Native, TagLayout};

use crate::measure::ns_per_op;
use crate::report::{fmt_duration_secs, fmt_ops, Report, Table};

/// Tag widths surveyed (the paper's example is 48).
pub const TAG_BITS: [u32; 6] = [8, 16, 24, 32, 48, 56];

/// Measures this host's peak single-threaded SC rate (mods/sec) — the
/// fastest a variable can possibly be modified here.
#[must_use]
pub fn measured_mod_rate(iters: u64) -> f64 {
    let var = CasLlSc::new_native(TagLayout::half(), 0).unwrap();
    let ns = ns_per_op(iters, 3, || {
        let mut keep = Keep::default();
        let v = var.ll(&Native, &mut keep);
        let ok = var.sc(&Native, &keep, (v + 1) & 0xFFFF_FFFF);
        debug_assert!(ok);
    });
    1e9 / ns
}

/// Runs E5.
#[must_use]
pub fn run(iters: u64) -> Report {
    let rate = measured_mod_rate(iters);
    let mut report = Report::new();
    report.heading("E5 — tag width vs wraparound horizon");
    report.para(&format!(
        "Paper claim: 48 tag bits at 10⁶ modifications/s wrap in ≈ 9 years. \
         Measured peak modification rate on this host: {} (single-threaded \
         LL;SC cycle — a worst case no real workload sustains on one \
         variable).",
        fmt_ops(rate)
    ));
    let mut t = Table::new([
        "tag bits",
        "value bits left",
        "horizon @ 10⁶ mods/s (paper)",
        "horizon @ measured rate",
    ]);
    for &bits in &TAG_BITS {
        let layout = TagLayout::new(bits, 64 - bits).unwrap();
        t.row([
            bits.to_string(),
            (64 - bits).to_string(),
            fmt_duration_secs(layout.seconds_to_wraparound(1e6)),
            fmt_duration_secs(layout.seconds_to_wraparound(rate)),
        ]);
    }
    report.table(&t);

    report.para(
        "The §3.2 composition penalty: naively stacking Figure 4 on Figure \
         3 stores *two* tags per word. With a 32-bit inner tag, a 16-bit \
         outer tag and 16-bit values remain — Figure 5's fused single tag \
         reclaims the whole word:",
    );
    let mut t2 = Table::new([
        "configuration",
        "tag bits (outer)",
        "value bits",
        "outer-tag horizon @ 10⁶ mods/s",
    ]);
    let naive = TagLayout::for_width(16, 16, 32).unwrap();
    t2.row([
        "Fig 4 over Fig 3 (32-bit inner tag)".to_string(),
        "16".to_string(),
        "16".to_string(),
        fmt_duration_secs(naive.seconds_to_wraparound(1e6)),
    ]);
    let fused = TagLayout::new(48, 16).unwrap();
    t2.row([
        "Fig 5 fused single tag".to_string(),
        "48".to_string(),
        "16".to_string(),
        fmt_duration_secs(fused.seconds_to_wraparound(1e6)),
    ]);
    report.table(&t2);
    report.para(
        "Expected shape: horizons multiply by 2⁸ per 8 tag bits; the 48-bit \
         row at 10⁶ mods/s lands on the paper's ≈ 9 years; the fused Figure \
         5 beats the naive stack by the full 2³² inner-tag factor.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_nine_year_figure_reproduces() {
        let l = TagLayout::new(48, 16).unwrap();
        let years = l.seconds_to_wraparound(1e6) / (365.25 * 24.0 * 3600.0);
        assert!((8.5..9.5).contains(&years), "{years}");
    }

    #[test]
    fn measured_rate_is_sane() {
        let r = measured_mod_rate(50_000);
        assert!(r > 1e5, "implausibly slow host: {r} mods/s");
        assert!(r < 1e11, "implausibly fast host: {r} mods/s");
    }

    #[test]
    fn report_smoke() {
        let md = run(5_000).to_markdown();
        assert!(md.contains("E5"));
        assert!(md.contains("48"));
        assert!(md.contains("years"));
    }
}
