//! **E14 — the elastic pool: dynamic joining pays off under a flash
//! crowd, and the durable variant survives crashes.**
//!
//! PR 6 ended with the fabric's worker count pinned for the run and the
//! `Directory` generation word documented as the elastic-resize hook,
//! blocked on dynamic joining. This experiment closes the loop on both
//! halves of the new `dynamic` subsystem:
//!
//! 1. **The elastic sweep** — one flash-crowd trace (ON/OFF bursts whose
//!    *mean* offered rate is 1.2× the full pool's capacity) is served by
//!    fixed fabric pools of 2, 4, and 8 workers and by the elastic pool
//!    (min 2, max 8), all under the *same* admission configuration. The
//!    headline gate: **the elastic pool beats every fixed size on p99
//!    sojourn**. The two loss modes it splits are real and distinct:
//!    * a *small* fixed pool admits at the shared bucket rate but serves
//!      at 2–4 servers, so the backlog compounds across bursts;
//!    * the *full-size* fixed pool keeps `W × B` tokens of standing
//!      slack parked in its admission stripes, so it admits a deeper
//!      slab of every ON burst — and the slab tail is its p99. The
//!      elastic pool meets each burst with a small pool's stripe slack
//!      (deactivated stripes hand their tokens back to the global
//!      bucket via `redistribute`), sheds the slab front, and scales
//!      workers up to absorb what it did admit.
//!
//!    The cell conserves (`generated == admitted + shed`,
//!    `completed == admitted` across resizes) and the whole result —
//!    percentiles, counters, resize history — is byte-identical across
//!    same-seed runs (gated by running it twice). It is also
//!    provider-independent: the run repeats on `dynamic-durable` and on
//!    the fixed-N native baseline and must produce the identical result
//!    block (the virtual clock depends only on the seed; the providers
//!    differ in what the real threads execute, including genuine
//!    join/retire churn on the dynamic pair).
//! 2. **The crash sweep** — the durable provider's whole point. A
//!    seeded sweep of kill-at-random-schedule-point runs: each trial
//!    installs a `CrashPlan`, lets 3 threads hammer a durable counter
//!    until the plan cuts the power at an instrumented access, then
//!    recovers the variable and checks the durable-linearizability
//!    verdict `initial + returned ≤ recovered ≤ initial + returned +
//!    threads`, rejoins through a fresh domain, and resumes. Gates: the
//!    sweep must include both crashed and crash-free trials, every
//!    verdict must hold (asserted inside the harness), and the sweep is
//!    seed-deterministic.
//!
//! The run writes `BENCH_elastic.json` for trend tracking.

use nbsp_core::ProviderId;
use nbsp_dynamic::{sweep, SweepReport};
use nbsp_serve::service::CLAIM_NS_PER_CONTENDER;
use nbsp_serve::{
    run_elastic_cell_as, run_fabric_cell, AdmissionConfig, ArrivalProcess, CellResult,
    ElasticConfig, ElasticResult, FabricConfig, ScalerConfig, ServeSinks, Workload,
};
use nbsp_telemetry::{AtomicHists, AtomicTotals, Event, Hist};

use crate::report::{fmt_ns, fmt_ops, Report, Table};

/// Seed for every cell and for the crash sweep.
const SEED: u64 = 0x5e14_5e14;

/// Mean virtual service demand per request.
const SERVICE_MEAN_NS: f64 = 1_000.0;

/// The elastic pool's floor (and the smallest fixed pool).
const MIN_WORKERS: usize = 2;

/// The elastic pool's ceiling (and the largest fixed pool).
const MAX_WORKERS: usize = 8;

/// The fixed pool sizes the elastic pool must beat.
const FIXED_WORKERS: [usize; 3] = [2, 4, 8];

/// Offered flash-crowd mean as a fraction of the *full* pool's capacity
/// (the ISSUE's "1.2x capacity" point: overload even for max workers).
const OFFERED_RHO: f64 = 1.2;

/// Shared token-bucket sustained rate as a fraction of full-pool
/// capacity — identical for every cell, fixed or elastic.
const ADMIT_RHO: f64 = 0.85;

/// Shared token-bucket depth.
const ADMIT_BURST: u64 = 256;

/// Per-shard ring capacity.
const RING_CAPACITY: usize = 1024;

/// Batch size `B` of a global → stripe token refill. Deliberately large
/// relative to a burst: `W × B` of standing stripe slack is the
/// full-size fixed pool's loss mode.
const REFILL_BATCH: u64 = 128;

/// Crash-sweep shape: threads × ops per thread per trial.
const CRASH_THREADS: usize = 3;
const CRASH_OPS: u64 = 16;

/// Full-pool capacity in requests per second.
fn full_capacity_per_sec() -> f64 {
    MAX_WORKERS as f64 * 1e9 / SERVICE_MEAN_NS
}

/// The one flash-crowd trace every cell serves: ON bursts at 2.4× the
/// full pool's capacity, 50/50 duty, so the mean is 1.2×.
fn flash_crowd() -> ArrivalProcess {
    ArrivalProcess::OnOff {
        on_rate_per_sec: 2.0 * OFFERED_RHO * full_capacity_per_sec(),
        on_mean_ns: 50_000.0,
        off_mean_ns: 50_000.0,
    }
}

/// The shared admission configuration (identical across cells — the
/// sweep compares pool shapes, not admission policies).
fn admission() -> AdmissionConfig {
    AdmissionConfig {
        rate_per_sec: ADMIT_RHO * full_capacity_per_sec(),
        burst: ADMIT_BURST,
    }
}

fn scaler() -> ScalerConfig {
    ScalerConfig {
        check_every: 16,
        up_backlog_ns: 3_000,
        down_backlog_ns: 1_000,
        idle_gap_ns: 10_000,
    }
}

fn elastic_config(requests: u64) -> ElasticConfig {
    ElasticConfig {
        seed: SEED,
        process: flash_crowd(),
        workload: Workload::Counter,
        min_workers: MIN_WORKERS,
        max_workers: MAX_WORKERS,
        requests,
        service_mean_ns: SERVICE_MEAN_NS,
        admission: Some(admission()),
        ring_capacity: RING_CAPACITY,
        refill_batch: REFILL_BATCH,
        scaler: scaler(),
    }
}

/// One fixed-size fabric cell on the shared trace + admission.
fn run_fixed(workers: usize, requests: u64, sinks: &ServeSinks) -> CellResult {
    let result = run_fabric_cell(
        &FabricConfig {
            seed: SEED,
            process: flash_crowd(),
            workload: Workload::Counter,
            workers,
            requests,
            service_mean_ns: SERVICE_MEAN_NS,
            admission: Some(admission()),
            ring_capacity: RING_CAPACITY,
            refill_batch: REFILL_BATCH,
        },
        Some(sinks),
    );
    eprintln!(
        "[e14_elastic] fixed w={workers}: p99={} shed={}/{} steals={}",
        fmt_ns(result.p99_ns as f64),
        result.snapshot.shed,
        result.snapshot.generated(),
        result.snapshot.steals,
    );
    result
}

fn run_elastic_on(provider: ProviderId, requests: u64, sinks: &ServeSinks) -> ElasticResult {
    let r = run_elastic_cell_as(provider, &elastic_config(requests), Some(sinks));
    eprintln!(
        "[e14_elastic] elastic[{}]: p99={} shed={}/{} resizes={} peak={} low={}",
        provider.name(),
        fmt_ns(r.cell.p99_ns as f64),
        r.cell.snapshot.shed,
        r.cell.snapshot.generated(),
        r.pool.resizes,
        r.pool.peak_workers,
        r.pool.low_workers,
    );
    r
}

/// Run-level telemetry block (same shape as E12's).
fn telemetry_json(indent: &str, sinks: &ServeSinks) -> String {
    if !nbsp_telemetry::enabled() {
        return format!("{indent}\"telemetry\": {{\"enabled\": false}}");
    }
    let totals = sinks.events.totals();
    let events = Event::ALL
        .iter()
        .map(|e| format!("\"{}\": {}", e.name(), totals[e.index()]))
        .collect::<Vec<_>>()
        .join(", ");
    let hist_totals = sinks.hists.totals();
    let hists = Hist::ALL
        .iter()
        .map(|h| {
            let buckets = hist_totals[*h as usize]
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            format!("{indent}    \"{}\": [{buckets}]", h.name())
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{indent}\"telemetry\": {{\n\
         {indent}  \"enabled\": true,\n\
         {indent}  \"events\": {{{events}}},\n\
         {indent}  \"histograms\": {{\n{hists}\n{indent}  }}\n\
         {indent}}}"
    )
}

fn cell_json(r: &CellResult) -> String {
    let snap = &r.snapshot;
    format!(
        "\"generated\": {}, \"admitted\": {}, \"shed\": {}, \"completed\": {}, \
         \"steals\": {}, \"refills\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \
         \"p99_ns\": {}, \"p999_ns\": {}",
        snap.generated(),
        snap.admitted,
        snap.shed,
        snap.completed,
        snap.steals,
        snap.refills,
        r.p50_ns,
        r.p95_ns,
        r.p99_ns,
        r.p999_ns,
    )
}

fn to_json(
    fixed: &[(usize, CellResult)],
    elastic: &[(ProviderId, ElasticResult)],
    crash: &SweepReport,
    requests: u64,
    sinks: &ServeSinks,
) -> String {
    let adm = admission();
    let sc = scaler();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema_version\": 1,\n");
    s.push_str("  \"experiment\": \"elastic\",\n");
    s.push_str(&format!("  \"seed\": {SEED},\n"));
    s.push_str(&format!("  \"requests_per_cell\": {requests},\n"));
    s.push_str(&format!("  \"service_mean_ns\": {SERVICE_MEAN_NS},\n"));
    s.push_str(&format!(
        "  \"offered\": {{\"rho_of_full_pool\": {OFFERED_RHO}, \"process\": \"onoff\"}},\n"
    ));
    s.push_str(&format!(
        "  \"admission\": {{\"rate_per_sec\": {:.1}, \"burst\": {}}},\n",
        adm.rate_per_sec, adm.burst
    ));
    s.push_str(&format!(
        "  \"fabric\": {{\"claim_ns_per_contender\": {CLAIM_NS_PER_CONTENDER}, \
         \"steal_ns\": {}, \"ring_capacity\": {RING_CAPACITY}, \
         \"refill_batch\": {REFILL_BATCH}}},\n",
        nbsp_serve::fabric::STEAL_NS
    ));
    s.push_str(&format!(
        "  \"scaler\": {{\"check_every\": {}, \"up_backlog_ns\": {}, \
         \"down_backlog_ns\": {}, \"min_workers\": {MIN_WORKERS}, \
         \"max_workers\": {MAX_WORKERS}}},\n",
        sc.check_every, sc.up_backlog_ns, sc.down_backlog_ns
    ));
    s.push_str("  \"fixed\": [\n");
    for (i, (w, r)) in fixed.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workers\": {w}, {}}}{}\n",
            cell_json(r),
            if i + 1 == fixed.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"elastic\": [\n");
    for (i, (p, r)) in elastic.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"provider\": \"{}\", {}, \"pool\": {{\"resizes\": {}, \
             \"scale_ups\": {}, \"scale_downs\": {}, \"peak_workers\": {}, \
             \"low_workers\": {}, \"final_workers\": {}}}}}{}\n",
            p.name(),
            cell_json(&r.cell),
            r.pool.resizes,
            r.pool.scale_ups,
            r.pool.scale_downs,
            r.pool.peak_workers,
            r.pool.low_workers,
            r.pool.final_workers,
            if i + 1 == elastic.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"crash\": {{\"threads\": {CRASH_THREADS}, \"ops_per_thread\": {CRASH_OPS}, \
         \"trials\": {}, \"crashed\": {}, \"completed\": {}, \"min_recovered\": {}, \
         \"max_recovered\": {}}},\n",
        crash.trials, crash.crashed, crash.completed, crash.min_recovered, crash.max_recovered
    ));
    s.push_str(&telemetry_json("  ", sinks));
    s.push_str("\n}\n");
    s
}

/// Runs the E14 sweep with `requests` generated per cell and
/// `crash_trials` kill-point trials, writes `BENCH_elastic.json`, and
/// returns the report.
///
/// # Panics
///
/// Panics (failing the experiment) if the elastic pool does not beat
/// every fixed pool on p99, a cell fails conservation, the double run is
/// not byte-identical, the providers disagree, the crash sweep misses an
/// outcome class, or the JSON cannot be written.
pub fn run(requests: u64, crash_trials: usize) -> Report {
    let sinks = ServeSinks::new().expect("telemetry sinks");

    let fixed: Vec<(usize, CellResult)> = FIXED_WORKERS
        .iter()
        .map(|&w| (w, run_fixed(w, requests, &sinks)))
        .collect();

    let elastic = run_elastic_on(ProviderId::Dynamic, requests, &sinks);
    let elastic_again = run_elastic_on(ProviderId::Dynamic, requests, &sinks);
    let elastic_durable = run_elastic_on(ProviderId::DynamicDurable, requests, &sinks);
    let elastic_native = run_elastic_on(ProviderId::Fig4Native, requests, &sinks);

    // The sweep's recover/rejoin events land in this thread's telemetry
    // buffer; baseline a flusher here (not earlier — the cells above
    // flushed their own main-thread deltas) and fold the sweep's events
    // into the run-level sinks so the JSON's `crash_recover` count
    // reflects the trials.
    let mut events = nbsp_telemetry::Flusher::new();
    let crash = sweep(SEED, crash_trials, CRASH_THREADS, CRASH_OPS);
    let crash_again = sweep(SEED, crash_trials, CRASH_THREADS, CRASH_OPS);
    events.flush(&sinks.events);
    eprintln!(
        "[e14_elastic] crash sweep: {} trials, {} crashed, {} crash-free, recovered in [{}, {}]",
        crash.trials, crash.crashed, crash.completed, crash.min_recovered, crash.max_recovered
    );

    let elastic_rows = [
        (ProviderId::Dynamic, elastic),
        (ProviderId::DynamicDurable, elastic_durable),
        (ProviderId::Fig4Native, elastic_native),
    ];
    let json = to_json(&fixed, &elastic_rows, &crash, requests, &sinks);
    std::fs::write("BENCH_elastic.json", &json).expect("write BENCH_elastic.json");
    eprintln!("[e14_elastic] wrote BENCH_elastic.json");

    let cap = full_capacity_per_sec();
    let mut report = Report::new();
    report.heading("E14 — elastic serving pool on dynamic joining");
    report.para(&format!(
        "One flash-crowd trace (ON/OFF, mean {OFFERED_RHO:.1}x the {MAX_WORKERS}-worker pool's \
         capacity of {}) served by fixed fabric pools of {FIXED_WORKERS:?} workers and by the \
         elastic pool (min {MIN_WORKERS}, max {MAX_WORKERS}), all under the same admission \
         configuration ({:.0}% of full-pool capacity, burst {ADMIT_BURST}). {requests} requests \
         per cell, seed `{SEED:#x}`; every number below is byte-identical across runs.",
        fmt_ops(cap),
        ADMIT_RHO * 100.0,
    ));

    let mut table = Table::new(["pool", "p50", "p99", "p99.9", "shed", "admitted"]);
    for (w, r) in &fixed {
        table.row([
            format!("fixed {w}"),
            fmt_ns(r.p50_ns as f64),
            fmt_ns(r.p99_ns as f64),
            fmt_ns(r.p999_ns as f64),
            format!("{:.1}%", 100.0 * r.snapshot.shed as f64 / r.snapshot.generated() as f64),
            format!("{}", r.snapshot.admitted),
        ]);
    }
    let er = &elastic_rows[0].1.cell;
    table.row([
        format!("elastic {MIN_WORKERS}..{MAX_WORKERS}"),
        fmt_ns(er.p50_ns as f64),
        fmt_ns(er.p99_ns as f64),
        fmt_ns(er.p999_ns as f64),
        format!(
            "{:.1}%",
            100.0 * er.snapshot.shed as f64 / er.snapshot.generated() as f64
        ),
        format!("{}", er.snapshot.admitted),
    ]);
    report.heading("flash crowd: fixed pools vs the elastic pool");
    report.table(&table);

    let pool = &elastic_rows[0].1.pool;
    report.para(&format!(
        "The elastic pool resized {} times ({} up, {} down), between {} and {} workers, \
         finishing at {}. Small fixed pools lose on backlog (admission outpaces 2-4 servers); \
         the full-size fixed pool loses on its standing stripe slack ({MAX_WORKERS} x \
         {REFILL_BATCH} parked tokens admit a deeper slab of every burst). The elastic pool \
         meets each burst with a small pool's slack — deactivated stripes return their tokens \
         to the global bucket — and scales workers up to absorb what it admits.",
        pool.resizes, pool.scale_ups, pool.scale_downs, pool.low_workers, pool.peak_workers,
        pool.final_workers,
    ));

    let mut table = Table::new(["sweep", "trials", "crashed", "crash-free", "recovered range"]);
    table.row([
        "kill-at-schedule-point".to_string(),
        format!("{}", crash.trials),
        format!("{}", crash.crashed),
        format!("{}", crash.completed),
        format!("[{}, {}]", crash.min_recovered, crash.max_recovered),
    ]);
    report.heading("durable crash-recovery sweep (dynamic-durable)");
    report.table(&table);
    report.para(&format!(
        "{CRASH_THREADS} threads x {CRASH_OPS} increments on a durable counter per trial; each \
         trial cuts the power at a seeded schedule point, recovers, checks `initial + returned \
         <= recovered <= initial + returned + threads` (asserted inside the harness), rejoins \
         through a fresh domain, and resumes. Crash-free trials double as exact-count controls.",
    ));

    // Gates. All deterministic functions of the seed.
    for (w, r) in &fixed {
        assert_eq!(
            r.snapshot.generated(),
            r.snapshot.admitted + r.snapshot.shed,
            "fixed {w}: conservation"
        );
        assert!(
            er.p99_ns < r.p99_ns,
            "gate: elastic p99 {} must beat fixed-{w} p99 {} at {OFFERED_RHO:.1}x capacity",
            er.p99_ns,
            r.p99_ns,
        );
    }
    assert_eq!(
        er.snapshot.generated(),
        er.snapshot.admitted + er.snapshot.shed,
        "elastic: conservation"
    );
    assert_eq!(
        elastic_rows[0].1, elastic_again,
        "gate: same-seed elastic runs must be byte-identical"
    );
    assert_eq!(
        elastic_rows[0].1, elastic_rows[1].1,
        "gate: dynamic and dynamic-durable must report identical cells"
    );
    assert_eq!(
        elastic_rows[0].1, elastic_rows[2].1,
        "gate: the fixed-N fallback must report an identical cell"
    );
    assert!(pool.scale_ups > 0 && pool.scale_downs > 0, "gate: the pool must move both ways");
    assert!(
        crash.crashed > 0 && crash.completed > 0,
        "gate: the crash sweep must include both crashed and crash-free trials"
    );
    assert_eq!(crash, crash_again, "gate: the crash sweep must be seed-deterministic");
    report.para(&format!(
        "Gates: the elastic pool's p99 beats every fixed size at {OFFERED_RHO:.1}x capacity; \
         every cell conserves requests; the elastic result (counters, percentiles, resize \
         history) is byte-identical across same-seed runs and across the dynamic, \
         dynamic-durable, and fixed-N providers; the pool scales both ways; and the seeded \
         crash sweep hits both outcome classes with every durable-linearizability verdict \
         holding. All enforced; see `BENCH_elastic.json`.",
    ));
    report
}
