//! One module per experiment (see `DESIGN.md` §4 for the index).
//!
//! | Module | Experiment | Paper claim |
//! |---|---|---|
//! | [`e1_time`] | E1 | Thm 1–3: constant time per op, independent of N |
//! | [`e2_wide`] | E2 | Thm 4: WLL/SC Θ(W), VL Θ(1) |
//! | [`e3_space`] | E3 | space overheads: 0 / 0 / Θ(NW) / Θ(N(k+T)) vs Θ(N²T), Θ(NWT) |
//! | [`e4_spurious`] | E4 | wait-free given finitely many spurious failures |
//! | [`e5_wraparound`] | E5 | 48-bit tag @ 10⁶ mods/s ≈ 9 years to wrap |
//! | [`e7_structures`] | E7 | previously-inapplicable algorithms now run (incl. STM) |
//! | [`e8_interface`] | E8 | keep-pointer interface avoids the search space–time tradeoff |
//! | [`e9_bounded`] | E9 | bounded tags are never prematurely reused |
//! | [`e10_disjoint`] | E10 | Figures 3/4/5 are disjoint-access parallel; 6/7 are not but contention stays moderate |
//! | [`e11_telemetry`] | E11 | telemetry is free when disabled; Figure-6 snapshots never tear, racy ones do |
//! | [`e12_serve`] | E12 | open-loop serving: latency percentiles vs intended arrivals; single-word token-bucket admission caps the tail |
//! | [`e13_modelcheck`] | E13 | every registry provider is linearizable under exhaustive DPOR on small configurations; DPOR prunes ≥2x vs naive DFS; a planted tag-drop bug is caught |
//! | [`e14_elastic`] | E14 | the elastic pool (dynamic joining) beats every fixed pool size on p99 under a flash crowd; the durable provider survives kill-at-schedule-point crashes |
//! | [`e15_structures`] | E15 | the LLX/SCX ordered map serves keyed traffic deterministically through the fabric and beats the lock-baseline map at 4 threads; Zipf hot keys exercise real helping |
//! | [`e16_hierarchy`] | E16 | the consensus-hierarchy portability matrix: every provider's capability/tier, conformance+differential+DPOR stamps for the weak-primitive tier, and the monotone cost of weakening the hardware |
//! | [`e17_obligations`] | E17 | static client-side certification: every keep reaches a consumer on all paths, the certified simultaneous-keep bound equals PROVIDER_K, and every Release store pairs with an Acquire load |
//!
//! (E6 — Figure 1 — is `examples/concurrent_sequences.rs` and
//! `tests/figure1.rs`.)

pub mod e10_disjoint;
pub mod e11_telemetry;
pub mod e12_serve;
pub mod e13_modelcheck;
pub mod e14_elastic;
pub mod e15_structures;
pub mod e16_hierarchy;
pub mod e17_obligations;
pub mod e1_time;
pub mod e2_wide;
pub mod e3_space;
pub mod e4_spurious;
pub mod e5_wraparound;
pub mod e7_structures;
pub mod e8_interface;
pub mod e9_bounded;
