//! **E12 — open-loop serving: latency percentiles and wait-free admission
//! control.**
//!
//! Every other experiment drives the structures in a *closed loop*, which
//! can only measure throughput. This one serves seeded open-loop traffic
//! through `nbsp-serve` and reports what the paper's primitives look like
//! from the outside of a system built on them: sojourn-time percentiles
//! measured against **intended** arrival stamps (no coordinated
//! omission), with and without the single-LL/SC-word token-bucket
//! admission controller.
//!
//! The sweep is arrival rate × structure × admission on/off at a fixed
//! virtual capacity (`WORKERS` virtual servers × 1/`SERVICE_MEAN_NS`
//! each). The headline claims the gate enforces:
//!
//! * **Open-loop accounting works** — at an offered load above capacity
//!   with admission off, the backlog must appear as latency (p99 ≫ the
//!   in-capacity p99), not as silently dropped arrival pressure.
//! * **Admission caps the tail** — at the highest offered rate, turning
//!   the token bucket on must yield a *lower* p99 than the same cell with
//!   admission off, for every structure. Sojourns are computed on a
//!   virtual clock from the seed, so this comparison is deterministic and
//!   is enforced in quick runs too.
//!
//! A supplementary ON/OFF-burst section shows the admission controller
//! absorbing a flash crowd whose *mean* rate is at capacity.
//!
//! ## The scaling curve: single ring vs sharded fabric
//!
//! A second sweep scales the pool, `workers ∈ {1, 2, 4, 8, 16}` ×
//! `{single-ring baseline, fabric}` × offered load `{0.6, 1.2}` × pool
//! capacity, admission on. The virtual model charges every claim on the
//! shared dispatch cursor `workers ×` [`CLAIM_NS_PER_CONTENDER`], so the
//! single ring's dispatch capacity *falls* as `1/workers` while the pool
//! grows as `workers` — past ~6 workers dispatch, not service, is the
//! baseline's bottleneck. The fabric's per-shard cursors pay the
//! single-contender cost, and its steal rule moves work off a lagging
//! home shard for [`STEAL_NS`](nbsp_serve::fabric::STEAL_NS). Gates:
//!
//! * **(a) fabric wins at scale** — at 8 and 16 workers and 1.2× pool
//!   capacity (≥ 1.2× the baseline's capacity, since the baseline's
//!   capacity is capped by its saturated dispatch cursor), the fabric's
//!   p99 must beat the single ring's.
//! * **(b) flash crowd does not collapse** — the at-scale ON/OFF cells
//!   shed (> 0) and conserve (`generated == admitted + shed`,
//!   `completed == admitted`) for both architectures.
//! * **(c) stealing is exercised** — the fabric's (deterministic, model)
//!   steal count is nonzero under the bursty process at 8 and 16
//!   workers, and its striped admission records batch refills.
//!
//! All per-cell counters come from single-WLL [`CellSnapshot`]s and the
//! run-level telemetry block from the Figure-6
//! [`WideTotals`](nbsp_core::WideTotals)/[`WideHists`](nbsp_core::WideHists)
//! sinks — no racy sums anywhere on the reporting path. The run writes
//! `BENCH_serve.json` for trend tracking.

use nbsp_serve::service::CLAIM_NS_PER_CONTENDER;
use nbsp_serve::{
    run_cell, run_fabric_cell, AdmissionConfig, ArrivalProcess, CellConfig, CellResult,
    FabricConfig, ServeSinks, Workload,
};
use nbsp_telemetry::{AtomicHists, AtomicTotals, Event, Hist};

use crate::report::{fmt_ns, fmt_ops, Report, Table};

/// Seed for every cell (the cell configs differ, so streams do too).
const SEED: u64 = 0x5e12_5e12;

/// Real worker threads per cell; also the virtual server count.
const WORKERS: usize = 4;

/// Mean virtual service demand per request. With [`WORKERS`] servers the
/// virtual capacity is `WORKERS * 1e9 / SERVICE_MEAN_NS` = 4M req/s.
const SERVICE_MEAN_NS: f64 = 1_000.0;

/// Offered-load points as a fraction of virtual capacity: comfortably
/// under, near saturation, and 20% over.
const RHO: [f64; 3] = [0.5, 0.9, 1.2];

/// Token-bucket sustained rate as a fraction of capacity: sheds the
/// overload while leaving headroom for the burst to drain.
const ADMIT_RHO: f64 = 0.85;

/// Token-bucket depth: the burst absorbed without shedding.
const ADMIT_BURST: u64 = 256;

/// Virtual capacity in requests per second.
fn capacity_per_sec() -> f64 {
    WORKERS as f64 * 1e9 / SERVICE_MEAN_NS
}

fn admission() -> AdmissionConfig {
    AdmissionConfig {
        rate_per_sec: ADMIT_RHO * capacity_per_sec(),
        burst: ADMIT_BURST,
    }
}

/// Worker counts of the scaling sweep.
const SCALE_WORKERS: [usize; 5] = [1, 2, 4, 8, 16];

/// Offered load of the scaling sweep, as a fraction of *pool* capacity:
/// comfortably under, and 20% over (which is ≥ 1.2× the single ring's
/// own capacity — dispatch contention only lowers that).
const SCALE_RHO: [f64; 2] = [0.6, 1.2];

/// Per-shard ring capacity in the scaling sweep (single-ring cells get
/// the same total for their one ring).
const SCALE_RING_CAPACITY: usize = 1024;

/// Batch size `B` of a striped global → shard token refill.
const REFILL_BATCH: u64 = 64;

/// Pool capacity (requests/s) for a given worker count.
fn pool_capacity(workers: usize) -> f64 {
    workers as f64 * 1e9 / SERVICE_MEAN_NS
}

/// Scaling-sweep admission: the same 85%-of-capacity rule as the fixed
/// sweep, scaled to the cell's pool.
fn admission_for(workers: usize) -> AdmissionConfig {
    AdmissionConfig {
        rate_per_sec: ADMIT_RHO * pool_capacity(workers),
        burst: ADMIT_BURST,
    }
}

/// The two dispatch architectures of the scaling sweep.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Arch {
    SingleRing,
    Fabric,
}

impl Arch {
    fn name(self) -> &'static str {
        match self {
            Arch::SingleRing => "single_ring",
            Arch::Fabric => "fabric",
        }
    }
}

/// One scaling cell's identity + outcome.
struct ScaleRow {
    arch: Arch,
    process: &'static str,
    workers: usize,
    rate_per_sec: f64,
    result: CellResult,
}

fn run_scale_one(
    arch: Arch,
    workers: usize,
    process: ArrivalProcess,
    requests: u64,
    sinks: &ServeSinks,
) -> ScaleRow {
    let result = match arch {
        Arch::SingleRing => run_cell(
            &CellConfig {
                seed: SEED,
                process,
                workload: Workload::Counter,
                workers,
                requests,
                service_mean_ns: SERVICE_MEAN_NS,
                admission: Some(admission_for(workers)),
                ring_capacity: SCALE_RING_CAPACITY,
            },
            Some(sinks),
        ),
        Arch::Fabric => run_fabric_cell(
            &FabricConfig {
                seed: SEED,
                process,
                workload: Workload::Counter,
                workers,
                requests,
                service_mean_ns: SERVICE_MEAN_NS,
                admission: Some(admission_for(workers)),
                ring_capacity: SCALE_RING_CAPACITY,
                refill_batch: REFILL_BATCH,
            },
            Some(sinks),
        ),
    };
    eprintln!(
        "[e12_serve] scale {} w={} {} rate={}: p99={} shed={} steals={} refills={}",
        arch.name(),
        workers,
        process.name(),
        fmt_ops(process.mean_rate_per_sec()),
        fmt_ns(result.p99_ns as f64),
        result.snapshot.shed,
        result.snapshot.steals,
        result.snapshot.refills,
    );
    ScaleRow {
        arch,
        process: process.name(),
        workers,
        rate_per_sec: process.mean_rate_per_sec(),
        result,
    }
}

/// The at-scale flash crowd: 2× pool-capacity ON bursts, 50/50 duty.
fn scale_onoff(workers: usize) -> ArrivalProcess {
    ArrivalProcess::OnOff {
        on_rate_per_sec: 2.0 * pool_capacity(workers),
        on_mean_ns: 50_000.0,
        off_mean_ns: 50_000.0,
    }
}

fn scale_find<'a>(
    rows: &'a [ScaleRow],
    arch: Arch,
    workers: usize,
    rate: f64,
    process: &str,
) -> &'a ScaleRow {
    rows.iter()
        .find(|r| {
            r.arch == arch
                && r.workers == workers
                && r.process == process
                && (r.rate_per_sec - rate).abs() < 1.0
        })
        .expect("scaling cell missing")
}

/// One sweep cell's identity + outcome, as serialized into the JSON.
struct CellRow {
    process: &'static str,
    rate_per_sec: f64,
    structure: &'static str,
    admission: bool,
    result: CellResult,
}

fn run_one(
    process: ArrivalProcess,
    workload: Workload,
    requests: u64,
    admit: bool,
    sinks: &ServeSinks,
) -> CellRow {
    let cfg = CellConfig {
        seed: SEED,
        process,
        workload,
        workers: WORKERS,
        requests,
        service_mean_ns: SERVICE_MEAN_NS,
        admission: admit.then(admission),
        ring_capacity: 1024,
    };
    let result = run_cell(&cfg, Some(sinks));
    eprintln!(
        "[e12_serve] {} rate={} {} admission={}: p50={} p99={} shed={}/{}",
        process.name(),
        fmt_ops(process.mean_rate_per_sec()),
        workload.name(),
        if admit { "on" } else { "off" },
        fmt_ns(result.p50_ns as f64),
        fmt_ns(result.p99_ns as f64),
        result.snapshot.shed,
        result.snapshot.generated(),
    );
    CellRow {
        process: process.name(),
        rate_per_sec: process.mean_rate_per_sec(),
        structure: workload.name(),
        admission: admit,
        result,
    }
}

/// Run-level telemetry block read from the Figure-6 sinks (one WLL per
/// sink). `"enabled": false` when the feature is compiled out.
fn telemetry_json(indent: &str, sinks: &ServeSinks) -> String {
    if !nbsp_telemetry::enabled() {
        return format!("{indent}\"telemetry\": {{\"enabled\": false}}");
    }
    let totals = sinks.events.totals();
    let events = Event::ALL
        .iter()
        .map(|e| format!("\"{}\": {}", e.name(), totals[e.index()]))
        .collect::<Vec<_>>()
        .join(", ");
    let hist_totals = sinks.hists.totals();
    let hists = Hist::ALL
        .iter()
        .map(|h| {
            let buckets = hist_totals[*h as usize]
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            format!("{indent}    \"{}\": [{buckets}]", h.name())
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{indent}\"telemetry\": {{\n\
         {indent}  \"enabled\": true,\n\
         {indent}  \"events\": {{{events}}},\n\
         {indent}  \"histograms\": {{\n{hists}\n{indent}  }}\n\
         {indent}}}"
    )
}

fn to_json(rows: &[CellRow], scale: &[ScaleRow], requests: u64, sinks: &ServeSinks) -> String {
    let adm = admission();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema_version\": 2,\n");
    s.push_str("  \"experiment\": \"serve\",\n");
    s.push_str(&format!("  \"seed\": {SEED},\n"));
    s.push_str(&format!("  \"workers\": {WORKERS},\n"));
    s.push_str(&format!("  \"requests_per_cell\": {requests},\n"));
    s.push_str(&format!("  \"service_mean_ns\": {SERVICE_MEAN_NS},\n"));
    s.push_str(&format!(
        "  \"admission\": {{\"rate_per_sec\": {:.1}, \"burst\": {}}},\n",
        adm.rate_per_sec, adm.burst
    ));
    s.push_str(&format!(
        "  \"fabric\": {{\"claim_ns_per_contender\": {CLAIM_NS_PER_CONTENDER}, \
         \"steal_ns\": {}, \"ring_capacity\": {SCALE_RING_CAPACITY}, \
         \"refill_batch\": {REFILL_BATCH}}},\n",
        nbsp_serve::fabric::STEAL_NS
    ));
    s.push_str("  \"latency_reference\": \"intended_arrival\",\n");
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let snap = &r.result.snapshot;
        s.push_str(&format!(
            "    {{\"process\": \"{}\", \"rate_per_sec\": {:.1}, \"structure\": \"{}\", \
             \"admission\": {}, \"generated\": {}, \"admitted\": {}, \"shed\": {}, \
             \"completed\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \
             \"p999_ns\": {}}}{}\n",
            r.process,
            r.rate_per_sec,
            r.structure,
            r.admission,
            snap.generated(),
            snap.admitted,
            snap.shed,
            snap.completed,
            r.result.p50_ns,
            r.result.p95_ns,
            r.result.p99_ns,
            r.result.p999_ns,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"scaling\": [\n");
    for (i, r) in scale.iter().enumerate() {
        let snap = &r.result.snapshot;
        s.push_str(&format!(
            "    {{\"arch\": \"{}\", \"process\": \"{}\", \"workers\": {}, \
             \"rate_per_sec\": {:.1}, \"generated\": {}, \"admitted\": {}, \"shed\": {}, \
             \"completed\": {}, \"steals\": {}, \"refills\": {}, \"p50_ns\": {}, \
             \"p95_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}{}\n",
            r.arch.name(),
            r.process,
            r.workers,
            r.rate_per_sec,
            snap.generated(),
            snap.admitted,
            snap.shed,
            snap.completed,
            snap.steals,
            snap.refills,
            r.result.p50_ns,
            r.result.p95_ns,
            r.result.p99_ns,
            r.result.p999_ns,
            if i + 1 == scale.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&telemetry_json("  ", sinks));
    s.push_str("\n}\n");
    s
}

fn find<'a>(rows: &'a [CellRow], structure: &str, rate: f64, admission: bool) -> &'a CellRow {
    rows.iter()
        .find(|r| {
            r.structure == structure
                && r.admission == admission
                && (r.rate_per_sec - rate).abs() < 1.0
                && r.process == "poisson"
        })
        .expect("sweep cell missing")
}

/// Runs the E12 sweep with `requests` generated per cell, writes
/// `BENCH_serve.json`, and returns the report.
///
/// # Panics
///
/// Panics (failing the experiment) if the open-loop overload signature or
/// the admission p99 gate does not hold, or if the JSON cannot be
/// written.
pub fn run(requests: u64) -> Report {
    let sinks = ServeSinks::new().expect("telemetry sinks");
    let mut rows: Vec<CellRow> = Vec::new();
    for workload in Workload::ALL {
        for rho in RHO {
            let process = ArrivalProcess::Poisson {
                rate_per_sec: rho * capacity_per_sec(),
            };
            for admit in [false, true] {
                rows.push(run_one(process, workload, requests, admit, &sinks));
            }
        }
    }
    // Flash crowd: 2x-capacity ON bursts, 50/50 duty cycle, so the mean
    // offered rate sits exactly at capacity but arrivals come in slabs.
    let onoff = ArrivalProcess::OnOff {
        on_rate_per_sec: 2.0 * capacity_per_sec(),
        on_mean_ns: 50_000.0,
        off_mean_ns: 50_000.0,
    };
    for admit in [false, true] {
        rows.push(run_one(onoff, Workload::Counter, requests, admit, &sinks));
    }

    // The scaling sweep: pool size × architecture × offered load,
    // admission always on (the scaled 85%-of-pool rule).
    let mut scale: Vec<ScaleRow> = Vec::new();
    for w in SCALE_WORKERS {
        for rho in SCALE_RHO {
            let process = ArrivalProcess::Poisson {
                rate_per_sec: rho * pool_capacity(w),
            };
            for arch in [Arch::SingleRing, Arch::Fabric] {
                scale.push(run_scale_one(arch, w, process, requests, &sinks));
            }
        }
    }
    // Flash crowd at scale: both architectures at 8 workers (collapse
    // gate), fabric again at 16 (steal gate at the top of the curve).
    scale.push(run_scale_one(Arch::SingleRing, 8, scale_onoff(8), requests, &sinks));
    scale.push(run_scale_one(Arch::Fabric, 8, scale_onoff(8), requests, &sinks));
    scale.push(run_scale_one(Arch::Fabric, 16, scale_onoff(16), requests, &sinks));

    let json = to_json(&rows, &scale, requests, &sinks);
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    eprintln!("[e12_serve] wrote BENCH_serve.json ({} cells)", rows.len());

    let cap = capacity_per_sec();
    let top_rate = RHO[2] * cap;
    let mut report = Report::new();
    report.heading("E12 — open-loop serving with wait-free admission control");
    report.para(&format!(
        "{requests} requests/cell against {WORKERS} virtual servers of mean {SERVICE_MEAN_NS:.0} ns \
         (capacity {}); sojourn percentiles vs **intended** arrival stamps on the seeded virtual \
         clock (seed `{SEED:#x}`, byte-identical across runs). Admission: single-word token bucket \
         at {:.0}% of capacity, burst {ADMIT_BURST}.",
        fmt_ops(cap),
        ADMIT_RHO * 100.0,
    ));
    report.para(
        "Latency columns repeat across structures *by construction*: sojourns come from the \
         deterministic virtual queue model, which depends only on the seed. The structures \
         differ in what the real worker threads execute against — each cell drives genuine \
         multi-thread contention on its structure, which is what the telemetry block records.",
    );

    for workload in Workload::ALL {
        let structure = workload.name();
        let mut table = Table::new([
            "offered/capacity",
            "adm off p50",
            "adm off p99",
            "adm on p50",
            "adm on p99",
            "shed",
        ]);
        for rho in RHO {
            let rate = rho * cap;
            let off = find(&rows, structure, rate, false);
            let on = find(&rows, structure, rate, true);
            let shed_pct =
                100.0 * on.result.snapshot.shed as f64 / on.result.snapshot.generated() as f64;
            table.row([
                format!("{rho:.1}"),
                fmt_ns(off.result.p50_ns as f64),
                fmt_ns(off.result.p99_ns as f64),
                fmt_ns(on.result.p50_ns as f64),
                fmt_ns(on.result.p99_ns as f64),
                format!("{shed_pct:.1}%"),
            ]);
        }
        report.heading(structure);
        report.table(&table);
    }

    let mut table = Table::new(["admission", "p50", "p99", "p99.9", "shed"]);
    for admit in [false, true] {
        let r = rows
            .iter()
            .find(|r| r.process == "onoff" && r.admission == admit)
            .unwrap();
        table.row([
            if admit { "on" } else { "off" }.to_string(),
            fmt_ns(r.result.p50_ns as f64),
            fmt_ns(r.result.p99_ns as f64),
            fmt_ns(r.result.p999_ns as f64),
            format!(
                "{:.1}%",
                100.0 * r.result.snapshot.shed as f64 / r.result.snapshot.generated() as f64
            ),
        ]);
    }
    report.heading("flash crowd (ON/OFF at mean = capacity, counter)");
    report.table(&table);

    // Scaling tables: one per offered-load point, workers down the rows.
    for rho in SCALE_RHO {
        let mut table = Table::new([
            "workers",
            "single-ring p99",
            "fabric p99",
            "fabric steals",
            "fabric refills",
            "fabric shed",
        ]);
        for w in SCALE_WORKERS {
            let rate = rho * pool_capacity(w);
            let base = scale_find(&scale, Arch::SingleRing, w, rate, "poisson");
            let fab = scale_find(&scale, Arch::Fabric, w, rate, "poisson");
            let fsnap = &fab.result.snapshot;
            table.row([
                format!("{w}"),
                fmt_ns(base.result.p99_ns as f64),
                fmt_ns(fab.result.p99_ns as f64),
                format!("{}", fsnap.steals),
                format!("{}", fsnap.refills),
                format!("{:.1}%", 100.0 * fsnap.shed as f64 / fsnap.generated() as f64),
            ]);
        }
        report.heading(&format!(
            "scaling at {rho:.1}x pool capacity (counter, admission on)"
        ));
        report.table(&table);
    }
    report.para(&format!(
        "The single ring pays {CLAIM_NS_PER_CONTENDER} ns x workers per dispatch claim \
         (serialized on one cursor), so its dispatch capacity falls as 1/workers; the fabric's \
         per-shard cursors pay the single-contender cost and a steal costs {} ns. Steal and \
         refill counts are the deterministic model's; the real thieves' committed steals are \
         racy and appear only in the telemetry block (`serve_steal`).",
        nbsp_serve::fabric::STEAL_NS,
    ));

    let mut table = Table::new(["arch", "workers", "p99", "shed", "steals"]);
    for r in scale.iter().filter(|r| r.process == "onoff") {
        table.row([
            r.arch.name().to_string(),
            format!("{}", r.workers),
            fmt_ns(r.result.p99_ns as f64),
            format!(
                "{:.1}%",
                100.0 * r.result.snapshot.shed as f64 / r.result.snapshot.generated() as f64
            ),
            format!("{}", r.result.snapshot.steals),
        ]);
    }
    report.heading("flash crowd at scale (ON/OFF at mean = pool capacity)");
    report.table(&table);

    // Gates. Both comparisons are functions of the seed alone (virtual
    // time), so they are enforced in quick runs too.
    for workload in Workload::ALL {
        let structure = workload.name();
        let under = find(&rows, structure, RHO[0] * cap, false);
        let over_off = find(&rows, structure, top_rate, false);
        let over_on = find(&rows, structure, top_rate, true);
        assert!(
            over_off.result.p99_ns > under.result.p99_ns,
            "{structure}: overload p99 {} must exceed underload p99 {} — open-loop accounting \
             failed to charge the backlog as latency",
            over_off.result.p99_ns,
            under.result.p99_ns,
        );
        assert!(
            over_on.result.p99_ns < over_off.result.p99_ns,
            "{structure}: admission-on p99 {} must beat admission-off p99 {} at {:.1}x capacity",
            over_on.result.p99_ns,
            over_off.result.p99_ns,
            RHO[2],
        );
        assert!(
            over_on.result.snapshot.shed > 0,
            "{structure}: admission at {:.1}x capacity must shed",
            RHO[2],
        );
    }
    report.para(&format!(
        "Gate: at {:.1}x capacity every structure's admission-on p99 beats admission-off, and \
         overload p99 exceeds underload p99 (the backlog is charged as latency, not dropped \
         from the arrival record). All enforced; see `BENCH_serve.json`.",
        RHO[2],
    ));

    // Scaling gates (a)–(c); deterministic for the same reason.
    for w in [8usize, 16] {
        let rate = SCALE_RHO[1] * pool_capacity(w);
        let base = scale_find(&scale, Arch::SingleRing, w, rate, "poisson");
        let fab = scale_find(&scale, Arch::Fabric, w, rate, "poisson");
        assert!(
            fab.result.p99_ns < base.result.p99_ns,
            "gate (a): fabric p99 {} must beat single-ring p99 {} at {w} workers, \
             {:.1}x pool capacity",
            fab.result.p99_ns,
            base.result.p99_ns,
            SCALE_RHO[1],
        );
    }
    for r in scale.iter().filter(|r| r.process == "onoff") {
        let snap = &r.result.snapshot;
        assert!(
            snap.shed > 0,
            "gate (b): the {} flash crowd at {} workers must shed",
            r.arch.name(),
            r.workers,
        );
        assert_eq!(
            snap.generated(),
            snap.admitted + snap.shed,
            "gate (b): the {} flash crowd at {} workers must conserve requests",
            r.arch.name(),
            r.workers,
        );
        if r.arch == Arch::Fabric {
            assert!(
                snap.steals > 0,
                "gate (c): the fabric flash crowd at {} workers must steal",
                r.workers,
            );
            assert!(
                snap.refills > 0,
                "gate (c): the fabric flash crowd at {} workers must batch-refill",
                r.workers,
            );
        }
    }
    report.para(&format!(
        "Scaling gates: at 8 and 16 workers and {:.1}x pool capacity the fabric's p99 beats \
         the single ring's; the at-scale flash crowds shed without collapsing (requests \
         conserved); and the fabric's bursty cells record nonzero steals and batch refills. \
         All enforced.",
        SCALE_RHO[1],
    ));
    report
}
