//! **E12 — open-loop serving: latency percentiles and wait-free admission
//! control.**
//!
//! Every other experiment drives the structures in a *closed loop*, which
//! can only measure throughput. This one serves seeded open-loop traffic
//! through `nbsp-serve` and reports what the paper's primitives look like
//! from the outside of a system built on them: sojourn-time percentiles
//! measured against **intended** arrival stamps (no coordinated
//! omission), with and without the single-LL/SC-word token-bucket
//! admission controller.
//!
//! The sweep is arrival rate × structure × admission on/off at a fixed
//! virtual capacity (`WORKERS` virtual servers × 1/`SERVICE_MEAN_NS`
//! each). The headline claims the gate enforces:
//!
//! * **Open-loop accounting works** — at an offered load above capacity
//!   with admission off, the backlog must appear as latency (p99 ≫ the
//!   in-capacity p99), not as silently dropped arrival pressure.
//! * **Admission caps the tail** — at the highest offered rate, turning
//!   the token bucket on must yield a *lower* p99 than the same cell with
//!   admission off, for every structure. Sojourns are computed on a
//!   virtual clock from the seed, so this comparison is deterministic and
//!   is enforced in quick runs too.
//!
//! A supplementary ON/OFF-burst section shows the admission controller
//! absorbing a flash crowd whose *mean* rate is at capacity.
//!
//! All per-cell counters come from single-WLL [`CellSnapshot`]s and the
//! run-level telemetry block from the Figure-6
//! [`WideTotals`](nbsp_core::WideTotals)/[`WideHists`](nbsp_core::WideHists)
//! sinks — no racy sums anywhere on the reporting path. The run writes
//! `BENCH_serve.json` for trend tracking.

use nbsp_serve::{
    run_cell, AdmissionConfig, ArrivalProcess, CellConfig, CellResult, ServeSinks, Workload,
};
use nbsp_telemetry::{AtomicHists, AtomicTotals, Event, Hist};

use crate::report::{fmt_ns, fmt_ops, Report, Table};

/// Seed for every cell (the cell configs differ, so streams do too).
const SEED: u64 = 0x5e12_5e12;

/// Real worker threads per cell; also the virtual server count.
const WORKERS: usize = 4;

/// Mean virtual service demand per request. With [`WORKERS`] servers the
/// virtual capacity is `WORKERS * 1e9 / SERVICE_MEAN_NS` = 4M req/s.
const SERVICE_MEAN_NS: f64 = 1_000.0;

/// Offered-load points as a fraction of virtual capacity: comfortably
/// under, near saturation, and 20% over.
const RHO: [f64; 3] = [0.5, 0.9, 1.2];

/// Token-bucket sustained rate as a fraction of capacity: sheds the
/// overload while leaving headroom for the burst to drain.
const ADMIT_RHO: f64 = 0.85;

/// Token-bucket depth: the burst absorbed without shedding.
const ADMIT_BURST: u64 = 256;

/// Virtual capacity in requests per second.
fn capacity_per_sec() -> f64 {
    WORKERS as f64 * 1e9 / SERVICE_MEAN_NS
}

fn admission() -> AdmissionConfig {
    AdmissionConfig {
        rate_per_sec: ADMIT_RHO * capacity_per_sec(),
        burst: ADMIT_BURST,
    }
}

/// One sweep cell's identity + outcome, as serialized into the JSON.
struct CellRow {
    process: &'static str,
    rate_per_sec: f64,
    structure: &'static str,
    admission: bool,
    result: CellResult,
}

fn run_one(
    process: ArrivalProcess,
    workload: Workload,
    requests: u64,
    admit: bool,
    sinks: &ServeSinks,
) -> CellRow {
    let cfg = CellConfig {
        seed: SEED,
        process,
        workload,
        workers: WORKERS,
        requests,
        service_mean_ns: SERVICE_MEAN_NS,
        admission: admit.then(admission),
        ring_capacity: 1024,
    };
    let result = run_cell(&cfg, Some(sinks));
    eprintln!(
        "[e12_serve] {} rate={} {} admission={}: p50={} p99={} shed={}/{}",
        process.name(),
        fmt_ops(process.mean_rate_per_sec()),
        workload.name(),
        if admit { "on" } else { "off" },
        fmt_ns(result.p50_ns as f64),
        fmt_ns(result.p99_ns as f64),
        result.snapshot.shed,
        result.snapshot.generated(),
    );
    CellRow {
        process: process.name(),
        rate_per_sec: process.mean_rate_per_sec(),
        structure: workload.name(),
        admission: admit,
        result,
    }
}

/// Run-level telemetry block read from the Figure-6 sinks (one WLL per
/// sink). `"enabled": false` when the feature is compiled out.
fn telemetry_json(indent: &str, sinks: &ServeSinks) -> String {
    if !nbsp_telemetry::enabled() {
        return format!("{indent}\"telemetry\": {{\"enabled\": false}}");
    }
    let totals = sinks.events.totals();
    let events = Event::ALL
        .iter()
        .map(|e| format!("\"{}\": {}", e.name(), totals[e.index()]))
        .collect::<Vec<_>>()
        .join(", ");
    let hist_totals = sinks.hists.totals();
    let hists = Hist::ALL
        .iter()
        .map(|h| {
            let buckets = hist_totals[*h as usize]
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            format!("{indent}    \"{}\": [{buckets}]", h.name())
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{indent}\"telemetry\": {{\n\
         {indent}  \"enabled\": true,\n\
         {indent}  \"events\": {{{events}}},\n\
         {indent}  \"histograms\": {{\n{hists}\n{indent}  }}\n\
         {indent}}}"
    )
}

fn to_json(rows: &[CellRow], requests: u64, sinks: &ServeSinks) -> String {
    let adm = admission();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema_version\": 1,\n");
    s.push_str("  \"experiment\": \"serve\",\n");
    s.push_str(&format!("  \"seed\": {SEED},\n"));
    s.push_str(&format!("  \"workers\": {WORKERS},\n"));
    s.push_str(&format!("  \"requests_per_cell\": {requests},\n"));
    s.push_str(&format!("  \"service_mean_ns\": {SERVICE_MEAN_NS},\n"));
    s.push_str(&format!(
        "  \"admission\": {{\"rate_per_sec\": {:.1}, \"burst\": {}}},\n",
        adm.rate_per_sec, adm.burst
    ));
    s.push_str("  \"latency_reference\": \"intended_arrival\",\n");
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let snap = &r.result.snapshot;
        s.push_str(&format!(
            "    {{\"process\": \"{}\", \"rate_per_sec\": {:.1}, \"structure\": \"{}\", \
             \"admission\": {}, \"generated\": {}, \"admitted\": {}, \"shed\": {}, \
             \"completed\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \
             \"p999_ns\": {}}}{}\n",
            r.process,
            r.rate_per_sec,
            r.structure,
            r.admission,
            snap.generated(),
            snap.admitted,
            snap.shed,
            snap.completed,
            r.result.p50_ns,
            r.result.p95_ns,
            r.result.p99_ns,
            r.result.p999_ns,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&telemetry_json("  ", sinks));
    s.push_str("\n}\n");
    s
}

fn find<'a>(rows: &'a [CellRow], structure: &str, rate: f64, admission: bool) -> &'a CellRow {
    rows.iter()
        .find(|r| {
            r.structure == structure
                && r.admission == admission
                && (r.rate_per_sec - rate).abs() < 1.0
                && r.process == "poisson"
        })
        .expect("sweep cell missing")
}

/// Runs the E12 sweep with `requests` generated per cell, writes
/// `BENCH_serve.json`, and returns the report.
///
/// # Panics
///
/// Panics (failing the experiment) if the open-loop overload signature or
/// the admission p99 gate does not hold, or if the JSON cannot be
/// written.
pub fn run(requests: u64) -> Report {
    let sinks = ServeSinks::new().expect("telemetry sinks");
    let mut rows: Vec<CellRow> = Vec::new();
    for workload in Workload::ALL {
        for rho in RHO {
            let process = ArrivalProcess::Poisson {
                rate_per_sec: rho * capacity_per_sec(),
            };
            for admit in [false, true] {
                rows.push(run_one(process, workload, requests, admit, &sinks));
            }
        }
    }
    // Flash crowd: 2x-capacity ON bursts, 50/50 duty cycle, so the mean
    // offered rate sits exactly at capacity but arrivals come in slabs.
    let onoff = ArrivalProcess::OnOff {
        on_rate_per_sec: 2.0 * capacity_per_sec(),
        on_mean_ns: 50_000.0,
        off_mean_ns: 50_000.0,
    };
    for admit in [false, true] {
        rows.push(run_one(onoff, Workload::Counter, requests, admit, &sinks));
    }

    let json = to_json(&rows, requests, &sinks);
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    eprintln!("[e12_serve] wrote BENCH_serve.json ({} cells)", rows.len());

    let cap = capacity_per_sec();
    let top_rate = RHO[2] * cap;
    let mut report = Report::new();
    report.heading("E12 — open-loop serving with wait-free admission control");
    report.para(&format!(
        "{requests} requests/cell against {WORKERS} virtual servers of mean {SERVICE_MEAN_NS:.0} ns \
         (capacity {}); sojourn percentiles vs **intended** arrival stamps on the seeded virtual \
         clock (seed `{SEED:#x}`, byte-identical across runs). Admission: single-word token bucket \
         at {:.0}% of capacity, burst {ADMIT_BURST}.",
        fmt_ops(cap),
        ADMIT_RHO * 100.0,
    ));
    report.para(
        "Latency columns repeat across structures *by construction*: sojourns come from the \
         deterministic virtual queue model, which depends only on the seed. The structures \
         differ in what the real worker threads execute against — each cell drives genuine \
         multi-thread contention on its structure, which is what the telemetry block records.",
    );

    for workload in Workload::ALL {
        let structure = workload.name();
        let mut table = Table::new([
            "offered/capacity",
            "adm off p50",
            "adm off p99",
            "adm on p50",
            "adm on p99",
            "shed",
        ]);
        for rho in RHO {
            let rate = rho * cap;
            let off = find(&rows, structure, rate, false);
            let on = find(&rows, structure, rate, true);
            let shed_pct =
                100.0 * on.result.snapshot.shed as f64 / on.result.snapshot.generated() as f64;
            table.row([
                format!("{rho:.1}"),
                fmt_ns(off.result.p50_ns as f64),
                fmt_ns(off.result.p99_ns as f64),
                fmt_ns(on.result.p50_ns as f64),
                fmt_ns(on.result.p99_ns as f64),
                format!("{shed_pct:.1}%"),
            ]);
        }
        report.heading(structure);
        report.table(&table);
    }

    let mut table = Table::new(["admission", "p50", "p99", "p99.9", "shed"]);
    for admit in [false, true] {
        let r = rows
            .iter()
            .find(|r| r.process == "onoff" && r.admission == admit)
            .unwrap();
        table.row([
            if admit { "on" } else { "off" }.to_string(),
            fmt_ns(r.result.p50_ns as f64),
            fmt_ns(r.result.p99_ns as f64),
            fmt_ns(r.result.p999_ns as f64),
            format!(
                "{:.1}%",
                100.0 * r.result.snapshot.shed as f64 / r.result.snapshot.generated() as f64
            ),
        ]);
    }
    report.heading("flash crowd (ON/OFF at mean = capacity, counter)");
    report.table(&table);

    // Gates. Both comparisons are functions of the seed alone (virtual
    // time), so they are enforced in quick runs too.
    for workload in Workload::ALL {
        let structure = workload.name();
        let under = find(&rows, structure, RHO[0] * cap, false);
        let over_off = find(&rows, structure, top_rate, false);
        let over_on = find(&rows, structure, top_rate, true);
        assert!(
            over_off.result.p99_ns > under.result.p99_ns,
            "{structure}: overload p99 {} must exceed underload p99 {} — open-loop accounting \
             failed to charge the backlog as latency",
            over_off.result.p99_ns,
            under.result.p99_ns,
        );
        assert!(
            over_on.result.p99_ns < over_off.result.p99_ns,
            "{structure}: admission-on p99 {} must beat admission-off p99 {} at {:.1}x capacity",
            over_on.result.p99_ns,
            over_off.result.p99_ns,
            RHO[2],
        );
        assert!(
            over_on.result.snapshot.shed > 0,
            "{structure}: admission at {:.1}x capacity must shed",
            RHO[2],
        );
    }
    report.para(&format!(
        "Gate: at {:.1}x capacity every structure's admission-on p99 beats admission-off, and \
         overload p99 exceeds underload p99 (the backlog is charged as latency, not dropped \
         from the arrival record). All enforced; see `BENCH_serve.json`.",
        RHO[2],
    ));
    report
}
