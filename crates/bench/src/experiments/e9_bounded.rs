//! **E9 — bounded-tag safety audit** (Theorem 5's mechanism).
//!
//! Theorem 5's safety property is that the feedback mechanism never lets a
//! CAS "succeed when it should fail" — i.e. a (tag, cnt, pid) stamp is
//! never reused while some in-flight sequence could still match it. Two
//! audits:
//!
//! * **exactness under the tiniest universe**: N = 2, k = 1 gives only
//!   `2Nk + 1 = 5` tags. Millions of contended increments with zero lost
//!   or duplicated updates means no premature reuse ever happened (a
//!   single false-success CAS would break the count).
//! * **reuse-distance audit**: single-process stamp traces — the same
//!   (tag, cnt) pair must not recur within `Nk + 1` successive SCs to one
//!   variable (the paper's line-13/14 counter argument).

use std::collections::HashMap;

use nbsp_core::bounded::BoundedDomain;
use nbsp_core::Native;

use crate::report::{Report, Table};

/// Result of the contended exactness audit.
#[derive(Clone, Copy, Debug)]
pub struct ExactnessAudit {
    /// Increments attempted (and, if sound, applied).
    pub expected: u64,
    /// Final counter value.
    pub observed: u64,
    /// Tag universe size (2Nk + 1).
    pub universe: usize,
}

/// Runs `per_thread` increments on each of 2 threads with N = 2, k = 1.
#[must_use]
pub fn exactness_audit(per_thread: u64) -> ExactnessAudit {
    let d = BoundedDomain::<Native>::new(2, 1).unwrap();
    let var = d.var(0).unwrap();
    std::thread::scope(|s| {
        for t in 0..2 {
            let var = &var;
            let mut me = d.proc(t);
            s.spawn(move || {
                for _ in 0..per_thread {
                    loop {
                        let (v, keep) = var.ll(&Native, &mut me);
                        if var.sc(&Native, &mut me, keep, v + 1) {
                            break;
                        }
                    }
                }
            });
        }
    });
    ExactnessAudit {
        expected: 2 * per_thread,
        observed: var.peek(&Native),
        universe: (2 * 2) + 1,
    }
}

/// Single-process stamp trace: returns the minimum distance (in successful
/// SCs) between two uses of the same (tag, cnt) pair on one variable.
#[must_use]
pub fn min_stamp_reuse_distance(n: usize, k: usize, ops: u64) -> u64 {
    let d = BoundedDomain::<Native>::new(n, k).unwrap();
    let var = d.var(0).unwrap();
    let mut me = d.proc(0);
    let mut last_seen: HashMap<(u64, u64), u64> = HashMap::new();
    let mut min_dist = u64::MAX;
    for i in 0..ops {
        let (v, keep) = var.ll(&Native, &mut me);
        assert!(var.sc(&Native, &mut me, keep, (v + 1) & 0xFF));
        let (tag, cnt, _pid) = var.current_stamp(&Native);
        if let Some(prev) = last_seen.insert((tag, cnt), i) {
            min_dist = min_dist.min(i - prev);
        }
    }
    min_dist
}

/// Runs E9.
#[must_use]
pub fn run(per_thread: u64) -> Report {
    let mut report = Report::new();
    report.heading("E9 — bounded-tag safety audit (Theorem 5)");
    let audit = exactness_audit(per_thread);
    report.para(&format!(
        "Contended exactness, N = 2, k = 1 (tag universe of {} — the \
         hardest configuration): {} increments applied, {} observed, {} \
         lost. A single premature tag reuse would have produced a \
         false-success CAS and corrupted the count.",
        audit.universe,
        audit.expected,
        audit.observed,
        audit.expected - audit.observed,
    ));

    report.para(
        "Single-process stamp reuse distance — the paper's counter \
         mechanism guarantees a (tag, cnt) pair cannot recur within Nk + 1 \
         successful SCs to one variable:",
    );
    let mut t = Table::new([
        "N",
        "k",
        "guaranteed min distance (Nk+1)",
        "measured min distance",
    ]);
    for (n, k) in [(2usize, 1usize), (2, 2), (4, 2), (8, 4)] {
        let measured = min_stamp_reuse_distance(n, k, 20_000);
        t.row([
            n.to_string(),
            k.to_string(),
            (n * k + 1).to_string(),
            if measured == u64::MAX {
                "no reuse observed".to_string()
            } else {
                measured.to_string()
            },
        ]);
    }
    report.table(&t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactness_holds_at_minimum_universe() {
        let a = exactness_audit(30_000);
        assert_eq!(a.expected, a.observed, "lost updates under tiny universe");
        assert_eq!(a.universe, 5);
    }

    #[test]
    fn stamp_reuse_respects_the_counter_bound() {
        for (n, k) in [(2usize, 1usize), (4, 2)] {
            let d = min_stamp_reuse_distance(n, k, 10_000);
            assert!(
                d > (n * k) as u64,
                "stamp reused within Nk={} ops (distance {d})",
                n * k
            );
        }
    }

    #[test]
    fn report_smoke() {
        let md = run(5_000).to_markdown();
        assert!(md.contains("E9"));
        assert!(md.contains("0 lost") || md.contains(" lost"));
    }
}
