//! **E9 — bounded-tag safety audit and the constant-time ablation**
//! (Theorem 5's mechanism vs. arXiv:1911.09671).
//!
//! Theorem 5's safety property is that the feedback mechanism never lets a
//! CAS "succeed when it should fail" — i.e. a (tag, cnt, pid) stamp is
//! never reused while some in-flight sequence could still match it. Two
//! audits:
//!
//! * **exactness under the tiniest universe**: N = 2, k = 1 gives only
//!   `2Nk + 1 = 5` tags. Millions of contended increments with zero lost
//!   or duplicated updates means no premature reuse ever happened (a
//!   single false-success CAS would break the count).
//! * **reuse-distance audit**: single-process stamp traces — the same
//!   (tag, cnt) pair must not recur within `Nk + 1` successive SCs to one
//!   variable (the paper's line-13/14 counter argument).
//!
//! Plus the **constant-time ablation**: the registry's `fig7-bounded`
//! (O(1) indexed tag queue), `fig7-bounded-scan` (Figure 7 line 10 as
//! written — an O(Nk) scan per successful SC), and `constant`
//! (Blelloch–Wei, O(1) worst-case by construction) providers run the same
//! contended-exactness audit and a single-threaded worst-case SC latency
//! profile across domain sizes N. The deterministic gate: the scan
//! provider's tail latency must grow with N while the constant provider's
//! stays flat — the asymptotic gap the constant-time construction exists
//! to close, measured rather than asserted.
//!
//! The weak-primitive tier (`cas-from-swap`, `feb-llsc`) joins the
//! contended-exactness audit as a "cost of weakening the hardware"
//! column: the emulated LL/SC must be exactly as lossless as the
//! native-CAS disciplines.

use std::collections::HashMap;
use std::time::Instant;

use nbsp_core::bounded::BoundedDomain;
use nbsp_core::{with_provider, LlScVar, Native, Provider, ProviderId};

use crate::report::{Report, Table};
use crate::runner::ProviderFilter;

/// Result of the contended exactness audit.
#[derive(Clone, Copy, Debug)]
pub struct ExactnessAudit {
    /// Increments attempted (and, if sound, applied).
    pub expected: u64,
    /// Final counter value.
    pub observed: u64,
    /// Tag universe size (2Nk + 1).
    pub universe: usize,
}

/// Runs `per_thread` increments on each of 2 threads with N = 2, k = 1.
/// (Direct `BoundedDomain` use, not a registry entry: the registry's `k`
/// is sized for nested structure operations, and this audit wants the
/// tightest universe the construction admits.)
#[must_use]
pub fn exactness_audit(per_thread: u64) -> ExactnessAudit {
    let d = BoundedDomain::<Native>::new(2, 1).unwrap();
    let var = d.var(0).unwrap();
    std::thread::scope(|s| {
        for t in 0..2 {
            let var = &var;
            let mut me = d.proc(t);
            s.spawn(move || {
                for _ in 0..per_thread {
                    loop {
                        let (v, keep) = var.ll(&Native, &mut me);
                        if var.sc(&Native, &mut me, keep, v + 1) {
                            break;
                        }
                    }
                }
            });
        }
    });
    ExactnessAudit {
        expected: 2 * per_thread,
        observed: var.peek(&Native),
        universe: (2 * 2) + 1,
    }
}

/// Single-process stamp trace: returns the minimum distance (in successful
/// SCs) between two uses of the same (tag, cnt) pair on one variable.
#[must_use]
pub fn min_stamp_reuse_distance(n: usize, k: usize, ops: u64) -> u64 {
    let d = BoundedDomain::<Native>::new(n, k).unwrap();
    let var = d.var(0).unwrap();
    let mut me = d.proc(0);
    let mut last_seen: HashMap<(u64, u64), u64> = HashMap::new();
    let mut min_dist = u64::MAX;
    for i in 0..ops {
        let (v, keep) = var.ll(&Native, &mut me);
        assert!(var.sc(&Native, &mut me, keep, (v + 1) & 0xFF));
        let (tag, cnt, _pid) = var.current_stamp(&Native);
        if let Some(prev) = last_seen.insert((tag, cnt), i) {
            min_dist = min_dist.min(i - prev);
        }
    }
    min_dist
}

// ---------------------------------------------------------------------------
// Constant-time ablation over registry providers.
// ---------------------------------------------------------------------------

/// The providers the ablation compares: Figure 7 with the O(1) indexed
/// tag queue, Figure 7 with the paper-literal O(Nk) scan, and the
/// Blelloch–Wei constant-time construction.
const ABLATION: [ProviderId; 3] = [
    ProviderId::Fig7Bounded,
    ProviderId::Fig7BoundedScan,
    ProviderId::ConstantTime,
];

/// The weak-primitive tier rides along through the contended-exactness
/// audit only — the "cost of weakening the hardware" column. The
/// emulations must be exactly as lossless as the native-CAS disciplines;
/// they are excluded from the latency profile and its growth gates, which
/// measure tag-queue maintenance these constructions don't have.
const WEAK: [ProviderId; 2] = [ProviderId::CasFromSwap, ProviderId::FebLlSc];

/// Contended exactness for one registry provider.
#[derive(Clone, Copy, Debug)]
pub struct ProviderExactness {
    /// Registry name of the provider audited.
    pub provider: &'static str,
    /// Increments attempted across both writers.
    pub expected: u64,
    /// Final value read back.
    pub observed: u64,
}

/// One point of the worst-case SC latency profile.
#[derive(Clone, Copy, Debug)]
pub struct LatencyRow {
    /// Registry name of the provider measured.
    pub provider: &'static str,
    /// Domain size (number of processes the domain is built for).
    pub n: usize,
    /// Median single-op `sc` latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile single-op `sc` latency in nanoseconds.
    pub p99_ns: u64,
    /// Worst single-op `sc` latency in nanoseconds.
    pub max_ns: u64,
}

/// Everything E9 measures, for rendering and the JSON artifact.
#[derive(Clone, Debug)]
pub struct E9Results {
    /// The N = 2, k = 1 tiny-universe audit.
    pub audit: ExactnessAudit,
    /// (n, k, measured min stamp-reuse distance) rows.
    pub reuse: Vec<(usize, usize, u64)>,
    /// Per-provider contended exactness.
    pub exactness: Vec<ProviderExactness>,
    /// The latency profile, provider-major then N-ascending.
    pub latency: Vec<LatencyRow>,
    /// Per-provider p99 growth ratio: p99 at the largest N over p99 at
    /// the smallest N. Flat providers sit near 1; the scan provider's
    /// grows with the tag universe.
    pub growth: Vec<(&'static str, f64)>,
    /// Whether this was a `--quick` run (smaller N sweep, looser gates).
    pub quick: bool,
}

/// Two writers race `per_thread` increments each; a third context reads
/// the final value. Exactness means no SC ever falsely succeeded.
fn provider_exactness<P: Provider>(per_thread: u64) -> ProviderExactness {
    let env = P::env(3).expect("provider env");
    let var = P::var(&env, 0).expect("provider var");
    std::thread::scope(|s| {
        for t in 0..2 {
            let var = &var;
            let mut tc = P::thread_ctx(&env, t);
            s.spawn(move || {
                let mut ctx = P::ctx(&mut tc);
                let mut keep = <P::Var as LlScVar>::Keep::default();
                for _ in 0..per_thread {
                    loop {
                        let v = var.ll(&mut ctx, &mut keep);
                        if var.sc(&mut ctx, &mut keep, v + 1) {
                            break;
                        }
                    }
                }
            });
        }
    });
    let mut tc = P::thread_ctx(&env, 2);
    let mut ctx = P::ctx(&mut tc);
    ProviderExactness {
        provider: P::ID.meta().name,
        expected: 2 * per_thread,
        observed: var.read(&mut ctx),
    }
}

/// Single-threaded worst-case SC latency at domain size `n`: the LL sits
/// outside the timer, so the sample is exactly one `sc` call — which is
/// where Figure 7 pays its per-success tag-queue maintenance (O(1)
/// indexed, O(Nk) for the paper-literal scan) and where the constant-time
/// construction pays its fixed announce-scan + filter step.
fn sc_latency_profile<P: Provider>(n: usize, ops: u64) -> (u64, u64, u64) {
    let env = P::env(n).expect("provider env");
    let var = P::var(&env, 0).expect("provider var");
    let mut tc = P::thread_ctx(&env, 0);
    let mut ctx = P::ctx(&mut tc);
    let mut keep = <P::Var as LlScVar>::Keep::default();
    let mut samples: Vec<u64> = Vec::with_capacity(ops as usize);
    for _ in 0..ops {
        let v = var.ll(&mut ctx, &mut keep);
        let start = Instant::now();
        let ok = var.sc(&mut ctx, &mut keep, (v + 1) & 0xFF);
        samples.push(start.elapsed().as_nanos() as u64);
        assert!(ok, "uncontended sc failed");
    }
    samples.sort_unstable();
    let len = samples.len();
    let p99 = samples[((len * 99) / 100).min(len - 1)];
    (samples[len / 2], p99, samples[len - 1])
}

/// Runs every E9 measurement. `filter` restricts which ablation providers
/// run (`--provider` on `exp_bounded_audit`); the growth gates are only
/// meaningful on an unrestricted run.
#[must_use]
pub fn collect(per_thread: u64, quick: bool, filter: &ProviderFilter) -> E9Results {
    let audit = exactness_audit(per_thread);
    let reuse_ops = if quick { 10_000 } else { 20_000 };
    let reuse = [(2usize, 1usize), (2, 2), (4, 2), (8, 4)]
        .into_iter()
        .map(|(n, k)| (n, k, min_stamp_reuse_distance(n, k, reuse_ops)))
        .collect();

    let sizes: &[usize] = if quick { &[2, 128] } else { &[2, 16, 128, 512] };
    let (exact_per_thread, latency_ops) = if quick { (20_000, 8_000) } else { (100_000, 40_000) };
    let mut exactness = Vec::new();
    let mut latency = Vec::new();
    for id in ABLATION {
        if !filter.allows(id) {
            continue;
        }
        macro_rules! ablate_one {
            ($p:ty) => {{
                exactness.push(provider_exactness::<$p>(exact_per_thread));
                for &n in sizes {
                    let (p50_ns, p99_ns, max_ns) = sc_latency_profile::<$p>(n, latency_ops);
                    latency.push(LatencyRow {
                        provider: id.meta().name,
                        n,
                        p50_ns,
                        p99_ns,
                        max_ns,
                    });
                }
            }};
        }
        with_provider!(id, ablate_one);
    }
    for id in WEAK {
        if !filter.allows(id) {
            continue;
        }
        macro_rules! weak_one {
            ($p:ty) => {
                exactness.push(provider_exactness::<$p>(exact_per_thread))
            };
        }
        with_provider!(id, weak_one);
    }

    let growth = ABLATION
        .iter()
        .filter_map(|id| {
            let rows: Vec<&LatencyRow> = latency
                .iter()
                .filter(|r| r.provider == id.meta().name)
                .collect();
            let first = rows.first()?;
            let last = rows.last()?;
            Some((id.meta().name, last.p99_ns as f64 / first.p99_ns as f64))
        })
        .collect();

    E9Results {
        audit,
        reuse,
        exactness,
        latency,
        growth,
        quick,
    }
}

fn growth_of(r: &E9Results, provider: &str) -> Option<f64> {
    r.growth.iter().find(|(p, _)| *p == provider).map(|&(_, g)| g)
}

/// The deterministic ablation gates, named. Quick runs use looser
/// thresholds (the quick N sweep tops out at 128, so the scan's growth is
/// real but smaller). Empty if the `--provider` filter removed a needed
/// provider.
#[must_use]
pub fn gates(r: &E9Results) -> Vec<(&'static str, bool)> {
    let (Some(scan), Some(constant)) = (
        growth_of(r, "fig7-bounded-scan"),
        growth_of(r, "constant"),
    ) else {
        return Vec::new();
    };
    let (scan_min, flat_max, sep) = if r.quick { (1.5, 3.0, 1.5) } else { (3.0, 3.0, 2.0) };
    vec![
        ("scan_grows", scan > scan_min),
        ("constant_flat", constant < flat_max),
        ("separation", scan > sep * constant),
    ]
}

/// Panics (with the measured ratios) if any ablation gate fails — the
/// harness's `catch_unwind` turns that into a failing exit code.
pub fn enforce(r: &E9Results) {
    for (name, ok) in gates(r) {
        assert!(
            ok,
            "E9 gate '{name}' failed: growth ratios {:?} (quick = {})",
            r.growth, r.quick
        );
    }
    for e in &r.exactness {
        assert_eq!(
            e.expected, e.observed,
            "provider {} lost updates under contention",
            e.provider
        );
    }
}

/// Renders the E9 report.
#[must_use]
pub fn render(r: &E9Results) -> Report {
    let mut report = Report::new();
    report.heading("E9 — bounded-tag safety audit (Theorem 5) and constant-time ablation");
    report.para(&format!(
        "Contended exactness, N = 2, k = 1 (tag universe of {} — the \
         hardest configuration): {} increments applied, {} observed, {} \
         lost. A single premature tag reuse would have produced a \
         false-success CAS and corrupted the count.",
        r.audit.universe,
        r.audit.expected,
        r.audit.observed,
        r.audit.expected - r.audit.observed,
    ));

    report.para(
        "Single-process stamp reuse distance — the paper's counter \
         mechanism guarantees a (tag, cnt) pair cannot recur within Nk + 1 \
         successful SCs to one variable:",
    );
    let mut t = Table::new([
        "N",
        "k",
        "guaranteed min distance (Nk+1)",
        "measured min distance",
    ]);
    for &(n, k, measured) in &r.reuse {
        t.row([
            n.to_string(),
            k.to_string(),
            (n * k + 1).to_string(),
            if measured == u64::MAX {
                "no reuse observed".to_string()
            } else {
                measured.to_string()
            },
        ]);
    }
    report.table(&t);

    report.para(
        "Constant-time ablation: the same contended-exactness audit over \
         the registry's three tag-recycling disciplines (2 writers, 1 \
         reader). The cas-from-swap and feb-llsc rows are the \
         weak-primitive tier riding the same audit — weakening the \
         hardware may cost throughput, never exactness:",
    );
    let mut t = Table::new(["provider", "expected", "observed"]);
    for e in &r.exactness {
        t.row([
            e.provider.to_string(),
            e.expected.to_string(),
            e.observed.to_string(),
        ]);
    }
    report.table(&t);

    report.para(
        "Worst-case single-op SC latency vs domain size N, single-threaded \
         so per-success queue maintenance is the only thing that varies: \
         Figure 7 with the indexed tag queue is O(1); Figure 7 with the \
         paper-literal scan (line 10 as written) pays O(Nk) per success; \
         the Blelloch–Wei construction is O(1) worst-case by design \
         (arXiv:1911.09671) — its per-SC work is one announce-cell read \
         plus a bounded filter step, independent of N:",
    );
    let mut t = Table::new(["provider", "N", "sc p50", "sc p99", "sc max"]);
    for row in &r.latency {
        t.row([
            row.provider.to_string(),
            row.n.to_string(),
            format!("{} ns", row.p50_ns),
            format!("{} ns", row.p99_ns),
            format!("{} ns", row.max_ns),
        ]);
    }
    report.table(&t);

    let growth = r
        .growth
        .iter()
        .map(|(p, g)| format!("{p} {g:.2}x"))
        .collect::<Vec<_>>()
        .join(", ");
    let gate_line = gates(r)
        .iter()
        .map(|(name, ok)| format!("{name}={}", if *ok { "ok" } else { "FAILED" }))
        .collect::<Vec<_>>()
        .join(", ");
    report.para(&format!(
        "p99 growth from N = {} to N = {}: {growth}. Gates: {}.",
        r.latency.first().map_or(0, |row| row.n),
        r.latency.last().map_or(0, |row| row.n),
        if gate_line.is_empty() { "skipped (--provider restricted)".to_string() } else { gate_line },
    ));
    report
}

/// JSON artifact for CI: the measured numbers plus the named gate
/// verdicts, so a workflow step can assert the gates held without
/// re-parsing the markdown.
#[must_use]
pub fn to_json(r: &E9Results) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema_version\": 1,\n");
    s.push_str("  \"experiment\": \"bounded_audit\",\n");
    s.push_str(&format!("  \"quick\": {},\n", r.quick));
    s.push_str(&format!(
        "  \"tiny_universe\": {{\"expected\": {}, \"observed\": {}, \"universe\": {}}},\n",
        r.audit.expected, r.audit.observed, r.audit.universe
    ));
    s.push_str("  \"exactness\": [\n");
    for (i, e) in r.exactness.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"provider\": \"{}\", \"expected\": {}, \"observed\": {}}}{}\n",
            e.provider,
            e.expected,
            e.observed,
            if i + 1 == r.exactness.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"sc_latency\": [\n");
    for (i, row) in r.latency.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"provider\": \"{}\", \"n\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}{}\n",
            row.provider,
            row.n,
            row.p50_ns,
            row.p99_ns,
            row.max_ns,
            if i + 1 == r.latency.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"growth\": {{{}}},\n",
        r.growth
            .iter()
            .map(|(p, g)| format!("\"{p}\": {g:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str(&format!(
        "  \"gates\": {{{}}}\n",
        gates(r)
            .iter()
            .map(|(name, ok)| format!("\"{name}\": {ok}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str("}\n");
    s
}

/// Runs E9: collect, render, and enforce the gates (panicking on
/// failure, after the report is built so the harness can still show it).
#[must_use]
pub fn run(per_thread: u64, quick: bool) -> Report {
    let r = collect(per_thread, quick, &ProviderFilter::default());
    let report = render(&r);
    enforce(&r);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactness_holds_at_minimum_universe() {
        let a = exactness_audit(30_000);
        assert_eq!(a.expected, a.observed, "lost updates under tiny universe");
        assert_eq!(a.universe, 5);
    }

    #[test]
    fn stamp_reuse_respects_the_counter_bound() {
        for (n, k) in [(2usize, 1usize), (4, 2)] {
            let d = min_stamp_reuse_distance(n, k, 10_000);
            assert!(
                d > (n * k) as u64,
                "stamp reused within Nk={} ops (distance {d})",
                n * k
            );
        }
    }

    #[test]
    fn every_ablation_provider_is_exact() {
        let r = collect(2_000, true, &ProviderFilter::default());
        for e in &r.exactness {
            assert_eq!(e.expected, e.observed, "provider {} lost updates", e.provider);
        }
        assert_eq!(r.exactness.len(), ABLATION.len() + WEAK.len());
        for id in WEAK {
            assert!(
                r.exactness.iter().any(|e| e.provider == id.meta().name),
                "weak provider {id:?} missing from the exactness audit"
            );
        }
    }

    #[test]
    fn json_has_gates_and_latency() {
        let r = collect(1_000, true, &ProviderFilter::default());
        let json = to_json(&r);
        assert!(json.contains("\"gates\""));
        assert!(json.contains("\"constant\""));
        assert!(json.contains("fig7-bounded-scan"));
    }

    #[test]
    fn report_smoke() {
        let r = collect(2_000, true, &ProviderFilter::default());
        let md = render(&r).to_markdown();
        assert!(md.contains("E9"));
        assert!(md.contains("0 lost") || md.contains(" lost"));
        assert!(md.contains("constant"));
    }
}
