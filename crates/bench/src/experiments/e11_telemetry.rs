//! **E11 — telemetry overhead and the racy-vs-atomic snapshot ablation.**
//!
//! The `nbsp-telemetry` subsystem makes two claims that need numbers:
//!
//! 1. **Zero cost when disabled.** With the `telemetry` cargo feature off,
//!    `record`/`observe` are empty `#[inline]` stubs, so an instrumented
//!    hot path must compile to the same code as a hand-written
//!    uninstrumented replica. The overhead gate times paired microloops —
//!    the instrumented [`CasLlSc`] small ops against a stub-free replica
//!    of the same Figure-4 algorithm — and requires the geomean ratio to
//!    stay within 1% when the feature is off. With the feature on, the
//!    same pairing *measures* the cost of recording (reported, not gated).
//!
//! 2. **The Figure-6 snapshot reader never tears; the racy reader does.**
//!    Writer threads maintain a cross-event invariant (equal counts of
//!    `TagAlloc` and `RscSpurious`, flushed together), while a reader
//!    samples both the racy matrix-sum and the `WideTotals` WLL snapshot.
//!    Every racy sample that breaks the invariant is a torn observation;
//!    the atomic reader is gated to zero tears.

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use nbsp_core::{CasLlSc, Keep, Native, TagLayout, WideTotals};
use nbsp_structures::Counter;
use nbsp_telemetry::{
    bucket_label, histogram, racy_totals, record_n, AtomicTotals, Event, Flusher, Hist,
    EVENT_COUNT, HIST_BUCKETS,
};

use crate::measure::{ns_per_op, throughput};
use crate::report::{event_table, Report, Table};

// ---------------------------------------------------------------------------
// Overhead microloops.
// ---------------------------------------------------------------------------

/// A stub-free replica of `CasLlSc<Native>`'s LL/VL/SC: same packing, same
/// orderings, no telemetry calls anywhere. This is what a "stubs removed
/// at the source level" build of Figure 4 looks like; comparing against it
/// isolates exactly the cost of the instrumentation.
struct PlainLlSc {
    cell: AtomicU64,
    layout: TagLayout,
}

impl PlainLlSc {
    fn new(initial: u64) -> Self {
        let layout = TagLayout::half();
        PlainLlSc {
            cell: AtomicU64::new(layout.pack(0, initial).unwrap()),
            layout,
        }
    }

    #[inline]
    fn ll(&self, keep: &mut u64) -> u64 {
        *keep = self.cell.load(Ordering::Acquire);
        self.layout.val(*keep)
    }

    #[inline]
    fn vl(&self, keep: u64) -> bool {
        keep == self.cell.load(Ordering::Acquire)
    }

    #[inline]
    fn sc(&self, keep: u64, new: u64) -> bool {
        // Mirrors `CasLlSc::sc` exactly: same bound assert, same shift+or
        // packing, same orderings — minus the telemetry record call.
        assert!(new <= self.layout.max_val(), "value exceeds layout maximum");
        let newword = (self.layout.tag_succ(self.layout.tag(keep)) << self.layout.val_bits()) | new;
        self.cell
            .compare_exchange(keep, newword, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

/// One paired measurement: nanoseconds per op for the instrumented path
/// and for the stub-free replica.
#[derive(Clone, Copy, Debug)]
pub struct OverheadPair {
    /// Workload label.
    pub name: &'static str,
    /// ns/op through the instrumented `CasLlSc`.
    pub instrumented_ns: f64,
    /// ns/op through the stub-free replica.
    pub plain_ns: f64,
}

impl OverheadPair {
    /// instrumented / plain (1.0 = free).
    #[must_use]
    pub fn ratio(self) -> f64 {
        self.instrumented_ns / self.plain_ns
    }
}

/// Times the paired small-op microloops: uncontended LL+SC increment and
/// LL+VL validate, instrumented vs. replica.
#[must_use]
pub fn overhead_pairs(iters: u64, runs: usize) -> Vec<OverheadPair> {
    let mut out = Vec::new();

    // LL + SC increment (the canonical small-op; hits the ScSuccess record
    // when instrumentation is on). Both sides run the *same* loop shape —
    // a bare LL/SC retry loop with a mask increment — so the only source
    // difference is the record call inside `CasLlSc::sc`.
    {
        let inst = CasLlSc::new_native(TagLayout::half(), 0).unwrap();
        let mask = inst.layout().max_val();
        let instrumented_ns = ns_per_op(iters, runs, || {
            let mut keep = Keep::default();
            loop {
                let old = inst.ll(&Native, &mut keep);
                if inst.sc(&Native, &keep, old.wrapping_add(1) & mask) {
                    black_box(old);
                    break;
                }
            }
        });
        let plain = PlainLlSc::new(0);
        let mask = plain.layout.max_val();
        let plain_ns = ns_per_op(iters, runs, || {
            let mut keep = 0u64;
            loop {
                let old = plain.ll(&mut keep);
                if plain.sc(keep, old.wrapping_add(1) & mask) {
                    black_box(old);
                    break;
                }
            }
        });
        out.push(OverheadPair {
            name: "ll+sc increment",
            instrumented_ns,
            plain_ns,
        });
    }

    // LL + VL (read-validate; no SC, so only the LL-side costs differ —
    // both should be identical even with telemetry on, since LL and VL
    // record nothing).
    {
        let inst = CasLlSc::new_native(TagLayout::half(), 7).unwrap();
        let instrumented_ns = ns_per_op(iters, runs, || {
            let mut keep = Keep::default();
            let v = inst.ll(&Native, &mut keep);
            black_box((v, inst.vl(&Native, &keep)));
        });
        let plain = PlainLlSc::new(7);
        let plain_ns = ns_per_op(iters, runs, || {
            let mut keep = 0u64;
            let v = plain.ll(&mut keep);
            black_box((v, plain.vl(keep)));
        });
        out.push(OverheadPair {
            name: "ll+vl validate",
            instrumented_ns,
            plain_ns,
        });
    }

    out
}

/// Geometric mean of the instrumented/plain ratios.
#[must_use]
pub fn geomean_ratio(pairs: &[OverheadPair]) -> f64 {
    (pairs.iter().map(|p| p.ratio().ln()).sum::<f64>() / pairs.len() as f64).exp()
}

// ---------------------------------------------------------------------------
// Snapshot ablation.
// ---------------------------------------------------------------------------

/// Outcome of the racy-vs-atomic snapshot ablation.
#[derive(Clone, Copy, Debug, Default)]
pub struct AblationResult {
    /// Racy matrix-sum samples taken.
    pub racy_samples: u64,
    /// Racy samples that broke the cross-event invariant (torn).
    pub racy_torn: u64,
    /// Atomic (WLL) samples taken.
    pub atomic_samples: u64,
    /// Atomic samples that broke the invariant — gated to zero.
    pub atomic_torn: u64,
    /// Expected per-event pair count at quiescence.
    pub expected: u64,
    /// Whether the quiesced atomic totals matched `expected` exactly.
    pub exact_at_quiescence: bool,
}

/// Runs writers that record equal `TagAlloc`/`RscSpurious` counts (flushed
/// together per batch) against a reader sampling both snapshot flavours.
///
/// The invariant pair is chosen because the flush path's own WLL/SC
/// activity records `ScSuccess`/`ScFail`/`LlRestart`/help events but never
/// these two, so observing the sink does not perturb the invariant.
///
/// # Panics
///
/// Panics if the telemetry feature is disabled (callers should check
/// [`nbsp_telemetry::enabled`]) or if the sink cannot be constructed.
#[must_use]
pub fn snapshot_ablation(writers: usize, batches: u64, per_batch: u64) -> AblationResult {
    assert!(
        nbsp_telemetry::enabled(),
        "snapshot ablation requires the telemetry feature"
    );
    let sink = WideTotals::with_all_slots().expect("sink construction");
    let stop = AtomicBool::new(false);
    let ta = Event::TagAlloc.index();
    let rs = Event::RscSpurious.index();
    let base = racy_totals();

    let (racy_samples, racy_torn, atomic_samples, atomic_torn) = std::thread::scope(|s| {
        for _ in 0..writers {
            s.spawn(|| {
                let mut flusher = Flusher::new();
                for _ in 0..batches {
                    record_n(Event::TagAlloc, per_batch);
                    record_n(Event::RscSpurious, per_batch);
                    flusher.flush(&sink);
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        s.spawn(|| {
            let (mut rn, mut rt, mut an, mut at) = (0u64, 0u64, 0u64, 0u64);
            // Do-while: the writers may already be done by the time this
            // thread gets scheduled; at least one sample of each reader
            // must still be taken.
            loop {
                let racy = racy_totals();
                rn += 1;
                if racy[ta] - base[ta] != racy[rs] - base[rs] {
                    rt += 1;
                }
                let atomic = sink.totals();
                an += 1;
                if atomic[ta] != atomic[rs] {
                    at += 1;
                }
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            (rn, rt, an, at)
        })
        .join()
        .unwrap()
    });

    let expected = writers as u64 * batches * per_batch;
    let fin = sink.totals();
    let fin_racy = racy_totals();
    let exact_at_quiescence = fin[ta] == expected
        && fin[rs] == expected
        && fin_racy[ta] - base[ta] == expected
        && fin_racy[rs] - base[rs] == expected;

    AblationResult {
        racy_samples,
        racy_torn,
        atomic_samples,
        atomic_torn,
        expected,
        exact_at_quiescence,
    }
}

// ---------------------------------------------------------------------------
// Enabled-path cost per structure (report only).
// ---------------------------------------------------------------------------

/// Contended counter throughput plus the telemetry events it generated,
/// from racy-total deltas (report only — no gate).
fn contended_counter_profile(threads: usize, per_thread: u64) -> (f64, [u64; EVENT_COUNT]) {
    let before = racy_totals();
    let counter = Counter::new(CasLlSc::new_native(TagLayout::half(), 0).unwrap());
    let tput = throughput(threads, per_thread, |_| {
        let counter = &counter;
        let mut ctx = Native;
        move || {
            counter.increment(&mut ctx);
        }
    });
    let after = racy_totals();
    let mut delta = [0u64; EVENT_COUNT];
    for i in 0..delta.len() {
        delta[i] = after[i] - before[i];
    }
    (tput, delta)
}

// ---------------------------------------------------------------------------
// The experiment.
// ---------------------------------------------------------------------------

/// Runs E11. When `gate` is set, panics (failing the experiment) if a
/// disabled-build overhead exceeds 1% or the atomic reader ever tears.
#[must_use]
pub fn run(iters: u64, gate: bool) -> Report {
    let mut report = Report::new();
    report.heading("E11 — telemetry overhead & snapshot ablation");
    report.para(&format!(
        "Telemetry feature: **{}**. Claim 1: with the feature off, \
         instrumented hot paths compile to the same code as stub-free \
         replicas (gate: geomean ratio within 1%). Claim 2: the \
         Figure-6-backed snapshot reader never returns a torn cross-event \
         state, while the racy matrix-sum reader can.",
        if nbsp_telemetry::enabled() { "enabled" } else { "disabled" },
    ));

    // --- Overhead. Re-measure on a gate miss: a 1% bar on a microloop
    // needs a quiet machine, and one noisy sample should not fail CI.
    let mut pairs = overhead_pairs(iters, 5);
    let mut g = geomean_ratio(&pairs);
    if !nbsp_telemetry::enabled() && gate {
        for _ in 0..4 {
            if g <= 1.01 {
                break;
            }
            pairs = overhead_pairs(iters, 5);
            g = geomean_ratio(&pairs);
        }
    }
    let mut t = Table::new(["small op", "instrumented", "stub-free replica", "ratio"]);
    for p in &pairs {
        t.row([
            p.name.to_string(),
            format!("{:.2} ns", p.instrumented_ns),
            format!("{:.2} ns", p.plain_ns),
            format!("{:.3}x", p.ratio()),
        ]);
    }
    report.table(&t);
    report.para(&format!(
        "Geomean instrumented/replica ratio: **{g:.3}x** ({}).",
        if nbsp_telemetry::enabled() {
            "recording cost with the feature on — reported, not gated"
        } else {
            "feature off — gated at 1.01"
        },
    ));
    if gate && !nbsp_telemetry::enabled() {
        assert!(
            g <= 1.01,
            "overhead gate: disabled-telemetry geomean ratio {g:.4} exceeds 1.01"
        );
    }

    if nbsp_telemetry::enabled() {
        // --- Snapshot ablation (only meaningful with recording on).
        let writers = 4;
        let batches = (iters * 2).max(20_000);
        let ab = snapshot_ablation(writers, batches, 3);
        let mut t = Table::new(["reader", "samples", "torn observations"]);
        t.row([
            "racy matrix sum".to_string(),
            ab.racy_samples.to_string(),
            ab.racy_torn.to_string(),
        ]);
        t.row([
            "WideVar WLL (Figure 6)".to_string(),
            ab.atomic_samples.to_string(),
            ab.atomic_torn.to_string(),
        ]);
        report.table(&t);
        report.para(&format!(
            "{} writers x {} batches; quiesced totals exact: {}. The atomic \
             reader is gated to zero tears; the racy reader's tears are the \
             measured price of skipping the paper's construction.",
            writers, batches, ab.exact_at_quiescence,
        ));
        if gate {
            assert_eq!(
                ab.atomic_torn, 0,
                "the Figure-6 snapshot reader returned a torn state"
            );
            assert!(ab.exact_at_quiescence, "quiesced totals were not exact");
        }

        // --- Enabled-path profile: what recording costs where it runs,
        // and what the counters say about a contended workload.
        let (tput, delta) = contended_counter_profile(4, iters.max(10_000));
        let ops = 4 * iters.max(10_000);
        let t = event_table(&delta, Some(ops));
        report.para(&format!(
            "Contended counter, 4 threads: {:.2} Mops/s with recording on; \
             events per operation below.",
            tput / 1e6,
        ));
        report.table(&t);

        let retries = histogram(Hist::Retries);
        let mut t = Table::new(["retries/op bucket", "ops"]);
        for (b, &n) in retries.iter().enumerate().take(HIST_BUCKETS) {
            if n > 0 {
                t.row([bucket_label(b), n.to_string()]);
            }
        }
        report.para("Retries-per-op distribution (all instrumented ops this process):");
        report.table(&t);
    } else {
        report.para(
            "Snapshot ablation and enabled-path profile skipped: recording \
             is compiled out in this build. Re-run with `--features \
             telemetry` (the default) for the ablation half.",
        );
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_replica_matches_llsc_semantics() {
        let v = PlainLlSc::new(3);
        let mut keep = 0u64;
        assert_eq!(v.ll(&mut keep), 3);
        assert!(v.vl(keep));
        assert!(v.sc(keep, 4));
        assert!(!v.vl(keep));
        assert!(!v.sc(keep, 5), "stale keep must fail");
        let mut k2 = 0u64;
        assert_eq!(v.ll(&mut k2), 4);
    }

    #[test]
    fn overhead_pairs_produce_finite_ratios() {
        for p in overhead_pairs(5_000, 2) {
            assert!(p.ratio().is_finite() && p.ratio() > 0.0, "{p:?}");
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn ablation_atomic_reader_never_tears() {
        let ab = snapshot_ablation(3, 3_000, 2);
        assert_eq!(ab.atomic_torn, 0);
        assert!(ab.exact_at_quiescence);
        assert!(ab.atomic_samples > 0 && ab.racy_samples > 0);
    }

    #[test]
    fn report_smoke() {
        let md = run(2_000, false).to_markdown();
        assert!(md.contains("E11"));
        assert!(md.contains("Geomean"));
    }
}
