//! Timing helpers for the experiment binaries.
//!
//! Criterion handles the statistically careful micro-benchmarks (see
//! `benches/`); these helpers produce the coarser single-number summaries
//! the experiment tables need, with a warmup pass and median-of-runs to
//! keep noise tolerable.

use std::time::Instant;

/// Median nanoseconds per iteration of `f`, over `runs` timed runs of
/// `iters` iterations each (after one warmup run).
pub fn ns_per_op(iters: u64, runs: usize, mut f: impl FnMut()) -> f64 {
    assert!(iters > 0 && runs > 0);
    for _ in 0..iters.min(10_000) {
        f(); // warmup
    }
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Total throughput (ops/sec) of `threads` concurrent workers each running
/// `per_thread` iterations of the closure produced by `make_worker(thread)`.
///
/// `make_worker` is called once per thread on the coordinator and the
/// resulting closure is moved into the worker, so it can capture claimed
/// processors or other per-thread state.
pub fn throughput<W>(threads: usize, per_thread: u64, mut make_worker: impl FnMut(usize) -> W) -> f64
where
    W: FnMut() + Send,
{
    assert!(threads > 0 && per_thread > 0);
    let workers: Vec<W> = (0..threads).map(&mut make_worker).collect();
    let start = Instant::now();
    std::thread::scope(|s| {
        for mut w in workers {
            s.spawn(move || {
                for _ in 0..per_thread {
                    w();
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads as u64 * per_thread) as f64 / secs
}

/// Total throughput (ops/sec) of `threads` concurrent workers where each
/// worker *session* owns its whole loop: `make_session(thread)` builds a
/// closure that is handed its iteration count and runs it to completion
/// on the worker thread.
///
/// Use this instead of [`throughput`] when the worker needs per-thread
/// state that must live on the worker thread itself — e.g. a
/// `nbsp_telemetry::Flusher`, which is `!Send` and must be created,
/// flushed periodically, and final-flushed by the thread whose counter
/// row it mirrors.
pub fn throughput_sessions<S>(
    threads: usize,
    per_thread: u64,
    mut make_session: impl FnMut(usize) -> S,
) -> f64
where
    S: FnOnce(u64) + Send,
{
    assert!(threads > 0 && per_thread > 0);
    let sessions: Vec<S> = (0..threads).map(&mut make_session).collect();
    let start = Instant::now();
    std::thread::scope(|s| {
        for session in sessions {
            s.spawn(move || session(per_thread));
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads as u64 * per_thread) as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn ns_per_op_is_positive_and_finite() {
        let x = AtomicU64::new(0);
        let ns = ns_per_op(10_000, 3, || {
            x.fetch_add(1, Ordering::Relaxed);
        });
        assert!(ns.is_finite() && ns > 0.0, "{ns}");
    }

    #[test]
    fn throughput_counts_all_ops() {
        let x = AtomicU64::new(0);
        let t = throughput(4, 10_000, |_| {
            let x = &x;
            move || {
                x.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(t > 0.0);
        // No warmup pass in throughput(): exactly threads * per_thread ops.
        assert_eq!(x.load(Ordering::Relaxed), 40_000);
    }

    #[test]
    fn throughput_sessions_runs_each_session_once_with_the_count() {
        let x = AtomicU64::new(0);
        let t = throughput_sessions(4, 10_000, |_| {
            let x = &x;
            move |iters: u64| {
                // The session owns its loop (and could flush mid-way).
                for _ in 0..iters {
                    x.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert!(t > 0.0);
        assert_eq!(x.load(Ordering::Relaxed), 40_000);
    }
}
