//! Bench for E7: the re-enabled data structures on Figure 4 vs the lock
//! baseline, single-threaded latency (throughput under threads is in
//! `exp_enabled_algorithms` / `exp_contention`). Plain harness.

use std::hint::black_box;

use nbsp_bench::measure::ns_per_op;
use nbsp_bench::report::fmt_ns;
use nbsp_core::lock_baseline::LockLlSc;
use nbsp_core::wide::WideDomain;
use nbsp_core::{CasLlSc, Native, TagLayout};
use nbsp_memsim::ProcId;
use nbsp_structures::stm::Stm;
use nbsp_structures::{Counter, Queue, Stack, Universal};

const ITERS: u64 = 200_000;
const RUNS: usize = 5;

fn nat() -> CasLlSc<Native> {
    CasLlSc::new_native(TagLayout::half(), 0).unwrap()
}

fn report(name: &str, ns: f64) {
    println!("structures/{name:<24} {}", fmt_ns(ns));
}

fn main() {
    let counter = Counter::new(nat());
    report(
        "counter_increment_fig4",
        ns_per_op(ITERS, RUNS, || {
            black_box(counter.increment(&mut Native));
        }),
    );
    let counter_lock = Counter::new(LockLlSc::new(2, 0));
    let mut ctx = ProcId::new(0);
    report(
        "counter_increment_lock",
        ns_per_op(ITERS, RUNS, || {
            black_box(counter_lock.increment(&mut ctx));
        }),
    );

    let stack = Stack::new(64, nat(), nat(), &mut Native);
    report(
        "stack_push_pop_fig4",
        ns_per_op(ITERS, RUNS, || {
            stack.push(&mut Native, 1).unwrap();
            black_box(stack.pop(&mut Native));
        }),
    );

    let queue = Queue::new(64, nat, &mut Native);
    report(
        "queue_enq_deq_fig4",
        ns_per_op(ITERS, RUNS, || {
            queue.enqueue(&mut Native, 1).unwrap();
            black_box(queue.dequeue(&mut Native));
        }),
    );

    let universal = Universal::new(nat());
    report(
        "universal_apply_fig4",
        ns_per_op(ITERS, RUNS, || {
            black_box(universal.apply(&mut Native, |s| s.wrapping_add(3) & 0xFFFF));
        }),
    );

    let domain = WideDomain::<Native>::new(2, 8, 32).unwrap();
    let stm = Stm::new(&domain, &[100; 8]).unwrap();
    let p = ProcId::new(0);
    report(
        "stm_transfer_fig6",
        ns_per_op(ITERS, RUNS, || {
            black_box(stm.transact(&Native, p, |h| {
                let amt = h[0].min(1);
                h[0] -= amt;
                h[1] += amt;
                h.swap(0, 1);
            }));
        }),
    );
}
