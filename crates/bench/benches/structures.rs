//! Criterion bench for E7: the re-enabled data structures on Figure 4 vs
//! the lock baseline, single-threaded latency (throughput under threads is
//! in `exp_enabled_algorithms`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nbsp_core::lock_baseline::LockLlSc;
use nbsp_core::wide::WideDomain;
use nbsp_core::{CasLlSc, Native, TagLayout};
use nbsp_memsim::ProcId;
use nbsp_structures::stm::Stm;
use nbsp_structures::{Counter, Queue, Stack, Universal};

fn nat() -> CasLlSc<Native> {
    CasLlSc::new_native(TagLayout::half(), 0).unwrap()
}

fn bench_structures(c: &mut Criterion) {
    let mut g = c.benchmark_group("structures");
    g.sample_size(20);

    let counter = Counter::new(nat());
    g.bench_function("counter_increment_fig4", |b| {
        b.iter(|| black_box(counter.increment(&mut Native)))
    });
    let counter_lock = Counter::new(LockLlSc::new(2, 0));
    g.bench_function("counter_increment_lock", |b| {
        let mut ctx = ProcId::new(0);
        b.iter(|| black_box(counter_lock.increment(&mut ctx)))
    });

    let stack = Stack::new(64, nat(), nat(), &mut Native);
    g.bench_function("stack_push_pop_fig4", |b| {
        b.iter(|| {
            stack.push(&mut Native, 1).unwrap();
            black_box(stack.pop(&mut Native))
        })
    });

    let queue = Queue::new(64, nat, &mut Native);
    g.bench_function("queue_enq_deq_fig4", |b| {
        b.iter(|| {
            queue.enqueue(&mut Native, 1).unwrap();
            black_box(queue.dequeue(&mut Native))
        })
    });

    let universal = Universal::new(nat());
    g.bench_function("universal_apply_fig4", |b| {
        b.iter(|| black_box(universal.apply(&mut Native, |s| s.wrapping_add(3) & 0xFFFF)))
    });

    let domain = WideDomain::<Native>::new(2, 8, 32).unwrap();
    let stm = Stm::new(&domain, &[100; 8]).unwrap();
    g.bench_function("stm_transfer_fig6", |b| {
        let p = ProcId::new(0);
        b.iter(|| {
            black_box(stm.transact(&Native, p, |h| {
                let amt = h[0].min(1);
                h[0] -= amt;
                h[1] += amt;
                h.swap(0, 1);
            }))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_structures);
criterion_main!(benches);
