//! Bench for E2: Θ(W) WLL/SC and Θ(1) VL across widths. Plain harness.

use std::hint::black_box;

use nbsp_bench::measure::ns_per_op;
use nbsp_bench::report::fmt_ns;
use nbsp_core::wide::{WideDomain, WideKeep};
use nbsp_core::Native;
use nbsp_memsim::ProcId;

const ITERS: u64 = 50_000;
const RUNS: usize = 5;

fn main() {
    for w in [1usize, 4, 16, 64] {
        let domain = WideDomain::<Native>::new(4, w, 32).unwrap();
        let var = domain.var(&vec![0u64; w]).unwrap();
        let mem = Native;
        let mut buf = vec![0u64; w];

        let ns = ns_per_op(ITERS, RUNS, || {
            let mut keep = WideKeep::default();
            black_box(var.wll(&mem, &mut keep, &mut buf).is_success());
        });
        println!("wide_ops/wll/{w:<3}    {}", fmt_ns(ns));

        let newval = vec![1u64; w];
        let ns = ns_per_op(ITERS, RUNS, || {
            let mut keep = WideKeep::default();
            let _ = var.wll(&mem, &mut keep, &mut buf);
            black_box(var.sc(&mem, ProcId::new(0), &keep, &newval));
        });
        println!("wide_ops/wll_sc/{w:<3} {}", fmt_ns(ns));

        let vl_keep = {
            let mut k = WideKeep::default();
            let _ = var.wll(&mem, &mut k, &mut buf);
            k
        };
        let ns = ns_per_op(ITERS, RUNS, || {
            black_box(var.vl(&mem, &vl_keep));
        });
        println!("wide_ops/vl/{w:<3}     {}", fmt_ns(ns));
    }
}
