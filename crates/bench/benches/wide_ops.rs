//! Criterion bench for E2: Θ(W) WLL/SC and Θ(1) VL across widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use nbsp_core::wide::{WideDomain, WideKeep};
use nbsp_core::Native;
use nbsp_memsim::ProcId;

fn bench_wide(c: &mut Criterion) {
    let mut g = c.benchmark_group("wide_ops");
    g.sample_size(20);
    for w in [1usize, 4, 16, 64] {
        let domain = WideDomain::<Native>::new(4, w, 32).unwrap();
        let var = domain.var(&vec![0u64; w]).unwrap();
        let mem = Native;
        let mut buf = vec![0u64; w];
        g.throughput(Throughput::Elements(w as u64));

        g.bench_with_input(BenchmarkId::new("wll", w), &w, |b, _| {
            b.iter(|| {
                let mut keep = WideKeep::default();
                black_box(var.wll(&mem, &mut keep, &mut buf).is_success())
            })
        });

        let newval = vec![1u64; w];
        g.bench_with_input(BenchmarkId::new("wll_sc", w), &w, |b, _| {
            b.iter(|| {
                let mut keep = WideKeep::default();
                let _ = var.wll(&mem, &mut keep, &mut buf);
                black_box(var.sc(&mem, ProcId::new(0), &keep, &newval))
            })
        });

        let vl_keep = {
            let mut k = WideKeep::default();
            let _ = var.wll(&mem, &mut k, &mut buf);
            k
        };
        g.bench_with_input(BenchmarkId::new("vl", w), &w, |b, _| {
            b.iter(|| black_box(var.vl(&mem, &vl_keep)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_wide);
criterion_main!(benches);
