//! Bench for E4: Figure-5 SC cost as the spurious-failure probability
//! rises (retries are the paper's "finitely many failures" cost made
//! visible). Plain harness, no external framework.

use std::hint::black_box;

use nbsp_bench::measure::ns_per_op;
use nbsp_bench::report::fmt_ns;
use nbsp_core::{Keep, RllLlSc, TagLayout};
use nbsp_memsim::{InstructionSet, Machine, SpuriousMode};

const ITERS: u64 = 100_000;
const RUNS: usize = 5;

fn main() {
    for p_fail in [0.0f64, 0.1, 0.5, 0.9] {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::RllRscOnly)
            .spurious(SpuriousMode::Probability { p: p_fail })
            .build();
        let proc = m.processor(0);
        let var = RllLlSc::new(TagLayout::half(), 0).unwrap();
        let ns = ns_per_op(ITERS, RUNS, || {
            let mut keep = Keep::default();
            let v = var.ll(&proc, &mut keep);
            black_box(var.sc(&proc, &keep, v.wrapping_add(1) & 0xFFFF_FFFF));
        });
        println!("spurious/fig5_sc_under_p/{p_fail:.1}     {}", fmt_ns(ns));
    }
}
