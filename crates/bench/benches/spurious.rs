//! Criterion bench for E4: Figure-5 SC cost as the spurious-failure
//! probability rises (retries are the paper's "finitely many failures"
//! cost made visible).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use nbsp_core::{Keep, RllLlSc, TagLayout};
use nbsp_memsim::{InstructionSet, Machine, SpuriousMode};

fn bench_spurious(c: &mut Criterion) {
    let mut g = c.benchmark_group("spurious");
    g.sample_size(20);
    for p_fail in [0.0f64, 0.1, 0.5, 0.9] {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::RllRscOnly)
            .spurious(SpuriousMode::Probability { p: p_fail })
            .build();
        let proc = m.processor(0);
        let var = RllLlSc::new(TagLayout::half(), 0).unwrap();
        g.bench_with_input(
            BenchmarkId::new("fig5_sc_under_p", format!("{p_fail:.1}")),
            &p_fail,
            |b, _| {
                b.iter(|| {
                    let mut keep = Keep::default();
                    let v = var.ll(&proc, &mut keep);
                    black_box(var.sc(&proc, &keep, v.wrapping_add(1) & 0xFFFF_FFFF))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_spurious);
criterion_main!(benches);
