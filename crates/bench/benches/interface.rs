//! Bench for E8: keep-pointer interface vs the keep-search alternatives
//! (§3.2's space–time tradeoff). Plain harness, no external framework.

use std::hint::black_box;

use nbsp_bench::measure::ns_per_op;
use nbsp_bench::report::fmt_ns;
use nbsp_core::keep_search::{KeepRegistry, PerVarKeepVar, RegistryKeepVar};
use nbsp_core::{CasLlSc, Keep, Native, TagLayout};
use nbsp_memsim::ProcId;

const ITERS: u64 = 200_000;
const RUNS: usize = 5;

fn report(name: &str, ns: f64) {
    println!("interface/{name:<24} {}", fmt_ns(ns));
}

fn main() {
    let layout = TagLayout::half();

    let keep_ptr = CasLlSc::new_native(layout, 0).unwrap();
    report(
        "keep_pointer_cycle",
        ns_per_op(ITERS, RUNS, || {
            let mut keep = Keep::default();
            let v = keep_ptr.ll(&Native, &mut keep);
            black_box(keep_ptr.sc(&Native, &keep, v.wrapping_add(1) & 0xFFFF));
        }),
    );

    let keep_array = PerVarKeepVar::new(16, layout, 0).unwrap();
    let p = ProcId::new(0);
    report(
        "keep_array_cycle",
        ns_per_op(ITERS, RUNS, || {
            let v = keep_array.ll(p);
            black_box(keep_array.sc(p, v.wrapping_add(1) & 0xFFFF));
        }),
    );

    // Registry with background lookup pressure: 1024 live sequences.
    let registry = KeepRegistry::new();
    let others: Vec<RegistryKeepVar> = (0..1024)
        .map(|_| RegistryKeepVar::new(&registry, 16, layout, 0).unwrap())
        .collect();
    for (i, o) in others.iter().enumerate() {
        let _ = o.ll(ProcId::new(i % 16));
    }
    let reg_var = RegistryKeepVar::new(&registry, 16, layout, 0).unwrap();
    report(
        "registry_cycle_1024_live",
        ns_per_op(ITERS, RUNS, || {
            let v = reg_var.ll(p);
            black_box(reg_var.sc(p, v.wrapping_add(1) & 0xFFFF));
        }),
    );
}
