//! Criterion bench for E8: keep-pointer interface vs the keep-search
//! alternatives (§3.2's space–time tradeoff).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nbsp_core::keep_search::{KeepRegistry, PerVarKeepVar, RegistryKeepVar};
use nbsp_core::{CasLlSc, Keep, Native, TagLayout};
use nbsp_memsim::ProcId;

fn bench_interface(c: &mut Criterion) {
    let mut g = c.benchmark_group("interface");
    g.sample_size(20);
    let layout = TagLayout::half();

    let keep_ptr = CasLlSc::new_native(layout, 0).unwrap();
    g.bench_function("keep_pointer_cycle", |b| {
        b.iter(|| {
            let mut keep = Keep::default();
            let v = keep_ptr.ll(&Native, &mut keep);
            black_box(keep_ptr.sc(&Native, &keep, v.wrapping_add(1) & 0xFFFF))
        })
    });

    let keep_array = PerVarKeepVar::new(16, layout, 0).unwrap();
    g.bench_function("keep_array_cycle", |b| {
        let p = ProcId::new(0);
        b.iter(|| {
            let v = keep_array.ll(p);
            black_box(keep_array.sc(p, v.wrapping_add(1) & 0xFFFF))
        })
    });

    // Registry with background lookup pressure: 1024 live sequences.
    let registry = KeepRegistry::new();
    let others: Vec<RegistryKeepVar> = (0..1024)
        .map(|_| RegistryKeepVar::new(&registry, 16, layout, 0).unwrap())
        .collect();
    for (i, o) in others.iter().enumerate() {
        let _ = o.ll(ProcId::new(i % 16));
    }
    let reg_var = RegistryKeepVar::new(&registry, 16, layout, 0).unwrap();
    g.bench_function("registry_cycle_1024_live", |b| {
        let p = ProcId::new(0);
        b.iter(|| {
            let v = reg_var.ll(p);
            black_box(reg_var.sc(p, v.wrapping_add(1) & 0xFFFF))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_interface);
criterion_main!(benches);
