//! Criterion bench for E1: per-operation latency of each small-variable
//! LL/VL/SC implementation and the emulated CAS, uncontended.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nbsp_core::bounded::BoundedDomain;
use nbsp_core::lock_baseline::LockLlSc;
use nbsp_core::{CasLlSc, EmuCasWord, Keep, Native, RllLlSc, TagLayout};
use nbsp_memsim::{InstructionSet, Machine, ProcId};

fn bench_small_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("small_ops");
    g.sample_size(20);

    // Figure 4 on native CAS: the headline configuration.
    let fig4 = CasLlSc::new_native(TagLayout::half(), 0).unwrap();
    g.bench_function("fig4_ll_sc_cycle", |b| {
        b.iter(|| {
            let mut keep = Keep::default();
            let v = fig4.ll(&Native, &mut keep);
            black_box(fig4.sc(&Native, &keep, v.wrapping_add(1) & 0xFFFF_FFFF))
        })
    });
    g.bench_function("fig4_vl", |b| {
        let mut keep = Keep::default();
        let _ = fig4.ll(&Native, &mut keep);
        b.iter(|| black_box(fig4.vl(&Native, &keep)))
    });

    // Figure 7 bounded tags.
    let d = BoundedDomain::<Native>::new(16, 2).unwrap();
    let fig7 = d.var(0).unwrap();
    let mut me = d.proc(0);
    g.bench_function("fig7_ll_sc_cycle", |b| {
        b.iter(|| {
            let (v, keep) = fig7.ll(&Native, &mut me);
            black_box(fig7.sc(&Native, &mut me, keep, v.wrapping_add(1) & 0xFF))
        })
    });

    // Figure 2 lock baseline.
    let lock = LockLlSc::new(16, 0);
    g.bench_function("lock_ll_sc_cycle", |b| {
        let p = ProcId::new(0);
        b.iter(|| {
            let v = lock.ll(p);
            black_box(lock.sc(p, v.wrapping_add(1)))
        })
    });

    // Figure 3 emulated CAS and Figure 5, on the simulated machine
    // (includes simulation bookkeeping — compare amongst themselves, not
    // against the native rows).
    let m = Machine::builder(2)
        .instruction_set(InstructionSet::RllRscOnly)
        .build();
    let p = m.processor(0);
    let fig3 = EmuCasWord::new(TagLayout::half(), 0).unwrap();
    g.bench_function("fig3_emulated_cas_sim", |b| {
        b.iter(|| {
            let v = fig3.read(&p);
            black_box(fig3.cas(&p, v, v.wrapping_add(1) & 0xFFFF_FFFF))
        })
    });
    let fig5 = RllLlSc::new(TagLayout::half(), 0).unwrap();
    g.bench_function("fig5_ll_sc_cycle_sim", |b| {
        b.iter(|| {
            let mut keep = Keep::default();
            let v = fig5.ll(&p, &mut keep);
            black_box(fig5.sc(&p, &keep, v.wrapping_add(1) & 0xFFFF_FFFF))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_small_ops);
criterion_main!(benches);
