//! Bench for E1: per-operation latency of each small-variable LL/VL/SC
//! implementation and the emulated CAS, uncontended.
//!
//! Plain harness (`harness = false`, no external bench framework so the
//! workspace builds offline): median-of-runs via `measure::ns_per_op`.

use std::hint::black_box;

use nbsp_bench::measure::ns_per_op;
use nbsp_bench::report::fmt_ns;
use nbsp_core::bounded::BoundedDomain;
use nbsp_core::lock_baseline::LockLlSc;
use nbsp_core::{CasLlSc, EmuCasWord, Keep, Native, RllLlSc, TagLayout};
use nbsp_memsim::{InstructionSet, Machine, ProcId};

const ITERS: u64 = 200_000;
const RUNS: usize = 5;

fn report(name: &str, ns: f64) {
    println!("small_ops/{name:<24} {}", fmt_ns(ns));
}

fn main() {
    // Figure 4 on native CAS: the headline configuration.
    let fig4 = CasLlSc::new_native(TagLayout::half(), 0).unwrap();
    report(
        "fig4_ll_sc_cycle",
        ns_per_op(ITERS, RUNS, || {
            let mut keep = Keep::default();
            let v = fig4.ll(&Native, &mut keep);
            black_box(fig4.sc(&Native, &keep, v.wrapping_add(1) & 0xFFFF_FFFF));
        }),
    );
    {
        let mut keep = Keep::default();
        let _ = fig4.ll(&Native, &mut keep);
        report(
            "fig4_vl",
            ns_per_op(ITERS, RUNS, || {
                black_box(fig4.vl(&Native, &keep));
            }),
        );
    }

    // Figure 7 bounded tags.
    let d = BoundedDomain::<Native>::new(16, 2).unwrap();
    let fig7 = d.var(0).unwrap();
    let mut me = d.proc(0);
    report(
        "fig7_ll_sc_cycle",
        ns_per_op(ITERS, RUNS, || {
            let (v, keep) = fig7.ll(&Native, &mut me);
            black_box(fig7.sc(&Native, &mut me, keep, v.wrapping_add(1) & 0xFF));
        }),
    );

    // Figure 2 lock baseline.
    let lock = LockLlSc::new(16, 0);
    let p = ProcId::new(0);
    report(
        "lock_ll_sc_cycle",
        ns_per_op(ITERS, RUNS, || {
            let v = lock.ll(p);
            black_box(lock.sc(p, v.wrapping_add(1)));
        }),
    );

    // Figure 3 emulated CAS and Figure 5, on the simulated machine
    // (includes simulation bookkeeping — compare amongst themselves, not
    // against the native rows).
    let m = Machine::builder(2)
        .instruction_set(InstructionSet::RllRscOnly)
        .build();
    let p = m.processor(0);
    let fig3 = EmuCasWord::new(TagLayout::half(), 0).unwrap();
    report(
        "fig3_emulated_cas_sim",
        ns_per_op(ITERS, RUNS, || {
            let v = fig3.read(&p);
            black_box(fig3.cas(&p, v, v.wrapping_add(1) & 0xFFFF_FFFF));
        }),
    );
    let fig5 = RllLlSc::new(TagLayout::half(), 0).unwrap();
    report(
        "fig5_ll_sc_cycle_sim",
        ns_per_op(ITERS, RUNS, || {
            let mut keep = Keep::default();
            let v = fig5.ll(&p, &mut keep);
            black_box(fig5.sc(&p, &keep, v.wrapping_add(1) & 0xFFFF_FFFF));
        }),
    );
}
