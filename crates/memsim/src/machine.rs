use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::rng::SplitMix64;
use crate::trace::{FebOp, TraceEvent, TraceKind, TraceRing};
use crate::{CachePadded, ProcId, ProcStats, RscOutcome, SimWord, SpuriousMode};

/// Which strong synchronization instructions the simulated machine provides.
///
/// The paper's premise (Section 1): "many machines provide either CAS or
/// LL/SC, but not both". Modelling the capability explicitly lets tests and
/// examples demonstrate that each construction runs on the machines it
/// claims to run on — and *only* uses instructions those machines have.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstructionSet {
    /// CAS is available; RLL/RSC are not (e.g. SPARC, x86 lineage).
    CasOnly,
    /// RLL/RSC are available; CAS is not (e.g. MIPS R4000, Alpha, PowerPC).
    RllRscOnly,
    /// Only the consensus-number-2 pair swap and fetch-and-add — the
    /// machine Khanchandani–Wattenhofer's CAS construction targets.
    SwapFaaOnly,
    /// Only the NB-FEB full/empty-bit operations (TFAS, SAC, and the
    /// flag-aware load) of Ha–Tsigas–Anshus.
    FebOnly,
    /// Every instruction the simulator models (the reference machine used
    /// by tests that need all of them at once).
    Both,
}

impl InstructionSet {
    /// Whether this machine executes CAS.
    #[must_use]
    pub fn has_cas(self) -> bool {
        matches!(self, InstructionSet::CasOnly | InstructionSet::Both)
    }

    /// Whether this machine executes RLL/RSC.
    #[must_use]
    pub fn has_rll_rsc(self) -> bool {
        matches!(self, InstructionSet::RllRscOnly | InstructionSet::Both)
    }

    /// Whether this machine executes swap and fetch-and-add.
    #[must_use]
    pub fn has_swap_faa(self) -> bool {
        matches!(self, InstructionSet::SwapFaaOnly | InstructionSet::Both)
    }

    /// Whether this machine executes the NB-FEB word operations.
    #[must_use]
    pub fn has_feb(self) -> bool {
        matches!(self, InstructionSet::FebOnly | InstructionSet::Both)
    }

    /// The capability bitset equivalent to this instruction set.
    #[must_use]
    pub fn capability(self) -> Capability {
        let mut c = Capability::NONE;
        if self.has_cas() {
            c = c | Capability::CAS;
        }
        if self.has_rll_rsc() {
            c = c | Capability::RLL_RSC;
        }
        if self.has_swap_faa() {
            c = c | Capability::SWAP | Capability::FETCH_ADD;
        }
        if self.has_feb() {
            c = c | Capability::FEB;
        }
        c
    }
}

/// A bitset of synchronization instructions: which ops a machine provides,
/// or which ops a construction *requires* of its machine (carried by
/// `ProviderMeta` in `nbsp-core` — the registry's portability matrix over
/// the consensus hierarchy).
///
/// ```
/// use nbsp_memsim::{Capability, InstructionSet};
/// let weak = Capability::SWAP | Capability::FETCH_ADD;
/// assert!(InstructionSet::SwapFaaOnly.capability().contains(weak));
/// assert!(!weak.contains(Capability::CAS));
/// assert_eq!(weak.to_string(), "swap+fetch_add");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Capability(u8);

impl Capability {
    /// The empty set (no synchronization beyond plain reads/writes).
    pub const NONE: Capability = Capability(0);
    /// Compare-and-swap.
    pub const CAS: Capability = Capability(1);
    /// Restricted load-linked / store-conditional.
    pub const RLL_RSC: Capability = Capability(1 << 1);
    /// Unconditional atomic exchange.
    pub const SWAP: Capability = Capability(1 << 2);
    /// Fetch-and-add.
    pub const FETCH_ADD: Capability = Capability(1 << 3);
    /// The NB-FEB full/empty-bit operations (TFAS, SAC, flag-aware load).
    pub const FEB: Capability = Capability(1 << 4);

    /// True iff every bit of `other` is present in `self`.
    #[must_use]
    pub fn contains(self, other: Capability) -> bool {
        self.0 & other.0 == other.0
    }

    /// True iff no instruction is present.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The names of the present instructions, in declaration order.
    #[must_use]
    pub fn names(self) -> Vec<&'static str> {
        [
            (Capability::CAS, "cas"),
            (Capability::RLL_RSC, "rll_rsc"),
            (Capability::SWAP, "swap"),
            (Capability::FETCH_ADD, "fetch_add"),
            (Capability::FEB, "feb"),
        ]
        .into_iter()
        .filter(|(bit, _)| self.contains(*bit))
        .map(|(_, name)| name)
        .collect()
    }
}

impl std::ops::BitOr for Capability {
    type Output = Capability;

    fn bitor(self, rhs: Capability) -> Capability {
        Capability(self.0 | rhs.0)
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        f.write_str(&self.names().join("+"))
    }
}

/// What happens when a processor touches memory between an RLL and the
/// subsequent RSC (the paper's restriction #1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessBetween {
    /// The reservation is silently dropped, so the RSC fails. This is the
    /// conservative model of real hardware and the default.
    Invalidate,
    /// An RSC issued after the reservation was touched by an intervening
    /// access panics. (Merely abandoning a reservation and moving on is
    /// fine — the restriction concerns the RLL→RSC *pair*.) Use in tests
    /// to prove an algorithm never violates the restriction.
    Panic,
    /// The reservation survives (idealised hardware; useful to isolate the
    /// effect of the restriction in ablation experiments).
    Allow,
}

#[derive(Debug)]
struct MachineInner {
    n: usize,
    isa: InstructionSet,
    spurious: SpuriousMode,
    access_between: AccessBetween,
    seed: u64,
    trace_depth: usize,
    /// One claim flag per processor; padded because unrelated threads claim
    /// their processors concurrently at startup and should not ping-pong a
    /// shared line while doing so.
    claimed: Vec<CachePadded<AtomicBool>>,
}

/// A simulated shared-memory multiprocessor with `n` processors.
///
/// Construct with [`Machine::builder`], then hand one [`Processor`] to each
/// thread via [`Machine::processor`]. The machine itself is cheap to clone
/// (it is an `Arc` internally) and is `Send + Sync`.
///
/// ```
/// use nbsp_memsim::{Machine, SimWord};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let machine = Machine::builder(4).build();
/// let counter = SimWord::new(0);
/// std::thread::scope(|s| {
///     for id in 0..4 {
///         let p = machine.processor(id);
///         let counter = &counter;
///         s.spawn(move || {
///             for _ in 0..1000 {
///                 loop {
///                     let v = p.rll(counter);
///                     if p.rsc(counter, v + 1) {
///                         break;
///                     }
///                 }
///             }
///         });
///     }
/// });
/// assert_eq!(counter.peek(), 4000);
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    inner: Arc<MachineInner>,
}

/// Builder for [`Machine`] (see [`Machine::builder`]).
#[derive(Debug)]
pub struct MachineBuilder {
    n: usize,
    isa: InstructionSet,
    spurious: SpuriousMode,
    access_between: AccessBetween,
    seed: u64,
    trace_depth: usize,
}

impl MachineBuilder {
    /// Sets the instruction-set capability (default: [`InstructionSet::Both`]).
    #[must_use]
    pub fn instruction_set(mut self, isa: InstructionSet) -> Self {
        self.isa = isa;
        self
    }

    /// Sets the spurious-failure adversary (default: [`SpuriousMode::Never`]).
    #[must_use]
    pub fn spurious(mut self, mode: SpuriousMode) -> Self {
        self.spurious = mode;
        self
    }

    /// Sets the policy for memory accesses between RLL and RSC
    /// (default: [`AccessBetween::Invalidate`]).
    #[must_use]
    pub fn access_between(mut self, policy: AccessBetween) -> Self {
        self.access_between = policy;
        self
    }

    /// Sets the seed for all deterministic randomness (default: 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables per-processor instruction tracing, keeping the last `depth`
    /// instructions per processor (default: 0, disabled). Retrieve with
    /// [`Processor::trace`].
    #[must_use]
    pub fn trace_depth(mut self, depth: usize) -> Self {
        self.trace_depth = depth;
        self
    }

    /// Builds the machine.
    ///
    /// # Panics
    ///
    /// Panics if the machine was configured with zero processors.
    #[must_use]
    pub fn build(self) -> Machine {
        assert!(self.n > 0, "a machine needs at least one processor");
        Machine {
            inner: Arc::new(MachineInner {
                n: self.n,
                isa: self.isa,
                spurious: self.spurious,
                access_between: self.access_between,
                seed: self.seed,
                trace_depth: self.trace_depth,
                claimed: (0..self.n)
                    .map(|_| CachePadded::new(AtomicBool::new(false)))
                    .collect(),
            }),
        }
    }
}

impl Machine {
    /// Starts building a machine with `n` processors.
    #[must_use]
    pub fn builder(n: usize) -> MachineBuilder {
        MachineBuilder {
            n,
            isa: InstructionSet::Both,
            spurious: SpuriousMode::Never,
            access_between: AccessBetween::Invalidate,
            seed: 0,
            trace_depth: 0,
        }
    }

    /// Convenience constructor: `n` processors, both instruction sets, no
    /// spurious failures.
    #[must_use]
    pub fn new(n: usize) -> Machine {
        Machine::builder(n).build()
    }

    /// Number of processors.
    #[must_use]
    pub fn n(&self) -> usize {
        self.inner.n
    }

    /// The machine's instruction-set capability.
    #[must_use]
    pub fn instruction_set(&self) -> InstructionSet {
        self.inner.isa
    }

    /// Claims the processor with index `id`.
    ///
    /// Each processor may be claimed once for the lifetime of the machine:
    /// a `Processor` owns per-processor private state (the reservation and
    /// counters), mirroring the paper's "private variable of process p".
    ///
    /// # Panics
    ///
    /// Panics if `id >= n` or if processor `id` was already claimed.
    #[must_use]
    pub fn processor(&self, id: usize) -> Processor {
        assert!(
            id < self.inner.n,
            "processor id {id} out of range (n = {})",
            self.inner.n
        );
        let was = self.inner.claimed[id].swap(true, Ordering::SeqCst);
        assert!(!was, "processor {id} claimed twice");
        Processor {
            id: ProcId::new(id),
            trace: RefCell::new(TraceRing::new(self.inner.trace_depth)),
            inner: Arc::clone(&self.inner),
            reservation: Cell::new(None),
            rsc_counter: Cell::new(0),
            rng: RefCell::new(SplitMix64::new(
                self.inner.seed ^ (id as u64).wrapping_mul(0x9e3779b97f4a7c15),
            )),
            stats: Cell::new(ProcStats::default()),
        }
    }

    /// Claims all `n` processors at once.
    ///
    /// # Panics
    ///
    /// Panics if any processor was already claimed.
    #[must_use]
    pub fn processors(&self) -> Vec<Processor> {
        (0..self.inner.n).map(|id| self.processor(id)).collect()
    }
}

#[derive(Clone, Copy, Debug)]
struct Reservation {
    addr: usize,
    observed: u64,
    /// An intervening access by the owning processor touched memory while
    /// this reservation was armed (only tracked under
    /// [`AccessBetween::Panic`]).
    dirtied: bool,
}

/// A handle to one simulated processor; bind one per thread.
///
/// `Processor` is `Send` but **not** `Sync`: the paper's model gives each
/// process private state (here, the `LLBit`-style reservation, the RNG that
/// drives spurious failures, and instruction counters), and the type system
/// enforces that no two threads share it.
///
/// # Instruction-set discipline
///
/// [`Processor::cas`] panics on an [`InstructionSet::RllRscOnly`] machine and
/// [`Processor::rll`]/[`Processor::rsc`] panic on an
/// [`InstructionSet::CasOnly`] machine. Algorithms built on this crate are
/// thereby *checked*, not merely claimed, to use only the instructions the
/// target machine provides.
// Aligned to a full (prefetch-paired) cache line: a `Processor` carries the
// per-proc stats and reservation that the owning thread mutates on every
// simulated instruction, so two processors boxed side by side (e.g. in the
// `Vec` from [`Machine::processors`]) must not share a line.
#[repr(align(128))]
pub struct Processor {
    id: ProcId,
    trace: RefCell<TraceRing>,
    inner: Arc<MachineInner>,
    reservation: Cell<Option<Reservation>>,
    /// Total RSC attempts, used to index the spurious-failure schedule.
    rsc_counter: Cell<u64>,
    rng: RefCell<SplitMix64>,
    stats: Cell<ProcStats>,
}

impl fmt::Debug for Processor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Processor")
            .field("id", &self.id)
            .field("reserved", &self.reservation.get().is_some())
            .finish()
    }
}

impl Processor {
    /// This processor's identifier.
    #[must_use]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Number of processors on the machine this processor belongs to.
    #[must_use]
    pub fn n(&self) -> usize {
        self.inner.n
    }

    /// The instruction-set capability of the machine this processor
    /// belongs to (so per-thread accessors can gate operations without a
    /// handle on the [`Machine`]).
    #[must_use]
    pub fn instruction_set(&self) -> InstructionSet {
        self.inner.isa
    }

    /// Snapshot of this processor's instruction counters.
    #[must_use]
    pub fn stats(&self) -> ProcStats {
        self.stats.get()
    }

    /// Resets this processor's instruction counters to zero.
    pub fn reset_stats(&self) {
        self.stats.set(ProcStats::default());
    }

    /// The last traced instructions (empty unless the machine was built
    /// with [`MachineBuilder::trace_depth`]).
    #[must_use]
    pub fn trace(&self) -> Vec<TraceEvent> {
        self.trace.borrow().snapshot()
    }

    fn record(&self, addr: usize, kind: TraceKind) {
        if self.inner.trace_depth > 0 {
            self.trace.borrow_mut().push(addr, kind);
        }
    }

    fn bump(&self, f: impl FnOnce(&mut ProcStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    /// Invalidate (or mark) the reservation because of an intervening
    /// access, honouring the machine's [`AccessBetween`] policy.
    fn touch_memory(&self) {
        let Some(mut res) = self.reservation.get() else {
            return;
        };
        match self.inner.access_between {
            AccessBetween::Allow => {}
            AccessBetween::Invalidate => {
                self.reservation.set(None);
                self.bump(|s| s.reservations_invalidated += 1);
            }
            AccessBetween::Panic => {
                res.dirtied = true;
                self.reservation.set(Some(res));
            }
        }
    }

    /// Declares that this processor cannot make progress until some other
    /// processor writes `w`, and yields the time slice.
    ///
    /// This performs **no** shared access: no memory is touched, no
    /// reservation is invalidated, nothing is counted or traced — the
    /// processor merely hands control away. Spin loops that wait for a
    /// *specific* word to change (the FIFO hand-off of
    /// `nbsp_core::KwWord`, the claim-slot release of
    /// `nbsp_core::FebWord`) call this between re-reads. On a live
    /// machine it degrades to [`std::thread::yield_now`]; under a
    /// cooperative model checker the [`crate::sched::AccessKind::Wait`]
    /// yield parks the processor until a mutating access hits `w`, so a
    /// blocking construction produces finitely many schedule points per
    /// wake instead of an unbounded spin.
    pub fn await_change(&self, w: &SimWord) {
        let _ = crate::sched::yield_point(w.addr(), crate::sched::AccessKind::Wait);
        std::thread::yield_now();
    }

    /// Reads a word (an ordinary load).
    ///
    /// Under the default [`AccessBetween::Invalidate`] policy this drops any
    /// outstanding reservation, as on hardware where any memory traffic can
    /// clear the `LLBit`.
    #[must_use]
    pub fn read(&self, w: &SimWord) -> u64 {
        let _ = crate::sched::yield_point(w.addr(), crate::sched::AccessKind::Read);
        self.touch_memory();
        self.bump(|s| s.reads += 1);
        let value = w.load();
        self.record(w.addr(), TraceKind::Read { value });
        value
    }

    /// Writes a word (an ordinary store).
    pub fn write(&self, w: &SimWord, value: u64) {
        let _ = crate::sched::yield_point(w.addr(), crate::sched::AccessKind::Write);
        self.touch_memory();
        self.bump(|s| s.writes += 1);
        w.store(value);
        self.record(w.addr(), TraceKind::Write { value });
    }

    /// Hardware compare-and-swap.
    ///
    /// # Panics
    ///
    /// Panics on a machine without CAS ([`InstructionSet::RllRscOnly`],
    /// [`InstructionSet::SwapFaaOnly`] or [`InstructionSet::FebOnly`]).
    #[must_use]
    pub fn cas(&self, w: &SimWord, old: u64, new: u64) -> bool {
        assert!(
            self.inner.isa.has_cas(),
            "this machine ({:?}) does not provide CAS",
            self.inner.isa
        );
        let _ = crate::sched::yield_point(w.addr(), crate::sched::AccessKind::Cas);
        self.touch_memory();
        let ok = w.compare_exchange(old, new);
        self.bump(|s| {
            s.cas_attempts += 1;
            if ok {
                s.cas_success += 1;
            }
        });
        self.record(w.addr(), TraceKind::Cas { old, new, ok });
        ok
    }

    /// Unconditional atomic exchange: installs `value` and returns the old
    /// word.
    ///
    /// # Panics
    ///
    /// Panics on a machine without swap/fetch-and-add.
    #[must_use]
    pub fn swap(&self, w: &SimWord, value: u64) -> u64 {
        assert!(
            self.inner.isa.has_swap_faa(),
            "this machine ({:?}) does not provide swap",
            self.inner.isa
        );
        let _ = crate::sched::yield_point(w.addr(), crate::sched::AccessKind::Swap);
        self.touch_memory();
        self.bump(|s| s.swaps += 1);
        let old = w.swap(value);
        self.record(w.addr(), TraceKind::Swap { new: value, old });
        old
    }

    /// Fetch-and-add: adds `delta` (wrapping) and returns the old word.
    ///
    /// # Panics
    ///
    /// Panics on a machine without swap/fetch-and-add.
    #[must_use]
    pub fn fetch_add(&self, w: &SimWord, delta: u64) -> u64 {
        assert!(
            self.inner.isa.has_swap_faa(),
            "this machine ({:?}) does not provide fetch-and-add",
            self.inner.isa
        );
        let _ = crate::sched::yield_point(w.addr(), crate::sched::AccessKind::FetchAdd);
        self.touch_memory();
        self.bump(|s| s.fetch_adds += 1);
        let old = w.fetch_add(delta);
        self.record(w.addr(), TraceKind::FetchAdd { delta, old });
        old
    }

    /// NB-FEB test-flag-and-set: iff the word's full/empty flag
    /// ([`crate::FEB_FLAG`]) is clear, install `value` with the flag set;
    /// either way, return the old word (flag included).
    ///
    /// # Panics
    ///
    /// Panics on a machine without the NB-FEB operations, or if `value`
    /// itself carries the flag bit.
    #[must_use]
    pub fn feb_tfas(&self, w: &SimWord, value: u64) -> u64 {
        assert!(
            self.inner.isa.has_feb(),
            "this machine ({:?}) does not provide NB-FEB operations",
            self.inner.isa
        );
        assert!(value & crate::FEB_FLAG == 0, "TFAS value overlaps the flag bit");
        let _ = crate::sched::yield_point(w.addr(), crate::sched::AccessKind::Feb);
        self.touch_memory();
        self.bump(|s| s.febs += 1);
        let old = w.tfas(value);
        self.record(
            w.addr(),
            TraceKind::Feb {
                op: FebOp::Tfas,
                value,
                old,
            },
        );
        old
    }

    /// NB-FEB store-and-clear: unconditionally install `value` with the
    /// full/empty flag cleared, returning the old word (flag included).
    ///
    /// # Panics
    ///
    /// Panics on a machine without the NB-FEB operations, or if `value`
    /// itself carries the flag bit.
    #[must_use]
    pub fn feb_sac(&self, w: &SimWord, value: u64) -> u64 {
        assert!(
            self.inner.isa.has_feb(),
            "this machine ({:?}) does not provide NB-FEB operations",
            self.inner.isa
        );
        assert!(value & crate::FEB_FLAG == 0, "SAC value overlaps the flag bit");
        let _ = crate::sched::yield_point(w.addr(), crate::sched::AccessKind::Feb);
        self.touch_memory();
        self.bump(|s| s.febs += 1);
        let old = w.sac(value);
        self.record(
            w.addr(),
            TraceKind::Feb {
                op: FebOp::Sac,
                value,
                old,
            },
        );
        old
    }

    /// NB-FEB load: reads the word, flag included. Read-only (commutes
    /// with other loads), so it yields as an [`AccessKind::Read`].
    ///
    /// # Panics
    ///
    /// Panics on a machine without the NB-FEB operations.
    #[must_use]
    pub fn feb_load(&self, w: &SimWord) -> u64 {
        assert!(
            self.inner.isa.has_feb(),
            "this machine ({:?}) does not provide NB-FEB operations",
            self.inner.isa
        );
        let _ = crate::sched::yield_point(w.addr(), crate::sched::AccessKind::Read);
        self.touch_memory();
        self.bump(|s| s.febs += 1);
        let old = w.load();
        self.record(
            w.addr(),
            TraceKind::Feb {
                op: FebOp::Load,
                value: 0,
                old,
            },
        );
        old
    }

    /// Restricted load-linked: reads `w` and sets this processor's single
    /// reservation, discarding any previous one.
    ///
    /// # Panics
    ///
    /// Panics on a machine without RLL/RSC ([`InstructionSet::CasOnly`]).
    #[must_use]
    pub fn rll(&self, w: &SimWord) -> u64 {
        assert!(
            self.inner.isa.has_rll_rsc(),
            "this machine ({:?}) does not provide RLL/RSC",
            self.inner.isa
        );
        let _ = crate::sched::yield_point(w.addr(), crate::sched::AccessKind::Rll);
        let observed = w.load();
        self.reservation.set(Some(Reservation {
            addr: w.addr(),
            observed,
            dirtied: false,
        }));
        self.bump(|s| s.rll += 1);
        self.record(w.addr(), TraceKind::Rll { value: observed });
        observed
    }

    /// Restricted store-conditional: stores `new` to `w` iff the reservation
    /// set by the previous [`Processor::rll`] on `w` is still intact and the
    /// spurious-failure adversary permits it. Consumes the reservation either
    /// way.
    ///
    /// Returns `true` on success.
    ///
    /// # Panics
    ///
    /// Panics on a machine without RLL/RSC, or if called without a prior
    /// `rll` on the *same* word (whose reservation has not been spent) —
    /// hardware leaves that case undefined; the simulator makes it a bug.
    #[must_use]
    pub fn rsc(&self, w: &SimWord, new: u64) -> bool {
        assert!(
            self.inner.isa.has_rll_rsc(),
            "this machine ({:?}) does not provide RLL/RSC",
            self.inner.isa
        );
        let decision = crate::sched::yield_point(w.addr(), crate::sched::AccessKind::Rsc);
        let attempt = self.rsc_counter.get() + 1;
        self.rsc_counter.set(attempt);

        let res = match self.reservation.take() {
            Some(r) => r,
            None => {
                // The reservation was invalidated by an intervening access
                // (or never set). On hardware the SC simply fails; calling
                // RSC with *no previous RLL at all* is a programming error,
                // but we cannot distinguish the two here, so we fail.
                self.bump(|s| {
                    s.rsc_attempts += 1;
                    s.rsc_conflict += 1;
                });
                self.record(
                    w.addr(),
                    TraceKind::Rsc {
                        new,
                        outcome: RscOutcome::Conflict,
                    },
                );
                return false;
            }
        };
        assert_eq!(
            res.addr,
            w.addr(),
            "RSC on a different word than the preceding RLL (processor {})",
            self.id
        );
        assert!(
            !res.dirtied,
            "memsim strict mode: processor {} accessed memory between RLL \
             and RSC (the paper's restriction #1)",
            self.id
        );

        let random = self.rng.borrow_mut().next_u64();
        if decision == crate::sched::Decision::SpuriousFail
            || self.inner.spurious.should_fail(attempt, random)
        {
            nbsp_telemetry::record(nbsp_telemetry::Event::RscSpurious);
            self.bump(|s| {
                s.rsc_attempts += 1;
                s.rsc_spurious += 1;
            });
            self.record(
                w.addr(),
                TraceKind::Rsc {
                    new,
                    outcome: RscOutcome::Spurious,
                },
            );
            return false;
        }

        let ok = w.compare_exchange(res.observed, new);
        self.bump(|s| {
            s.rsc_attempts += 1;
            if ok {
                s.rsc_success += 1;
            } else {
                s.rsc_conflict += 1;
            }
        });
        self.record(
            w.addr(),
            TraceKind::Rsc {
                new,
                outcome: if ok {
                    RscOutcome::Success
                } else {
                    RscOutcome::Conflict
                },
            },
        );
        ok
    }

    /// Whether this processor currently holds a reservation
    /// (for tests and assertions; hardware does not expose the `LLBit`).
    #[must_use]
    pub fn has_reservation(&self) -> bool {
        self.reservation.get().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rll_rsc_increments() {
        let m = Machine::new(1);
        let p = m.processor(0);
        let w = SimWord::new(10);
        let v = p.rll(&w);
        assert_eq!(v, 10);
        assert!(p.rsc(&w, v + 1));
        assert_eq!(w.peek(), 11);
    }

    #[test]
    fn rsc_without_reservation_fails() {
        let m = Machine::new(1);
        let p = m.processor(0);
        let w = SimWord::new(0);
        assert!(!p.rsc(&w, 1));
        assert_eq!(w.peek(), 0);
        assert_eq!(p.stats().rsc_conflict, 1);
    }

    #[test]
    fn second_rll_discards_first_reservation() {
        // Single LLBit per processor: an RLL on Y after an RLL on X leaves
        // only the Y reservation, so an RSC on X must panic (wrong word).
        let m = Machine::builder(1)
            .access_between(AccessBetween::Allow)
            .build();
        let p = m.processor(0);
        let x = SimWord::new(1);
        let y = SimWord::new(2);
        let _ = p.rll(&x);
        let vy = p.rll(&y);
        // The reservation now names y; RSC on y works…
        assert!(p.rsc(&y, vy + 1));
        // …and the x reservation is gone.
        assert!(!p.has_reservation());
    }

    #[test]
    #[should_panic(expected = "different word")]
    fn rsc_on_wrong_word_panics() {
        let m = Machine::builder(1)
            .access_between(AccessBetween::Allow)
            .build();
        let p = m.processor(0);
        let x = SimWord::new(1);
        let y = SimWord::new(2);
        let _ = p.rll(&y);
        let _ = p.rll(&x);
        let _ = p.rsc(&y, 9); // reservation is on x
    }

    #[test]
    fn intervening_read_invalidates_reservation() {
        let m = Machine::new(1);
        let p = m.processor(0);
        let w = SimWord::new(0);
        let z = SimWord::new(7);
        let v = p.rll(&w);
        let _ = p.read(&z); // restriction #1 violated -> reservation dropped
        assert!(!p.rsc(&w, v + 1));
        assert_eq!(p.stats().reservations_invalidated, 1);
    }

    #[test]
    fn intervening_access_allowed_when_policy_allows() {
        let m = Machine::builder(1)
            .access_between(AccessBetween::Allow)
            .build();
        let p = m.processor(0);
        let w = SimWord::new(0);
        let z = SimWord::new(7);
        let v = p.rll(&w);
        let _ = p.read(&z);
        assert!(p.rsc(&w, v + 1));
    }

    #[test]
    #[should_panic(expected = "restriction #1")]
    fn strict_mode_panics_on_rsc_after_intervening_access() {
        let m = Machine::builder(1)
            .access_between(AccessBetween::Panic)
            .build();
        let p = m.processor(0);
        let w = SimWord::new(0);
        let z = SimWord::new(7);
        let v = p.rll(&w);
        let _ = p.read(&z);
        let _ = p.rsc(&w, v + 1); // the violation is the RLL->RSC pair
    }

    #[test]
    fn strict_mode_allows_abandoning_a_reservation() {
        // Abandoning a reservation (no RSC) and touching memory is not a
        // violation of restriction #1; a fresh pair afterwards is fine.
        let m = Machine::builder(1)
            .access_between(AccessBetween::Panic)
            .build();
        let p = m.processor(0);
        let w = SimWord::new(0);
        let z = SimWord::new(7);
        let _ = p.rll(&w); // abandoned
        let _ = p.read(&z);
        p.write(&z, 8);
        let v = p.rll(&w); // fresh pair
        assert!(p.rsc(&w, v + 1));
        assert_eq!(w.peek(), 1);
    }

    #[test]
    fn conflicting_write_fails_rsc() {
        let m = Machine::new(2);
        let p0 = m.processor(0);
        let p1 = m.processor(1);
        let w = SimWord::new(0);
        let v = p0.rll(&w);
        p1.write(&w, 99);
        assert!(!p0.rsc(&w, v + 1));
        assert_eq!(w.peek(), 99);
        assert_eq!(p0.stats().rsc_conflict, 1);
    }

    #[test]
    #[should_panic(expected = "does not provide CAS")]
    fn cas_panics_on_llsc_machine() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::RllRscOnly)
            .build();
        let p = m.processor(0);
        let w = SimWord::new(0);
        let _ = p.cas(&w, 0, 1);
    }

    #[test]
    #[should_panic(expected = "does not provide RLL/RSC")]
    fn rll_panics_on_cas_machine() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::CasOnly)
            .build();
        let p = m.processor(0);
        let w = SimWord::new(0);
        let _ = p.rll(&w);
    }

    #[test]
    fn swap_faa_round_trip_and_counters() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::SwapFaaOnly)
            .build();
        let p = m.processor(0);
        let w = SimWord::new(10);
        assert_eq!(p.swap(&w, 20), 10);
        assert_eq!(p.fetch_add(&w, 5), 20);
        assert_eq!(p.read(&w), 25);
        let s = p.stats();
        assert_eq!((s.swaps, s.fetch_adds), (1, 1));
    }

    #[test]
    fn feb_ops_round_trip_and_counters() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::FebOnly)
            .build();
        let p = m.processor(0);
        let w = SimWord::new(3);
        assert_eq!(p.feb_tfas(&w, 7), 3, "flag clear: install");
        assert_eq!(p.feb_tfas(&w, 8), 7 | crate::FEB_FLAG, "flag set: refuse");
        assert_eq!(p.feb_load(&w), 7 | crate::FEB_FLAG);
        assert_eq!(p.feb_sac(&w, 1), 7 | crate::FEB_FLAG);
        assert_eq!(p.feb_load(&w), 1);
        assert_eq!(p.stats().febs, 5);
    }

    #[test]
    #[should_panic(expected = "does not provide swap")]
    fn swap_panics_on_cas_machine() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::CasOnly)
            .build();
        let p = m.processor(0);
        let _ = p.swap(&SimWord::new(0), 1);
    }

    #[test]
    #[should_panic(expected = "does not provide NB-FEB")]
    fn tfas_panics_on_swap_machine() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::SwapFaaOnly)
            .build();
        let p = m.processor(0);
        let _ = p.feb_tfas(&SimWord::new(0), 1);
    }

    #[test]
    #[should_panic(expected = "does not provide CAS")]
    fn cas_panics_on_feb_machine() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::FebOnly)
            .build();
        let p = m.processor(0);
        let _ = p.cas(&SimWord::new(0), 0, 1);
    }

    #[test]
    fn swap_invalidates_reservation() {
        let m = Machine::new(1);
        let p = m.processor(0);
        let w = SimWord::new(0);
        let z = SimWord::new(0);
        let v = p.rll(&w);
        let _ = p.swap(&z, 1); // intervening access drops the LLBit
        assert!(!p.rsc(&w, v + 1));
        assert_eq!(p.stats().reservations_invalidated, 1);
    }

    #[test]
    fn instruction_set_capability_mapping() {
        use crate::Capability;
        assert_eq!(
            InstructionSet::SwapFaaOnly.capability(),
            Capability::SWAP | Capability::FETCH_ADD
        );
        assert_eq!(InstructionSet::FebOnly.capability(), Capability::FEB);
        assert!(InstructionSet::Both
            .capability()
            .contains(Capability::CAS | Capability::RLL_RSC | Capability::FEB));
        assert!(!InstructionSet::CasOnly.capability().contains(Capability::SWAP));
        assert_eq!(InstructionSet::RllRscOnly.capability().to_string(), "rll_rsc");
        assert_eq!(Capability::NONE.to_string(), "none");
        assert_eq!(
            (Capability::SWAP | Capability::FETCH_ADD).names(),
            vec!["swap", "fetch_add"]
        );
    }

    #[test]
    fn processor_exposes_instruction_set() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::SwapFaaOnly)
            .build();
        assert_eq!(m.processor(0).instruction_set(), InstructionSet::SwapFaaOnly);
    }

    #[test]
    #[should_panic(expected = "claimed twice")]
    fn processor_cannot_be_claimed_twice() {
        let m = Machine::new(2);
        let _a = m.processor(1);
        let _b = m.processor(1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn processor_id_out_of_range() {
        let m = Machine::new(2);
        let _ = m.processor(2);
    }

    #[test]
    fn processors_claims_all() {
        let m = Machine::new(3);
        let ps = m.processors();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[2].id().index(), 2);
    }

    #[test]
    fn spurious_budget_schedule_is_deterministic() {
        let m = Machine::builder(1)
            .spurious(SpuriousMode::Budget { per_proc: 2 })
            .build();
        let p = m.processor(0);
        let w = SimWord::new(0);
        for expected in [false, false, true] {
            let v = p.rll(&w);
            assert_eq!(p.rsc(&w, v + 1), expected);
        }
        let s = p.stats();
        assert_eq!(s.rsc_spurious, 2);
        assert_eq!(s.rsc_success, 1);
    }

    #[test]
    fn probabilistic_spurious_is_reproducible_across_machines() {
        let run = || {
            let m = Machine::builder(1)
                .spurious(SpuriousMode::Probability { p: 0.5 })
                .seed(42)
                .build();
            let p = m.processor(0);
            let w = SimWord::new(0);
            (0..64)
                .map(|_| {
                    let v = p.rll(&w);
                    p.rsc(&w, v)
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_track_reads_and_writes() {
        let m = Machine::new(1);
        let p = m.processor(0);
        let w = SimWord::new(0);
        let _ = p.read(&w);
        p.write(&w, 3);
        let _ = p.cas(&w, 3, 4);
        let s = p.stats();
        assert_eq!((s.reads, s.writes, s.cas_attempts, s.cas_success), (1, 1, 1, 1));
        p.reset_stats();
        assert_eq!(p.stats(), ProcStats::default());
    }

    #[test]
    fn concurrent_rll_rsc_counter_is_exact() {
        let m = Machine::new(4);
        let w = SimWord::new(0);
        std::thread::scope(|s| {
            for id in 0..4 {
                let p = m.processor(id);
                let w = &w;
                s.spawn(move || {
                    for _ in 0..5_000 {
                        loop {
                            let v = p.rll(w);
                            if p.rsc(w, v + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(w.peek(), 20_000);
    }

    #[test]
    fn tracing_records_instruction_stream() {
        let m = Machine::builder(1).trace_depth(8).build();
        let p = m.processor(0);
        let w = SimWord::new(1);
        let _ = p.read(&w);
        p.write(&w, 2);
        let _ = p.cas(&w, 2, 3);
        let v = p.rll(&w);
        let _ = p.rsc(&w, v + 1);
        let trace = p.trace();
        assert_eq!(trace.len(), 5);
        assert!(matches!(trace[0].kind, crate::TraceKind::Read { value: 1 }));
        assert!(matches!(trace[2].kind, crate::TraceKind::Cas { ok: true, .. }));
        assert!(matches!(
            trace[4].kind,
            crate::TraceKind::Rsc {
                outcome: crate::RscOutcome::Success,
                ..
            }
        ));
        // Sequence numbers are monotone and addresses match the word.
        assert!(trace.windows(2).all(|t| t[0].seq < t[1].seq));
        assert!(trace.iter().all(|t| t.addr == w.addr()));
    }

    #[test]
    fn tracing_disabled_by_default() {
        let m = Machine::new(1);
        let p = m.processor(0);
        let w = SimWord::new(0);
        let _ = p.read(&w);
        assert!(p.trace().is_empty());
    }

    #[test]
    fn trace_captures_spurious_outcome() {
        let m = Machine::builder(1)
            .trace_depth(4)
            .spurious(SpuriousMode::Budget { per_proc: 1 })
            .build();
        let p = m.processor(0);
        let w = SimWord::new(0);
        let v = p.rll(&w);
        let _ = p.rsc(&w, v + 1);
        let trace = p.trace();
        assert!(matches!(
            trace.last().unwrap().kind,
            crate::TraceKind::Rsc {
                outcome: crate::RscOutcome::Spurious,
                ..
            }
        ));
    }

    #[test]
    fn send_not_sync() {
        fn assert_send<T: Send>() {}
        assert_send::<Processor>();
        assert_send::<Machine>();
        fn assert_sync<T: Sync>() {}
        assert_sync::<Machine>();
        // Processor is intentionally !Sync (Cell fields); this is checked
        // by compile-fail in practice — here we just document the intent.
    }
}
