use std::ops::Add;

/// Snapshot of one processor's instruction counts.
///
/// Experiments E1 and E4 (see `EXPERIMENTS.md`) use these to report retries
/// per operation and the split between *spurious* RSC failures (injected by
/// the [`SpuriousMode`](crate::SpuriousMode) adversary) and *conflict*
/// failures (another processor really did write the word).
///
/// ```
/// use nbsp_memsim::{Machine, SimWord};
/// let m = Machine::builder(1).build();
/// let p = m.processor(0);
/// let w = SimWord::new(0);
/// let v = p.rll(&w);
/// assert!(p.rsc(&w, v + 1));
/// let s = p.stats();
/// assert_eq!(s.rll, 1);
/// assert_eq!(s.rsc_success, 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Plain word reads.
    pub reads: u64,
    /// Plain word writes.
    pub writes: u64,
    /// CAS attempts.
    pub cas_attempts: u64,
    /// CAS attempts that succeeded.
    pub cas_success: u64,
    /// RLL instructions executed.
    pub rll: u64,
    /// RSC instructions executed.
    pub rsc_attempts: u64,
    /// RSC instructions that succeeded.
    pub rsc_success: u64,
    /// RSC failures injected by the spurious-failure adversary.
    pub rsc_spurious: u64,
    /// RSC failures caused by a real intervening write.
    pub rsc_conflict: u64,
    /// Reservations invalidated by an intervening access from the *same*
    /// processor (the paper's restriction #1 being exercised).
    pub reservations_invalidated: u64,
    /// Unconditional atomic exchanges.
    pub swaps: u64,
    /// Fetch-and-add instructions.
    pub fetch_adds: u64,
    /// NB-FEB word operations (TFAS, SAC, and flag-loads combined).
    pub febs: u64,
}

impl ProcStats {
    /// Total RSC failures of both kinds.
    #[must_use]
    pub fn rsc_failures(&self) -> u64 {
        self.rsc_spurious + self.rsc_conflict
    }

    /// Total simulated memory instructions of any kind.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.reads
            + self.writes
            + self.cas_attempts
            + self.rll
            + self.rsc_attempts
            + self.swaps
            + self.fetch_adds
            + self.febs
    }
}

impl Add for ProcStats {
    type Output = ProcStats;

    fn add(self, rhs: ProcStats) -> ProcStats {
        ProcStats {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            cas_attempts: self.cas_attempts + rhs.cas_attempts,
            cas_success: self.cas_success + rhs.cas_success,
            rll: self.rll + rhs.rll,
            rsc_attempts: self.rsc_attempts + rhs.rsc_attempts,
            rsc_success: self.rsc_success + rhs.rsc_success,
            rsc_spurious: self.rsc_spurious + rhs.rsc_spurious,
            rsc_conflict: self.rsc_conflict + rhs.rsc_conflict,
            reservations_invalidated: self.reservations_invalidated
                + rhs.reservations_invalidated,
            swaps: self.swaps + rhs.swaps,
            fetch_adds: self.fetch_adds + rhs.fetch_adds,
            febs: self.febs + rhs.febs,
        }
    }
}

impl std::iter::Sum for ProcStats {
    fn sum<I: Iterator<Item = ProcStats>>(iter: I) -> ProcStats {
        iter.fold(ProcStats::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(k: u64) -> ProcStats {
        ProcStats {
            reads: k,
            writes: 2 * k,
            cas_attempts: 3 * k,
            cas_success: k,
            rll: 4 * k,
            rsc_attempts: 4 * k,
            rsc_success: 2 * k,
            rsc_spurious: k,
            rsc_conflict: k,
            reservations_invalidated: k,
            swaps: k,
            fetch_adds: 2 * k,
            febs: 3 * k,
        }
    }

    #[test]
    fn add_is_fieldwise() {
        let s = sample(1) + sample(2);
        assert_eq!(s, sample(3));
    }

    #[test]
    fn sum_over_iterator() {
        let total: ProcStats = (1..=4).map(sample).sum();
        assert_eq!(total, sample(10));
    }

    #[test]
    fn derived_totals() {
        let s = sample(2);
        assert_eq!(s.rsc_failures(), 4);
        assert_eq!(s.total_instructions(), 2 + 4 + 6 + 8 + 8 + 2 + 4 + 6);
    }
}
