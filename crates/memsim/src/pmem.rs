//! Persistent-memory model: words with an explicit volatile/persisted split.
//!
//! The durable LL/SC construction (arXiv:2302.00135) is specified for
//! machines with byte-addressable persistent memory, where a store becomes
//! durable only once it is explicitly *flushed* (CLWB/SFENCE on x86). A
//! crash discards every store that was not yet flushed; recovery starts
//! from the persisted image. This module models that contract exactly:
//!
//! * a [`PWord`] carries **two** cells — the volatile cache line that
//!   loads/stores/CAS operate on, and the persisted image;
//! * [`PWord::flush`] copies volatile → persisted (the CLWB+SFENCE pair);
//! * [`PWord::crash_reset`] copies persisted → volatile, simulating the
//!   power failure: unflushed stores vanish.
//!
//! Every volatile access goes through [`sched::yield_point`], so the same
//! schedule-point machinery that drives DPOR model checking can also drive
//! crash injection: a [`sched::CrashPlan`] kills the run at an arbitrary
//! schedule point, after which `crash_reset` + the algorithm's recovery
//! procedure must restore a durably linearizable state.
//!
//! `crash_reset` is a *quiescent* operation: it must only be called after
//! every thread of the crashed execution has stopped (joined or unwound).
//! It intentionally does not synchronize with concurrent accessors — a real
//! power failure does not either.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::sched::{self, AccessKind};

/// A 64-bit word of simulated persistent memory.
///
/// Accesses operate on the volatile cell; [`PWord::flush`] persists it and
/// [`PWord::crash_reset`] rolls the volatile cell back to the persisted
/// image. All volatile accesses are sequentially consistent (matching
/// [`SimWord`](crate::SimWord)) and yield to the per-thread schedule hook
/// before executing, so crash plans and model checkers see them.
///
/// ```
/// use nbsp_memsim::PWord;
/// let w = PWord::new(1);
/// w.store(2);          // volatile only
/// w.crash_reset();     // crash before flush: the store is lost
/// assert_eq!(w.load(), 1);
/// w.store(3);
/// w.flush();           // now durable
/// w.crash_reset();
/// assert_eq!(w.load(), 3);
/// ```
pub struct PWord {
    volatile: AtomicU64,
    persisted: AtomicU64,
}

impl PWord {
    /// Creates a word whose volatile and persisted cells both hold `value`
    /// (i.e. the initial state is already durable, as after formatting the
    /// persistent heap).
    #[must_use]
    pub const fn new(value: u64) -> Self {
        PWord {
            volatile: AtomicU64::new(value),
            persisted: AtomicU64::new(value),
        }
    }

    /// The address used for schedule-point identity.
    fn addr(&self) -> usize {
        self as *const PWord as usize
    }

    /// Loads the volatile cell (instrumented).
    #[must_use]
    pub fn load(&self) -> u64 {
        let _ = sched::yield_point(self.addr(), AccessKind::Read);
        self.volatile.load(Ordering::SeqCst)
    }

    /// Stores to the volatile cell (instrumented). Not durable until
    /// [`PWord::flush`].
    pub fn store(&self, value: u64) {
        let _ = sched::yield_point(self.addr(), AccessKind::Write);
        self.volatile.store(value, Ordering::SeqCst);
    }

    /// Compare-and-swap on the volatile cell (instrumented). Not durable
    /// until [`PWord::flush`].
    pub fn cas(&self, old: u64, new: u64) -> bool {
        let _ = sched::yield_point(self.addr(), AccessKind::Cas);
        self.volatile
            .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Flushes the volatile cell to the persisted image (CLWB + SFENCE).
    ///
    /// Instrumented as a read: a flush observes the volatile cell but never
    /// changes it, so two flushes (or a flush and a load) commute.
    pub fn flush(&self) {
        let _ = sched::yield_point(self.addr(), AccessKind::Read);
        self.persisted
            .store(self.volatile.load(Ordering::SeqCst), Ordering::SeqCst);
    }

    /// Flush for words whose value is **monotonically increasing** in the
    /// `u64` order (e.g. a sequence number in the high bits): the persisted
    /// image only ever moves forward.
    ///
    /// On real hardware, flushes of one cache line are serialized by
    /// coherence, so a stale flush can never roll the persisted line back
    /// behind a newer one. This model's two-cell split loses that — two
    /// racing [`PWord::flush`]es could commit out of order. For a word
    /// flushed by many threads, `flush_max` restores the hardware
    /// guarantee, at the price of only being correct for monotone values.
    pub fn flush_max(&self) {
        let _ = sched::yield_point(self.addr(), AccessKind::Read);
        self.persisted
            .fetch_max(self.volatile.load(Ordering::SeqCst), Ordering::SeqCst);
    }

    /// Simulates a power failure: the volatile cell is rolled back to the
    /// persisted image. Quiescent-only — call after all threads of the
    /// crashed execution have stopped. Deliberately uninstrumented: the
    /// crash itself is not a step of any thread.
    pub fn crash_reset(&self) {
        self.volatile
            .store(self.persisted.load(Ordering::SeqCst), Ordering::SeqCst);
    }

    /// Reads the persisted image directly (uninstrumented), for assertions
    /// about what a crash at this instant would preserve.
    #[must_use]
    pub fn peek_persisted(&self) -> u64 {
        self.persisted.load(Ordering::SeqCst)
    }

    /// Reads the volatile cell without yielding, for sequential inspection
    /// in tests after all worker threads have joined.
    #[must_use]
    pub fn peek(&self) -> u64 {
        self.volatile.load(Ordering::SeqCst)
    }
}

impl Default for PWord {
    fn default() -> Self {
        PWord::new(0)
    }
}

impl fmt::Debug for PWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PWord(volatile={:#x}, persisted={:#x})",
            self.peek(),
            self.peek_persisted()
        )
    }
}

/// A volatile counterpart to [`PWord`] with the same surface, so the
/// dynamic-joining construction can be written once, generic over the word
/// type: `flush` and `crash_reset` are no-ops and the "persisted" image is
/// just the live value.
pub struct VWord(AtomicU64);

impl VWord {
    /// Creates a word holding `value`.
    #[must_use]
    pub const fn new(value: u64) -> Self {
        VWord(AtomicU64::new(value))
    }

    fn addr(&self) -> usize {
        self as *const VWord as usize
    }

    /// Loads the word (instrumented).
    #[must_use]
    pub fn load(&self) -> u64 {
        let _ = sched::yield_point(self.addr(), AccessKind::Read);
        self.0.load(Ordering::SeqCst)
    }

    /// Stores to the word (instrumented).
    pub fn store(&self, value: u64) {
        let _ = sched::yield_point(self.addr(), AccessKind::Write);
        self.0.store(value, Ordering::SeqCst);
    }

    /// Compare-and-swap (instrumented).
    pub fn cas(&self, old: u64, new: u64) -> bool {
        let _ = sched::yield_point(self.addr(), AccessKind::Cas);
        self.0
            .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// No-op: a volatile word has no separate persisted image.
    pub fn flush(&self) {}

    /// No-op (see [`PWord::flush_max`]).
    pub fn flush_max(&self) {}

    /// No-op: nothing is lost because nothing was cached.
    pub fn crash_reset(&self) {}

    /// The "persisted" image of a volatile word is its live value.
    #[must_use]
    pub fn peek_persisted(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    /// Reads without yielding, for sequential test inspection.
    #[must_use]
    pub fn peek(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

impl Default for VWord {
    fn default() -> Self {
        VWord::new(0)
    }
}

impl fmt::Debug for VWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VWord({:#x})", self.peek())
    }
}

/// The word interface the durable construction is generic over: the
/// intersection of [`PWord`] and [`VWord`].
pub trait MemWord: Default + Send + Sync + 'static {
    /// Creates a word holding `value`, already durable.
    fn new(value: u64) -> Self;
    /// Instrumented load.
    fn load(&self) -> u64;
    /// Instrumented store (volatile until [`MemWord::flush`]).
    fn store(&self, value: u64);
    /// Instrumented compare-and-swap (volatile until [`MemWord::flush`]).
    fn cas(&self, old: u64, new: u64) -> bool;
    /// Makes the current value durable.
    fn flush(&self);
    /// Makes the current value durable, never regressing the persisted
    /// image — correct only for monotone values (see [`PWord::flush_max`]).
    fn flush_max(&self);
    /// Quiescent crash: roll back to the durable image.
    fn crash_reset(&self);
    /// The durable image (uninstrumented, for assertions).
    fn peek_persisted(&self) -> u64;
}

impl MemWord for PWord {
    fn new(value: u64) -> Self {
        PWord::new(value)
    }
    fn load(&self) -> u64 {
        PWord::load(self)
    }
    fn store(&self, value: u64) {
        PWord::store(self, value);
    }
    fn cas(&self, old: u64, new: u64) -> bool {
        PWord::cas(self, old, new)
    }
    fn flush(&self) {
        PWord::flush(self);
    }
    fn flush_max(&self) {
        PWord::flush_max(self);
    }
    fn crash_reset(&self) {
        PWord::crash_reset(self);
    }
    fn peek_persisted(&self) -> u64 {
        PWord::peek_persisted(self)
    }
}

impl MemWord for VWord {
    fn new(value: u64) -> Self {
        VWord::new(value)
    }
    fn load(&self) -> u64 {
        VWord::load(self)
    }
    fn store(&self, value: u64) {
        VWord::store(self, value);
    }
    fn cas(&self, old: u64, new: u64) -> bool {
        VWord::cas(self, old, new)
    }
    fn flush(&self) {
        VWord::flush(self);
    }
    fn flush_max(&self) {
        VWord::flush_max(self);
    }
    fn crash_reset(&self) {
        VWord::crash_reset(self);
    }
    fn peek_persisted(&self) -> u64 {
        VWord::peek_persisted(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{install, Decision, SchedulePoint};
    use std::sync::Arc;

    #[test]
    fn store_without_flush_is_lost_on_crash() {
        let w = PWord::new(10);
        w.store(11);
        assert_eq!(w.peek(), 11);
        assert_eq!(w.peek_persisted(), 10);
        w.crash_reset();
        assert_eq!(w.load(), 10);
    }

    #[test]
    fn flush_makes_the_store_durable() {
        let w = PWord::new(0);
        w.store(5);
        w.flush();
        w.crash_reset();
        assert_eq!(w.load(), 5);
        assert_eq!(w.peek_persisted(), 5);
    }

    #[test]
    fn cas_is_volatile_until_flushed() {
        let w = PWord::new(1);
        assert!(w.cas(1, 2));
        assert!(!w.cas(1, 3));
        assert_eq!(w.peek_persisted(), 1);
        w.flush();
        assert_eq!(w.peek_persisted(), 2);
    }

    #[test]
    fn flush_max_never_regresses_the_persisted_image() {
        let w = PWord::new(0);
        w.store(9);
        w.flush_max();
        assert_eq!(w.peek_persisted(), 9);
        // A stale flush (volatile rolled forward is impossible for a
        // monotone word, but simulate the racing-writeback shape: the
        // volatile value is *behind* what a newer flush persisted).
        w.persisted.store(12, Ordering::SeqCst);
        w.flush_max();
        assert_eq!(w.peek_persisted(), 12, "must keep the newer image");
    }

    #[test]
    fn vword_crash_is_a_noop() {
        let w = VWord::new(1);
        w.store(2);
        w.crash_reset();
        assert_eq!(w.load(), 2);
        assert_eq!(w.peek_persisted(), 2);
    }

    #[test]
    fn accesses_reach_the_schedule_hook() {
        struct Counter(AtomicU64);
        impl SchedulePoint for Counter {
            fn yield_point(&self, _addr: usize, _kind: AccessKind) -> Decision {
                self.0.fetch_add(1, Ordering::Relaxed);
                Decision::Proceed
            }
        }
        let hook = Arc::new(Counter(AtomicU64::new(0)));
        let _g = install(hook.clone());
        let p = PWord::new(0);
        let _ = p.load();
        p.store(1);
        let _ = p.cas(1, 2);
        p.flush();
        p.crash_reset(); // uninstrumented
        let v = VWord::new(0);
        let _ = v.load();
        v.store(1);
        let _ = v.cas(1, 2);
        v.flush(); // no-op, uninstrumented
        assert_eq!(hook.0.load(Ordering::Relaxed), 4 + 3);
    }

    #[test]
    fn generic_word_roundtrip() {
        fn durable_increment<W: MemWord>() -> u64 {
            let w = W::new(0);
            let v = w.load();
            w.store(v + 1);
            w.flush();
            w.crash_reset();
            w.load()
        }
        assert_eq!(durable_increment::<PWord>(), 1);
        assert_eq!(durable_increment::<VWord>(), 1);
    }
}
