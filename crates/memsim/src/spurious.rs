/// Policy for injecting *spurious* RSC failures.
///
/// The paper (Section 1) lists, among the restrictions of hardware LL/SC,
/// that "RSC may occasionally fail when the normal semantics of LL/SC dictate
/// that it should succeed" — e.g. the MIPS R4000 clears its `LLBit` on any
/// cache invalidation. The paper's wait-freedom results are conditional on
/// *finitely many* spurious failures per operation, and its time bounds are
/// measured "after the last spurious failure". This type lets experiments
/// dial the adversary.
///
/// All modes are deterministic given the machine seed, so failing tests
/// reproduce exactly.
///
/// ```
/// use nbsp_memsim::{Machine, SimWord, SpuriousMode};
///
/// // An adversary that fails the first 3 RSCs of each processor, then relents:
/// // the paper's "finitely many spurious failures" assumption made concrete.
/// let m = Machine::builder(1)
///     .spurious(SpuriousMode::Budget { per_proc: 3 })
///     .build();
/// let p = m.processor(0);
/// let w = SimWord::new(0);
/// let mut attempts = 0;
/// loop {
///     let v = p.rll(&w);
///     attempts += 1;
///     if p.rsc(&w, v + 1) {
///         break;
///     }
/// }
/// assert_eq!(attempts, 4); // 3 spurious failures, then success
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
#[derive(Default)]
pub enum SpuriousMode {
    /// RSC never fails spuriously (idealised hardware).
    #[default]
    Never,
    /// Each RSC attempt fails spuriously with probability `p`
    /// (deterministically seeded per processor). Models background
    /// cache-invalidation traffic.
    Probability {
        /// Failure probability in `[0, 1)`.
        p: f64,
    },
    /// The first `per_proc` RSC attempts of every processor fail spuriously;
    /// all later attempts are honest. This is the strongest adversary under
    /// which the paper's operations must still terminate.
    Budget {
        /// Number of initial RSC attempts to fail, per processor.
        per_proc: u64,
    },
    /// Every `n`-th RSC attempt of a processor fails spuriously
    /// (attempts are counted from 1; `n = 0` behaves like [`SpuriousMode::Never`]).
    EveryNth {
        /// Period of injected failures.
        n: u64,
    },
}


impl SpuriousMode {
    /// Decides whether the `attempt`-th RSC (1-based, per processor) fails
    /// spuriously. `random` is a uniformly distributed `u64` drawn from the
    /// processor's seeded generator.
    pub(crate) fn should_fail(self, attempt: u64, random: u64) -> bool {
        match self {
            SpuriousMode::Never => false,
            SpuriousMode::Probability { p } => {
                if p <= 0.0 {
                    false
                } else if p >= 1.0 {
                    true
                } else {
                    // Map the u64 to [0,1): 53 bits of mantissa is plenty.
                    let unit = (random >> 11) as f64 / (1u64 << 53) as f64;
                    unit < p
                }
            }
            SpuriousMode::Budget { per_proc } => attempt <= per_proc,
            SpuriousMode::EveryNth { n } => n != 0 && attempt.is_multiple_of(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_never_fails() {
        for a in 1..100 {
            assert!(!SpuriousMode::Never.should_fail(a, a.wrapping_mul(0x9e37)));
        }
    }

    #[test]
    fn budget_fails_exactly_first_k() {
        let m = SpuriousMode::Budget { per_proc: 5 };
        for a in 1..=5 {
            assert!(m.should_fail(a, 0));
        }
        for a in 6..50 {
            assert!(!m.should_fail(a, 0));
        }
    }

    #[test]
    fn every_nth_periodic() {
        let m = SpuriousMode::EveryNth { n: 3 };
        let fails: Vec<bool> = (1..=9).map(|a| m.should_fail(a, 0)).collect();
        assert_eq!(
            fails,
            [false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn every_zeroth_is_never() {
        let m = SpuriousMode::EveryNth { n: 0 };
        assert!((1..100).all(|a| !m.should_fail(a, a)));
    }

    #[test]
    fn probability_extremes() {
        assert!(!SpuriousMode::Probability { p: 0.0 }.should_fail(1, u64::MAX));
        assert!(SpuriousMode::Probability { p: 1.0 }.should_fail(1, 0));
    }

    #[test]
    fn probability_is_roughly_calibrated() {
        // With a crude LCG as the random source, p = 0.25 should fail about a
        // quarter of attempts.
        let m = SpuriousMode::Probability { p: 0.25 };
        let mut x: u64 = 0x853c49e6748fea9b;
        let mut fails = 0;
        let trials = 100_000;
        for a in 0..trials {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if m.should_fail(a + 1, x) {
                fails += 1;
            }
        }
        let rate = fails as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn default_is_never() {
        assert_eq!(SpuriousMode::default(), SpuriousMode::Never);
    }
}
