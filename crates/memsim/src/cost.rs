//! A simple per-instruction cycle-cost model.
//!
//! The paper's complexity claims are stated in *steps*; real 1997 machines
//! priced those steps very differently (an R4000 `SC` costs far more than
//! a cached load, and interconnect traffic dominates). [`CostModel`]
//! assigns a weight to each simulated instruction so experiments can
//! report machine-flavoured "simulated cycles" instead of raw step counts,
//! and so the weights themselves can be varied to ask questions like
//! Michael & Scott's (the paper's [11]): *how does the CAS/LL-SC cost
//! ratio change which construction wins?*

use crate::ProcStats;

/// Cycle weights per simulated instruction.
///
/// ```
/// use nbsp_memsim::{CostModel, ProcStats};
///
/// let stats = ProcStats {
///     reads: 10,
///     rll: 5,
///     rsc_attempts: 5,
///     ..ProcStats::default()
/// };
/// let cycles = CostModel::default().cycles(&stats);
/// assert_eq!(cycles, 10 * 1 + 5 * 2 + 5 * 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of a plain load.
    pub read: u64,
    /// Cost of a plain store.
    pub write: u64,
    /// Cost of a CAS attempt (success or failure).
    pub cas: u64,
    /// Cost of an RLL.
    pub rll: u64,
    /// Cost of an RSC attempt (success or failure).
    pub rsc: u64,
    /// Cost of an unconditional atomic exchange.
    pub swap: u64,
    /// Cost of a fetch-and-add.
    pub fetch_add: u64,
    /// Cost of an NB-FEB word operation (TFAS, SAC, or flag-load).
    pub feb: u64,
}

impl Default for CostModel {
    /// A deliberately coarse 1990s-flavoured default: loads and stores one
    /// cycle, reservation instructions two to three (they interact with
    /// the cache-coherence machinery), CAS and the other read-modify-write
    /// bus transactions (swap, fetch-and-add, the NB-FEB ops) three.
    fn default() -> Self {
        CostModel {
            read: 1,
            write: 1,
            cas: 3,
            rll: 2,
            rsc: 3,
            swap: 3,
            fetch_add: 3,
            feb: 3,
        }
    }
}

impl CostModel {
    /// A model where every instruction costs one cycle (pure step counts —
    /// the paper's own measure).
    #[must_use]
    pub const fn uniform() -> Self {
        CostModel {
            read: 1,
            write: 1,
            cas: 1,
            rll: 1,
            rsc: 1,
            swap: 1,
            fetch_add: 1,
            feb: 1,
        }
    }

    /// Total simulated cycles for a stats snapshot.
    #[must_use]
    pub fn cycles(&self, stats: &ProcStats) -> u64 {
        stats.reads * self.read
            + stats.writes * self.write
            + stats.cas_attempts * self.cas
            + stats.rll * self.rll
            + stats.rsc_attempts * self.rsc
            + stats.swaps * self.swap
            + stats.fetch_adds * self.fetch_add
            + stats.febs * self.feb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ProcStats {
        ProcStats {
            reads: 2,
            writes: 3,
            cas_attempts: 5,
            rll: 7,
            rsc_attempts: 11,
            swaps: 13,
            fetch_adds: 17,
            febs: 19,
            ..ProcStats::default()
        }
    }

    #[test]
    fn uniform_model_counts_steps() {
        assert_eq!(
            CostModel::uniform().cycles(&stats()),
            stats().total_instructions()
        );
    }

    #[test]
    fn default_model_weights_instructions() {
        let c = CostModel::default().cycles(&stats());
        assert_eq!(c, 2 + 3 + 15 + 14 + 33 + 39 + 51 + 57);
    }

    #[test]
    fn custom_model() {
        let m = CostModel {
            read: 1,
            write: 2,
            cas: 10,
            rll: 1,
            rsc: 1,
            swap: 4,
            fetch_add: 5,
            feb: 6,
        };
        assert_eq!(m.cycles(&stats()), 2 + 6 + 50 + 7 + 11 + 52 + 85 + 114);
    }

    #[test]
    fn zero_stats_cost_nothing() {
        assert_eq!(CostModel::default().cycles(&ProcStats::default()), 0);
    }
}
