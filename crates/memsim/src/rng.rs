//! A small, dependency-free deterministic PRNG.
//!
//! The simulator (and the workspace's deterministic tests) need a stream of
//! uniformly distributed `u64`s that is reproducible from a seed on every
//! platform. [`SplitMix64`] is Steele, Lea & Flood's mixer (the same stream
//! `java.util.SplittableRandom` and the xoshiro seeding procedure use): one
//! 64-bit state word, an additive Weyl sequence, and a finalizing
//! avalanche. It passes BigCrush at this output width and — unlike a
//! registry crate — costs the offline build nothing.

/// A deterministic 64-bit PRNG (Steele–Lea–Flood SplitMix64).
///
/// ```
/// use nbsp_memsim::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`. Every seed (including 0)
    /// yields a full-period stream of 2^64 outputs.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next uniformly distributed `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// Uses the multiply-shift range reduction; the modulo bias is below
    /// 2^-32 for the small bounds tests use.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniformly distributed `usize` in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // First three outputs for seed 0 from the published SplitMix64
        // reference implementation.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(r.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_is_in_range() {
        let mut r = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_hits_every_residue() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.next_index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        let _ = SplitMix64::new(0).next_below(0);
    }
}
