//! Cache-line padding for per-process shared slots.
//!
//! Moir's constructions give each process its own announce/tag slot, and the
//! algorithms only ever have process *p* write slot *p* — but if two slots
//! share a cache line, the coherence protocol still serializes those writes
//! (false sharing). [`CachePadded`] aligns a value to 128 bytes so arrays of
//! per-process slots put each slot on its own line. 128 rather than 64
//! because modern x86 prefetches cache lines in adjacent pairs and recent
//! aarch64 parts have 128-byte lines, the same sizing rationale as
//! crossbeam's `CachePadded` — reimplemented here dependency-free so the
//! workspace builds offline.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Aligns `T` to 128 bytes so neighbouring values in an array cannot share
/// a cache line (or an adjacent-line prefetch pair).
///
/// ```
/// use nbsp_memsim::CachePadded;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let slots: Vec<CachePadded<AtomicU64>> =
///     (0..4).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
/// slots[1].store(9, Ordering::Release); // Deref passes through
/// assert_eq!(std::mem::align_of_val(&slots[0]), 128);
/// ```
#[derive(Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a 128-byte-aligned cell.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.value.fmt(f)
    }
}

impl<T: Clone> Clone for CachePadded<T> {
    fn clone(&self) -> Self {
        CachePadded::new(self.value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn alignment_and_size_are_full_lines() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<[u64; 32]>>(), 256);
    }

    #[test]
    fn array_elements_never_share_a_line() {
        let v: Vec<CachePadded<AtomicU64>> =
            (0..8).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
        for pair in v.windows(2) {
            let a = &*pair[0] as *const AtomicU64 as usize;
            let b = &*pair[1] as *const AtomicU64 as usize;
            assert!(b - a >= 128, "slots {a:#x} and {b:#x} share a line");
        }
    }

    #[test]
    fn deref_passes_through() {
        let c = CachePadded::new(AtomicU64::new(3));
        c.store(4, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 4);
        assert_eq!(c.into_inner().into_inner(), 4);
    }

    #[test]
    fn derives_work() {
        let a = CachePadded::new(5u64);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "5");
        let d: CachePadded<u64> = CachePadded::default();
        assert_eq!(*d, 0);
        let f: CachePadded<u64> = 7.into();
        assert_eq!(*f, 7);
    }
}
