use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// One 64-bit machine word of simulated shared memory.
///
/// A `SimWord` is just storage; *semantics* (reservations, spurious failures,
/// instruction-set capabilities, instrumentation) are applied by the
/// [`Processor`](crate::Processor) that accesses it. Words are identified by
/// their address, exactly as on a real machine.
///
/// All accesses are sequentially consistent: the paper's correctness
/// arguments assume a sequentially consistent memory model, and this crate
/// does not attempt to weaken that.
///
/// ```
/// use nbsp_memsim::{Machine, SimWord};
/// let m = Machine::builder(1).build();
/// let p = m.processor(0);
/// let w = SimWord::new(42);
/// assert_eq!(p.read(&w), 42);
/// ```
pub struct SimWord(AtomicU64);

impl SimWord {
    /// Creates a word holding `value`.
    #[must_use]
    pub const fn new(value: u64) -> Self {
        SimWord(AtomicU64::new(value))
    }

    /// The address used for reservation identity.
    pub(crate) fn addr(&self) -> usize {
        self as *const SimWord as usize
    }

    pub(crate) fn load(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    pub(crate) fn store(&self, value: u64) {
        self.0.store(value, Ordering::SeqCst);
    }

    pub(crate) fn compare_exchange(&self, old: u64, new: u64) -> bool {
        self.0
            .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    pub(crate) fn swap(&self, value: u64) -> u64 {
        self.0.swap(value, Ordering::SeqCst)
    }

    pub(crate) fn fetch_add(&self, delta: u64) -> u64 {
        self.0.fetch_add(delta, Ordering::SeqCst)
    }

    /// Test-flag-and-set: iff the full/empty flag ([`crate::FEB_FLAG`]) is
    /// clear, install `value` with the flag set; either way return the old
    /// word. A CAS loop on the host atomic is fine here: like
    /// [`SimWord::compare_exchange`], the *simulated* instruction is one
    /// atomic step — the loop is invisible below the simulation boundary.
    pub(crate) fn tfas(&self, value: u64) -> u64 {
        loop {
            let old = self.0.load(Ordering::SeqCst);
            if old & crate::FEB_FLAG != 0 {
                return old;
            }
            if self
                .0
                .compare_exchange(
                    old,
                    value | crate::FEB_FLAG,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                return old;
            }
        }
    }

    /// Store-and-clear: unconditionally install `value` with the
    /// full/empty flag cleared, returning the old word.
    pub(crate) fn sac(&self, value: u64) -> u64 {
        self.0.swap(value & !crate::FEB_FLAG, Ordering::SeqCst)
    }

    /// Reads the word without going through a [`Processor`](crate::Processor).
    ///
    /// This is intended for *sequential* inspection in tests and assertions
    /// (e.g. after all worker threads have joined); it bypasses
    /// instrumentation and reservation bookkeeping.
    #[must_use]
    pub fn peek(&self) -> u64 {
        self.load()
    }

    /// Writes the word without going through a [`Processor`](crate::Processor).
    ///
    /// Like [`SimWord::peek`], for sequential test setup only.
    pub fn poke(&self, value: u64) {
        self.store(value);
    }
}

impl Default for SimWord {
    fn default() -> Self {
        SimWord::new(0)
    }
}

impl fmt::Debug for SimWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimWord({:#x})", self.load())
    }
}

impl From<u64> for SimWord {
    fn from(value: u64) -> Self {
        SimWord::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_peek_poke() {
        let w = SimWord::new(7);
        assert_eq!(w.peek(), 7);
        w.poke(9);
        assert_eq!(w.peek(), 9);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(SimWord::default().peek(), 0);
    }

    #[test]
    fn distinct_words_have_distinct_addrs() {
        let a = SimWord::new(0);
        let b = SimWord::new(0);
        assert_ne!(a.addr(), b.addr());
    }

    #[test]
    fn compare_exchange_basics() {
        let w = SimWord::new(1);
        assert!(w.compare_exchange(1, 2));
        assert!(!w.compare_exchange(1, 3));
        assert_eq!(w.peek(), 2);
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", SimWord::new(255)), "SimWord(0xff)");
    }

    #[test]
    fn swap_and_fetch_add_return_old() {
        let w = SimWord::new(5);
        assert_eq!(w.swap(9), 5);
        assert_eq!(w.fetch_add(3), 9);
        assert_eq!(w.peek(), 12);
    }

    #[test]
    fn tfas_sets_once_until_cleared() {
        let w = SimWord::new(0);
        assert_eq!(w.tfas(7), 0, "flag clear: install");
        assert_eq!(w.peek(), 7 | crate::FEB_FLAG);
        assert_eq!(w.tfas(8), 7 | crate::FEB_FLAG, "flag set: refuse");
        assert_eq!(w.peek(), 7 | crate::FEB_FLAG);
        assert_eq!(w.sac(1), 7 | crate::FEB_FLAG);
        assert_eq!(w.peek(), 1, "sac clears the flag");
        assert_eq!(w.tfas(2), 1, "cleared word accepts again");
        assert_eq!(w.peek(), 2 | crate::FEB_FLAG);
    }
}
