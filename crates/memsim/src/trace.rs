//! Optional per-processor instruction tracing.
//!
//! Debugging a non-blocking algorithm usually means asking "what did this
//! processor *actually* execute around the failure?". With tracing enabled
//! (see [`MachineBuilder::trace_depth`](crate::MachineBuilder::trace_depth)),
//! each processor keeps a ring buffer of its last simulated instructions —
//! addresses, values, and RSC outcomes — retrievable with
//! [`Processor::trace`](crate::Processor::trace).
//!
//! Tracing is per-processor private state (no synchronization) and is off
//! by default.

use std::collections::VecDeque;
use std::fmt;

/// Why an RSC failed (or that it succeeded).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RscOutcome {
    /// The store landed.
    Success,
    /// Failed due to the injected spurious-failure adversary.
    Spurious,
    /// Failed because the word changed (or the reservation was
    /// invalidated by an intervening access).
    Conflict,
}

/// Which NB-FEB word operation a [`TraceKind::Feb`] entry records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FebOp {
    /// Test-flag-and-set: install iff the full/empty flag was clear.
    Tfas,
    /// Store-and-clear: unconditional store clearing the flag.
    Sac,
    /// Plain load of the word including the flag bit.
    Load,
}

/// One traced instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A plain load and the value observed.
    Read {
        /// Value loaded.
        value: u64,
    },
    /// A plain store.
    Write {
        /// Value stored.
        value: u64,
    },
    /// A CAS attempt.
    Cas {
        /// Expected value.
        old: u64,
        /// Replacement value.
        new: u64,
        /// Whether it succeeded.
        ok: bool,
    },
    /// An unconditional atomic exchange.
    Swap {
        /// Value installed.
        new: u64,
        /// Value displaced.
        old: u64,
    },
    /// A fetch-and-add.
    FetchAdd {
        /// Increment applied.
        delta: u64,
        /// Value before the add.
        old: u64,
    },
    /// An NB-FEB word operation.
    Feb {
        /// Which of the three NB-FEB ops executed.
        op: FebOp,
        /// Operand value (zero for [`FebOp::Load`]).
        value: u64,
        /// Word content observed (including the flag bit).
        old: u64,
    },
    /// An RLL and the value observed.
    Rll {
        /// Value loaded (and reserved against).
        value: u64,
    },
    /// An RSC attempt.
    Rsc {
        /// Value the store attempted to install.
        new: u64,
        /// What happened.
        outcome: RscOutcome,
    },
}

/// A traced instruction with its per-processor sequence number and the
/// address of the word it touched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Per-processor instruction sequence number (monotone).
    pub seq: u64,
    /// Address of the accessed word (the `SimWord`'s location).
    pub addr: usize,
    /// What was executed.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TraceKind::Read { value } => {
                write!(f, "[{}] read  {:#x} -> {value:#x}", self.seq, self.addr)
            }
            TraceKind::Write { value } => {
                write!(f, "[{}] write {:#x} := {value:#x}", self.seq, self.addr)
            }
            TraceKind::Cas { old, new, ok } => write!(
                f,
                "[{}] cas   {:#x} {old:#x} -> {new:#x} : {}",
                self.seq,
                self.addr,
                if ok { "ok" } else { "failed" }
            ),
            TraceKind::Swap { new, old } => write!(
                f,
                "[{}] swap  {:#x} := {new:#x} <- {old:#x}",
                self.seq, self.addr
            ),
            TraceKind::FetchAdd { delta, old } => write!(
                f,
                "[{}] faa   {:#x} += {delta:#x} <- {old:#x}",
                self.seq, self.addr
            ),
            TraceKind::Feb { op, value, old } => write!(
                f,
                "[{}] feb   {:#x} {op:?}({value:#x}) <- {old:#x}",
                self.seq, self.addr
            ),
            TraceKind::Rll { value } => {
                write!(f, "[{}] rll   {:#x} -> {value:#x}", self.seq, self.addr)
            }
            TraceKind::Rsc { new, outcome } => write!(
                f,
                "[{}] rsc   {:#x} := {new:#x} : {outcome:?}",
                self.seq, self.addr
            ),
        }
    }
}

/// A bounded ring of [`TraceEvent`]s.
#[derive(Debug, Default)]
pub(crate) struct TraceRing {
    depth: usize,
    next_seq: u64,
    events: VecDeque<TraceEvent>,
}

impl TraceRing {
    pub(crate) fn new(depth: usize) -> Self {
        TraceRing {
            depth,
            next_seq: 0,
            events: VecDeque::with_capacity(depth),
        }
    }

    pub(crate) fn push(&mut self, addr: usize, kind: TraceKind) {
        if self.depth == 0 {
            return;
        }
        if self.events.len() == self.depth {
            self.events.pop_front();
        }
        self.events.push_back(TraceEvent {
            seq: self.next_seq,
            addr,
            kind,
        });
        self.next_seq += 1;
    }

    pub(crate) fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_last_depth_events() {
        let mut r = TraceRing::new(2);
        for i in 0..5u64 {
            r.push(0x10, TraceKind::Read { value: i });
        }
        let ev = r.snapshot();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].seq, 3);
        assert_eq!(ev[1].seq, 4);
        assert_eq!(ev[1].kind, TraceKind::Read { value: 4 });
    }

    #[test]
    fn zero_depth_records_nothing() {
        let mut r = TraceRing::new(0);
        r.push(0x10, TraceKind::Write { value: 1 });
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn display_formats_each_kind() {
        let cases = [
            (TraceKind::Read { value: 5 }, "read"),
            (TraceKind::Write { value: 5 }, "write"),
            (
                TraceKind::Cas {
                    old: 1,
                    new: 2,
                    ok: true,
                },
                "cas",
            ),
            (TraceKind::Swap { new: 7, old: 6 }, "swap"),
            (TraceKind::FetchAdd { delta: 2, old: 6 }, "faa"),
            (
                TraceKind::Feb {
                    op: FebOp::Tfas,
                    value: 4,
                    old: 0,
                },
                "Tfas",
            ),
            (TraceKind::Rll { value: 9 }, "rll"),
            (
                TraceKind::Rsc {
                    new: 3,
                    outcome: RscOutcome::Spurious,
                },
                "Spurious",
            ),
        ];
        for (i, (kind, needle)) in cases.into_iter().enumerate() {
            let e = TraceEvent {
                seq: i as u64,
                addr: 0xbeef,
                kind,
            };
            let s = e.to_string();
            assert!(s.contains(needle), "{s:?} missing {needle:?}");
            assert!(s.contains("0xbeef"));
        }
    }
}
