use std::fmt;

/// Identifier of a simulated processor / process, in `0..N`.
///
/// The paper's algorithms are written "for process *p*" and index shared
/// announce arrays by process identifier; `ProcId` makes that identifier an
/// explicit type rather than a bare integer.
///
/// ```
/// use nbsp_memsim::ProcId;
/// let p = ProcId::new(3);
/// assert_eq!(p.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcId(usize);

impl ProcId {
    /// Creates a process identifier from a raw index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        ProcId(index)
    }

    /// Returns the raw index in `0..N`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProcId({})", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<ProcId> for usize {
    fn from(p: ProcId) -> usize {
        p.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index() {
        for i in [0usize, 1, 7, 63, usize::MAX] {
            assert_eq!(ProcId::new(i).index(), i);
            assert_eq!(usize::from(ProcId::new(i)), i);
        }
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let p = ProcId::new(2);
        assert_eq!(format!("{p}"), "p2");
        assert_eq!(format!("{p:?}"), "ProcId(2)");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcId::new(1) < ProcId::new(2));
        assert_eq!(ProcId::new(5), ProcId::new(5));
    }
}
