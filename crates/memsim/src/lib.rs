//! # nbsp-memsim — a simulated shared-memory multiprocessor
//!
//! This crate is the hardware substrate for the constructions of Moir's
//! PODC '97 paper *Practical Implementations of Non-Blocking Synchronization
//! Primitives*. The paper targets 1997-era machines (MIPS R4000, DEC Alpha,
//! PowerPC) whose Load-Linked/Store-Conditional instructions are **much
//! weaker** than the LL/VL/SC assumed by algorithm designers. Rust (and the
//! hardware we run on) does not expose raw LL/SC at all, so this crate
//! *simulates* a multiprocessor that provides exactly the restricted pair the
//! paper calls **RLL/RSC**, plus ordinary word reads/writes and CAS:
//!
//! * one reservation ("LLBit") per processor — a new [`Processor::rll`]
//!   silently discards the previous reservation;
//! * no Validate instruction;
//! * [`Processor::rsc`] may fail *spuriously* according to a pluggable,
//!   deterministic [`SpuriousMode`];
//! * any other memory access between an RLL and the following RSC
//!   invalidates (or, in strict mode, panics on) the reservation, modelling
//!   the paper's restriction that "a process may not access memory between an
//!   RLL and the subsequent RSC";
//! * words are a single machine word (64 bits here).
//!
//! A [`Machine`] also carries an [`InstructionSet`] capability so tests can
//! model machines that provide *either* CAS *or* RLL/RSC but not both — the
//! portability gap the paper closes.
//!
//! The [`exact`] module provides a lock-based oracle in which RSC detects
//! *any* intervening write (even one that restores the same value). The
//! default [`Processor::rsc`] implements conditional store as a
//! compare-exchange on the value observed by RLL, which is indistinguishable
//! from true RSC for every algorithm in the paper (each successful store
//! writes a fresh tag); differential tests against [`exact`] validate this.
//!
//! ## Example
//!
//! ```
//! use nbsp_memsim::{Machine, SimWord};
//!
//! let machine = Machine::builder(1).build();
//! let p = machine.processor(0);
//! let w = SimWord::new(5);
//! loop {
//!     let v = p.rll(&w);
//!     if p.rsc(&w, v + 1) {
//!         break;
//!     }
//! }
//! assert_eq!(p.read(&w), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cost;
pub mod exact;
mod machine;
mod pad;
pub mod pmem;
mod proc_id;
pub mod rng;
pub mod sched;
mod spurious;
mod stats;
mod trace;
mod word;

pub use cost::CostModel;
pub use pmem::{MemWord, PWord, VWord};
pub use machine::{
    AccessBetween, Capability, InstructionSet, Machine, MachineBuilder, Processor,
};
pub use pad::CachePadded;
pub use proc_id::ProcId;
pub use spurious::SpuriousMode;
pub use stats::ProcStats;
pub use trace::{FebOp, RscOutcome, TraceEvent, TraceKind};
pub use word::SimWord;

/// The NB-FEB full/empty flag bit, stored in the top bit of a [`SimWord`].
///
/// [`Processor::feb_tfas`] refuses to install when this bit is set and sets
/// it when it installs; [`Processor::feb_sac`] clears it. Values passed to
/// the NB-FEB ops must leave this bit clear — the flag is metadata owned by
/// the instruction set, not part of the stored value.
pub const FEB_FLAG: u64 = 1 << 63;
