//! Exact-semantics oracle model of RLL/RSC.
//!
//! The production model in [`crate::Processor`] implements RSC as a
//! compare-exchange on the value observed by RLL, which can succeed after an
//! A→B→A sequence of writes where true hardware RSC would fail. Every
//! algorithm in the paper defeats ABA with tags, so the difference is
//! unobservable *for those algorithms* — but that is a claim worth testing
//! rather than assuming.
//!
//! This module provides [`ExactWord`]: a word paired with a monotone version
//! counter, updated under a (test-only) lock so that RSC fails on **any**
//! intervening successful write, even one that restores the observed value.
//! Differential tests run the same algorithm against both models and compare
//! outcomes. The oracle is lock-based and therefore never used in benchmarks
//! or claimed to be non-blocking.

use std::fmt;

use std::sync::Mutex;

use crate::ProcId;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Versioned {
    version: u64,
    value: u64,
}

/// A simulated memory word with true write-detection RSC semantics.
///
/// ```
/// use nbsp_memsim::exact::{ExactProc, ExactWord};
/// use nbsp_memsim::ProcId;
///
/// let w = ExactWord::new(7);
/// let mut p = ExactProc::new(ProcId::new(0));
/// let v = p.rll(&w);
/// // Another "processor" writes the *same* value back:
/// w.write(7);
/// // True RSC still fails — the version changed.
/// assert!(!p.rsc(&w, v + 1));
/// assert_eq!(w.read(), 7);
/// ```
pub struct ExactWord {
    cell: Mutex<Versioned>,
}

impl ExactWord {
    /// Creates a word holding `value` at version 0.
    #[must_use]
    pub fn new(value: u64) -> Self {
        ExactWord {
            cell: Mutex::new(Versioned { version: 0, value }),
        }
    }

    fn addr(&self) -> usize {
        self as *const ExactWord as usize
    }

    /// Reads the current value.
    #[must_use]
    pub fn read(&self) -> u64 {
        self.cell.lock().unwrap().value
    }

    /// Writes `value`, bumping the version (so outstanding reservations on
    /// this word will fail their RSC even if `value` equals the old value).
    pub fn write(&self, value: u64) {
        let mut g = self.cell.lock().unwrap();
        g.version += 1;
        g.value = value;
    }

    /// Atomic compare-and-swap on the value; bumps the version on success.
    #[must_use]
    pub fn cas(&self, old: u64, new: u64) -> bool {
        let mut g = self.cell.lock().unwrap();
        if g.value == old {
            g.version += 1;
            g.value = new;
            true
        } else {
            false
        }
    }

    fn snapshot(&self) -> Versioned {
        *self.cell.lock().unwrap()
    }

    fn store_if_version(&self, version: u64, new: u64) -> bool {
        let mut g = self.cell.lock().unwrap();
        if g.version == version {
            g.version += 1;
            g.value = new;
            true
        } else {
            false
        }
    }
}

impl Default for ExactWord {
    fn default() -> Self {
        ExactWord::new(0)
    }
}

impl fmt::Debug for ExactWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.snapshot();
        write!(f, "ExactWord(value = {:#x}, version = {})", v.value, v.version)
    }
}

/// Per-processor state for the exact model: one reservation, like the
/// hardware `LLBit`.
#[derive(Debug)]
pub struct ExactProc {
    id: ProcId,
    reservation: Option<(usize, u64)>, // (addr, version)
}

impl ExactProc {
    /// Creates processor-private exact-model state.
    #[must_use]
    pub fn new(id: ProcId) -> Self {
        ExactProc {
            id,
            reservation: None,
        }
    }

    /// This processor's identifier.
    #[must_use]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Load-linked with exact semantics: records the word's version.
    pub fn rll(&mut self, w: &ExactWord) -> u64 {
        let snap = w.snapshot();
        self.reservation = Some((w.addr(), snap.version));
        snap.value
    }

    /// Store-conditional with exact semantics: succeeds iff **no** write of
    /// any kind has hit the word since this processor's `rll`.
    ///
    /// # Panics
    ///
    /// Panics if the outstanding reservation names a different word.
    pub fn rsc(&mut self, w: &ExactWord, new: u64) -> bool {
        let Some((addr, version)) = self.reservation.take() else {
            return false;
        };
        assert_eq!(addr, w.addr(), "exact RSC on a different word than RLL");
        w.store_if_version(version, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsc_succeeds_without_interference() {
        let w = ExactWord::new(1);
        let mut p = ExactProc::new(ProcId::new(0));
        let v = p.rll(&w);
        assert!(p.rsc(&w, v + 1));
        assert_eq!(w.read(), 2);
    }

    #[test]
    fn rsc_fails_on_aba() {
        // The defining difference from the CAS-based model.
        let w = ExactWord::new(1);
        let mut p = ExactProc::new(ProcId::new(0));
        let _ = p.rll(&w);
        w.write(2);
        w.write(1); // back to the observed value
        assert!(!p.rsc(&w, 3));
        assert_eq!(w.read(), 1);
    }

    #[test]
    fn rsc_fails_on_same_value_rewrite() {
        let w = ExactWord::new(5);
        let mut p = ExactProc::new(ProcId::new(0));
        let _ = p.rll(&w);
        w.write(5);
        assert!(!p.rsc(&w, 6));
    }

    #[test]
    fn rsc_without_reservation_fails() {
        let w = ExactWord::new(0);
        let mut p = ExactProc::new(ProcId::new(0));
        assert!(!p.rsc(&w, 1));
    }

    #[test]
    fn reservation_is_consumed() {
        let w = ExactWord::new(0);
        let mut p = ExactProc::new(ProcId::new(0));
        let v = p.rll(&w);
        assert!(p.rsc(&w, v + 1));
        assert!(!p.rsc(&w, v + 2)); // spent
    }

    #[test]
    fn cas_bumps_version() {
        let w = ExactWord::new(3);
        let mut p = ExactProc::new(ProcId::new(0));
        let _ = p.rll(&w);
        assert!(w.cas(3, 4));
        assert!(w.cas(4, 3)); // ABA via CAS
        assert!(!p.rsc(&w, 9));
    }

    #[test]
    fn failed_cas_does_not_bump_version() {
        let w = ExactWord::new(3);
        let mut p = ExactProc::new(ProcId::new(0));
        let v = p.rll(&w);
        assert!(!w.cas(99, 4));
        assert!(p.rsc(&w, v + 1));
    }

    #[test]
    fn debug_is_nonempty() {
        let w = ExactWord::new(255);
        let s = format!("{w:?}");
        assert!(s.contains("0xff"));
    }
}
