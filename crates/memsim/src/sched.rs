//! Schedule-point hook: every shared access can yield to an explicit
//! scheduler.
//!
//! Stateless model checkers (CHESS, Loom, and this workspace's
//! `nbsp-check`) work by running the *real* implementation under a
//! cooperative scheduler that decides, at every shared-memory access, which
//! thread moves next. This module is the seam that makes that possible
//! without forking the code under test: the simulator's
//! [`Processor`](crate::Processor) — and, in `nbsp-core`, the native
//! `CasMemory` accessors and the raw-atomic ablations — call
//! [`yield_point`] immediately before each shared access.
//!
//! The hook is **per-thread**: a checker installs its [`SchedulePoint`]
//! only in the worker threads it spawns, so concurrently running tests,
//! benchmarks and unrelated threads in the same process are never
//! intercepted. When no hook is installed anywhere in the process the cost
//! is a single relaxed load of a static counter, so production and
//! benchmark paths are unaffected.
//!
//! Besides choosing *when* an access runs, the scheduler also controls the
//! one source of nondeterminism that is not an interleaving: it may answer
//! an [`AccessKind::Rsc`] yield with [`Decision::SpuriousFail`], forcing
//! the store-conditional to fail spuriously on that attempt. This turns
//! the paper's "RSC may occasionally fail when the normal semantics
//! dictate that it should succeed" from a probabilistic adversary into an
//! explicitly enumerable scheduler branch.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The kind of shared access about to be performed at a yield point.
///
/// Two accesses to the same address are *independent* (commute) iff both
/// are in the read-only subset ([`AccessKind::is_read_only`]); everything
/// else may write and therefore conflicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// An ordinary load.
    Read,
    /// An ordinary store.
    Write,
    /// A compare-and-swap (counted as a write even when it fails).
    Cas,
    /// A restricted load-linked (reads memory, sets the reservation).
    Rll,
    /// A restricted store-conditional (may write; may fail spuriously).
    Rsc,
    /// An unconditional atomic exchange (always writes).
    Swap,
    /// A fetch-and-add (always writes; the paper's Φ-style sequence
    /// numbers in the consensus-hierarchy providers come from here).
    FetchAdd,
    /// A full/empty-bit word operation (TFAS or SAC — both may write the
    /// flag and therefore conflict; the read-only NB-FEB load is issued as
    /// [`AccessKind::Read`]).
    Feb,
    /// A declared wait: the process announces it cannot make progress
    /// until some other process *writes* the yielded address, and performs
    /// no access itself. Cooperative schedulers park the process until a
    /// mutating access hits that address instead of re-granting a spin
    /// loop forever; with no hook installed the yield is a no-op and the
    /// caller's own retry loop (with [`std::thread::yield_now`]) provides
    /// host-side fairness. This is the standard "await" reduction for
    /// model-checking blocking constructions: side-effect-free re-reads of
    /// an unchanged word need not be explored as distinct interleavings.
    Wait,
}

impl AccessKind {
    /// True iff this access never modifies the shared word: two read-only
    /// accesses to the same address commute. A declared [`Wait`] touches
    /// nothing at all, so it commutes with reads — but *not* with writes:
    /// reordering a wait across the write that would wake it changes when
    /// the waiter becomes runnable, so a DPOR driver must still treat the
    /// pair as dependent (which this predicate's callers get for free,
    /// because the write side is never read-only).
    ///
    /// [`Wait`]: AccessKind::Wait
    #[must_use]
    pub fn is_read_only(self) -> bool {
        matches!(self, AccessKind::Read | AccessKind::Rll | AccessKind::Wait)
    }
}

/// The scheduler's answer to a yield: proceed normally, or (for
/// [`AccessKind::Rsc`] only) fail this store-conditional spuriously.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Perform the access with its normal semantics.
    Proceed,
    /// Fail this RSC attempt spuriously. Ignored by non-RSC accesses.
    SpuriousFail,
}

/// A scheduler receiving yield points from instrumented shared accesses.
///
/// Implementations typically park the calling thread until a controller
/// grants it the step; the return value is the controller's decision.
pub trait SchedulePoint: Send + Sync {
    /// Called immediately before a shared access to `addr` of kind `kind`;
    /// blocks until the scheduler lets the access proceed.
    fn yield_point(&self, addr: usize, kind: AccessKind) -> Decision;
}

/// Number of threads with a hook installed, so the uninstrumented fast
/// path is one relaxed load (no thread-local access).
static ACTIVE_HOOKS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static HOOK: RefCell<Option<Arc<dyn SchedulePoint>>> = const { RefCell::new(None) };
}

/// Yields to the calling thread's installed scheduler, if any.
///
/// Instrumented call sites invoke this immediately before every shared
/// access. With no hook installed on the calling thread this returns
/// [`Decision::Proceed`] after a single relaxed load.
#[inline]
pub fn yield_point(addr: usize, kind: AccessKind) -> Decision {
    if ACTIVE_HOOKS.load(Ordering::Relaxed) == 0 {
        return Decision::Proceed;
    }
    yield_point_slow(addr, kind)
}

#[cold]
fn yield_point_slow(addr: usize, kind: AccessKind) -> Decision {
    // Clone the Arc out so the hook runs without the RefCell borrowed:
    // a hook that itself touches instrumented state must not re-enter a
    // held borrow.
    let hook = HOOK.with(|h| h.borrow().clone());
    match hook {
        Some(hook) => hook.yield_point(addr, kind),
        None => Decision::Proceed,
    }
}

/// Installs `hook` for the calling thread, returning a guard that
/// uninstalls it when dropped (including on unwind).
///
/// # Panics
///
/// Panics if the calling thread already has a hook installed — checkers
/// do not nest.
#[must_use]
pub fn install(hook: Arc<dyn SchedulePoint>) -> HookGuard {
    HOOK.with(|h| {
        let mut slot = h.borrow_mut();
        assert!(
            slot.is_none(),
            "a schedule hook is already installed on this thread"
        );
        *slot = Some(hook);
    });
    ACTIVE_HOOKS.fetch_add(1, Ordering::Relaxed);
    HookGuard { _priv: () }
}

/// Uninstalls the calling thread's schedule hook on drop (see [`install`]).
#[derive(Debug)]
pub struct HookGuard {
    _priv: (),
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        HOOK.with(|h| h.borrow_mut().take());
        ACTIVE_HOOKS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Kill-at-schedule-point crash injection.
///
/// A `CrashPlan` is a [`SchedulePoint`] shared (via `Arc`) by every thread
/// of a crash experiment. It counts down the instrumented shared accesses
/// performed across *all* participating threads; when the countdown
/// reaches zero the plan *trips*, and from then on every yield from a
/// participating thread panics with a recognizable crash token instead of
/// letting the access proceed. The harness joins the workers, treats
/// [`is_crash_panic`] payloads as the simulated power failure (any other
/// panic is a real bug and is resumed), rolls persistent words back with
/// `crash_reset`, runs the algorithm's recovery procedure, and asserts
/// durable linearizability.
///
/// Because the kill point is "the k-th instrumented access, whichever
/// thread performs it", sweeping `k` over a seeded random range explores
/// crashes at arbitrary interleaving depths without any cooperation from
/// the code under test — the same property that makes the schedule-point
/// seam sufficient for DPOR makes it sufficient for crash injection.
///
/// The countdown and trip flag use relaxed atomics: the plan needs an
/// *atomic* trip (exactly one access observes the count hit zero) but no
/// ordering with the data accesses themselves — the crash is adversarial
/// by design, so any interleaving of "who noticed the trip when" is a
/// legal power-failure instant.
#[derive(Debug)]
pub struct CrashPlan {
    remaining: AtomicUsize,
    tripped: std::sync::atomic::AtomicBool,
}

/// The panic payload used by [`CrashPlan`] to tear a thread down; detect
/// it with [`is_crash_panic`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashToken;

/// True iff `payload` (from [`std::thread::JoinHandle::join`] or
/// [`std::panic::catch_unwind`]) is a [`CrashPlan`] kill, as opposed to a
/// genuine assertion failure in the code under test.
#[must_use]
pub fn is_crash_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<CrashToken>()
}

impl CrashPlan {
    /// A plan that trips at the `kill_after`-th instrumented access
    /// (0 trips at the very first access) counted across every thread the
    /// plan is installed on.
    #[must_use]
    pub fn new(kill_after: usize) -> Arc<Self> {
        Arc::new(CrashPlan {
            remaining: AtomicUsize::new(kill_after),
            tripped: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// True once the kill point has been reached (some thread has already
    /// been torn down, or will be at its next yield).
    #[must_use]
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }
}

impl SchedulePoint for CrashPlan {
    fn yield_point(&self, _addr: usize, _kind: AccessKind) -> Decision {
        if !self.tripped() {
            // fetch_update is a CAS loop: exactly one access moves the
            // count from 0, and it is the one that sets the trip flag.
            let hit = self
                .remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(1))
                .is_err();
            if !hit {
                return Decision::Proceed;
            }
            self.tripped.store(true, Ordering::Relaxed);
        }
        // Tripped: this thread dies *before* the access executes, exactly
        // like a power failure between two instructions.
        std::panic::panic_any(CrashToken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    struct Counter(AtomicU64);

    impl SchedulePoint for Counter {
        fn yield_point(&self, _addr: usize, _kind: AccessKind) -> Decision {
            self.0.fetch_add(1, Ordering::Relaxed);
            Decision::Proceed
        }
    }

    #[test]
    fn uninstalled_hook_proceeds() {
        assert_eq!(yield_point(0, AccessKind::Read), Decision::Proceed);
    }

    #[test]
    fn install_routes_and_guard_uninstalls() {
        let hook = Arc::new(Counter(AtomicU64::new(0)));
        {
            let _g = install(hook.clone());
            let _ = yield_point(1, AccessKind::Write);
            let _ = yield_point(2, AccessKind::Cas);
            assert_eq!(hook.0.load(Ordering::Relaxed), 2);
        }
        let _ = yield_point(3, AccessKind::Read);
        assert_eq!(hook.0.load(Ordering::Relaxed), 2, "guard must uninstall");
    }

    #[test]
    fn hook_is_per_thread() {
        let hook = Arc::new(Counter(AtomicU64::new(0)));
        let _g = install(hook.clone());
        std::thread::scope(|s| {
            s.spawn(|| {
                // No hook installed on this thread: not intercepted even
                // though ACTIVE_HOOKS is nonzero.
                let _ = yield_point(7, AccessKind::Rsc);
            });
        });
        assert_eq!(hook.0.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn processor_accesses_reach_the_hook() {
        let hook = Arc::new(Counter(AtomicU64::new(0)));
        let _g = install(hook.clone());
        let m = crate::Machine::new(1);
        let p = m.processor(0);
        let w = crate::SimWord::new(0);
        let _ = p.read(&w);
        p.write(&w, 1);
        let _ = p.cas(&w, 1, 2);
        let v = p.rll(&w);
        let _ = p.rsc(&w, v + 1);
        assert_eq!(hook.0.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn spurious_decision_fails_the_rsc() {
        struct FailRsc;
        impl SchedulePoint for FailRsc {
            fn yield_point(&self, _addr: usize, kind: AccessKind) -> Decision {
                if kind == AccessKind::Rsc {
                    Decision::SpuriousFail
                } else {
                    Decision::Proceed
                }
            }
        }
        let _g = install(Arc::new(FailRsc));
        let m = crate::Machine::new(1);
        let p = m.processor(0);
        let w = crate::SimWord::new(0);
        let v = p.rll(&w);
        assert!(!p.rsc(&w, v + 1), "scheduler-forced spurious failure");
        assert_eq!(w.peek(), 0);
        assert_eq!(p.stats().rsc_spurious, 1);
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn nested_install_panics() {
        let _a = install(Arc::new(Counter(AtomicU64::new(0))));
        let _b = install(Arc::new(Counter(AtomicU64::new(0))));
    }

    #[test]
    fn crash_plan_kills_at_the_exact_access() {
        let plan = CrashPlan::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = install(plan.clone());
            let mut survived = 0u64;
            for i in 0..10 {
                let _ = yield_point(i, AccessKind::Write);
                survived += 1;
            }
            survived
        }));
        let payload = result.expect_err("the plan must kill the loop");
        assert!(is_crash_panic(payload.as_ref()), "crash token, not a bug");
        assert!(plan.tripped());
    }

    #[test]
    fn crash_plan_counts_across_threads() {
        // Two threads, 4 accesses budget: together they execute exactly 4
        // accesses before both die at their next yield.
        let plan = CrashPlan::new(4);
        let done = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let plan = plan.clone();
                let done = done.clone();
                s.spawn(move || {
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let _g = install(plan);
                        loop {
                            let _ = yield_point(0, AccessKind::Cas);
                            done.fetch_add(1, Ordering::Relaxed);
                        }
                    }));
                    let payload = caught.expect_err("must crash");
                    assert!(is_crash_panic(payload.as_ref()));
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 4);
        assert!(plan.tripped());
    }

    #[test]
    fn crash_panic_discriminates_real_bugs() {
        let real = std::panic::catch_unwind(|| panic!("assertion failed: real bug"))
            .expect_err("panicked");
        assert!(!is_crash_panic(real.as_ref()));
    }

    #[test]
    fn crash_plan_zero_kills_immediately() {
        let plan = CrashPlan::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = install(plan.clone());
            let _ = yield_point(0, AccessKind::Read);
        }));
        assert!(is_crash_panic(result.expect_err("dies first access").as_ref()));
    }
}
