//! Schedule-point hook: every shared access can yield to an explicit
//! scheduler.
//!
//! Stateless model checkers (CHESS, Loom, and this workspace's
//! `nbsp-check`) work by running the *real* implementation under a
//! cooperative scheduler that decides, at every shared-memory access, which
//! thread moves next. This module is the seam that makes that possible
//! without forking the code under test: the simulator's
//! [`Processor`](crate::Processor) — and, in `nbsp-core`, the native
//! `CasMemory` accessors and the raw-atomic ablations — call
//! [`yield_point`] immediately before each shared access.
//!
//! The hook is **per-thread**: a checker installs its [`SchedulePoint`]
//! only in the worker threads it spawns, so concurrently running tests,
//! benchmarks and unrelated threads in the same process are never
//! intercepted. When no hook is installed anywhere in the process the cost
//! is a single relaxed load of a static counter, so production and
//! benchmark paths are unaffected.
//!
//! Besides choosing *when* an access runs, the scheduler also controls the
//! one source of nondeterminism that is not an interleaving: it may answer
//! an [`AccessKind::Rsc`] yield with [`Decision::SpuriousFail`], forcing
//! the store-conditional to fail spuriously on that attempt. This turns
//! the paper's "RSC may occasionally fail when the normal semantics
//! dictate that it should succeed" from a probabilistic adversary into an
//! explicitly enumerable scheduler branch.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The kind of shared access about to be performed at a yield point.
///
/// Two accesses to the same address are *independent* (commute) iff both
/// are in the read-only subset ([`AccessKind::is_read_only`]); everything
/// else may write and therefore conflicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// An ordinary load.
    Read,
    /// An ordinary store.
    Write,
    /// A compare-and-swap (counted as a write even when it fails).
    Cas,
    /// A restricted load-linked (reads memory, sets the reservation).
    Rll,
    /// A restricted store-conditional (may write; may fail spuriously).
    Rsc,
}

impl AccessKind {
    /// True iff this access never modifies the shared word: two read-only
    /// accesses to the same address commute.
    #[must_use]
    pub fn is_read_only(self) -> bool {
        matches!(self, AccessKind::Read | AccessKind::Rll)
    }
}

/// The scheduler's answer to a yield: proceed normally, or (for
/// [`AccessKind::Rsc`] only) fail this store-conditional spuriously.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Perform the access with its normal semantics.
    Proceed,
    /// Fail this RSC attempt spuriously. Ignored by non-RSC accesses.
    SpuriousFail,
}

/// A scheduler receiving yield points from instrumented shared accesses.
///
/// Implementations typically park the calling thread until a controller
/// grants it the step; the return value is the controller's decision.
pub trait SchedulePoint: Send + Sync {
    /// Called immediately before a shared access to `addr` of kind `kind`;
    /// blocks until the scheduler lets the access proceed.
    fn yield_point(&self, addr: usize, kind: AccessKind) -> Decision;
}

/// Number of threads with a hook installed, so the uninstrumented fast
/// path is one relaxed load (no thread-local access).
static ACTIVE_HOOKS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static HOOK: RefCell<Option<Arc<dyn SchedulePoint>>> = const { RefCell::new(None) };
}

/// Yields to the calling thread's installed scheduler, if any.
///
/// Instrumented call sites invoke this immediately before every shared
/// access. With no hook installed on the calling thread this returns
/// [`Decision::Proceed`] after a single relaxed load.
#[inline]
pub fn yield_point(addr: usize, kind: AccessKind) -> Decision {
    if ACTIVE_HOOKS.load(Ordering::Relaxed) == 0 {
        return Decision::Proceed;
    }
    yield_point_slow(addr, kind)
}

#[cold]
fn yield_point_slow(addr: usize, kind: AccessKind) -> Decision {
    // Clone the Arc out so the hook runs without the RefCell borrowed:
    // a hook that itself touches instrumented state must not re-enter a
    // held borrow.
    let hook = HOOK.with(|h| h.borrow().clone());
    match hook {
        Some(hook) => hook.yield_point(addr, kind),
        None => Decision::Proceed,
    }
}

/// Installs `hook` for the calling thread, returning a guard that
/// uninstalls it when dropped (including on unwind).
///
/// # Panics
///
/// Panics if the calling thread already has a hook installed — checkers
/// do not nest.
#[must_use]
pub fn install(hook: Arc<dyn SchedulePoint>) -> HookGuard {
    HOOK.with(|h| {
        let mut slot = h.borrow_mut();
        assert!(
            slot.is_none(),
            "a schedule hook is already installed on this thread"
        );
        *slot = Some(hook);
    });
    ACTIVE_HOOKS.fetch_add(1, Ordering::Relaxed);
    HookGuard { _priv: () }
}

/// Uninstalls the calling thread's schedule hook on drop (see [`install`]).
#[derive(Debug)]
pub struct HookGuard {
    _priv: (),
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        HOOK.with(|h| h.borrow_mut().take());
        ACTIVE_HOOKS.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    struct Counter(AtomicU64);

    impl SchedulePoint for Counter {
        fn yield_point(&self, _addr: usize, _kind: AccessKind) -> Decision {
            self.0.fetch_add(1, Ordering::Relaxed);
            Decision::Proceed
        }
    }

    #[test]
    fn uninstalled_hook_proceeds() {
        assert_eq!(yield_point(0, AccessKind::Read), Decision::Proceed);
    }

    #[test]
    fn install_routes_and_guard_uninstalls() {
        let hook = Arc::new(Counter(AtomicU64::new(0)));
        {
            let _g = install(hook.clone());
            let _ = yield_point(1, AccessKind::Write);
            let _ = yield_point(2, AccessKind::Cas);
            assert_eq!(hook.0.load(Ordering::Relaxed), 2);
        }
        let _ = yield_point(3, AccessKind::Read);
        assert_eq!(hook.0.load(Ordering::Relaxed), 2, "guard must uninstall");
    }

    #[test]
    fn hook_is_per_thread() {
        let hook = Arc::new(Counter(AtomicU64::new(0)));
        let _g = install(hook.clone());
        std::thread::scope(|s| {
            s.spawn(|| {
                // No hook installed on this thread: not intercepted even
                // though ACTIVE_HOOKS is nonzero.
                let _ = yield_point(7, AccessKind::Rsc);
            });
        });
        assert_eq!(hook.0.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn processor_accesses_reach_the_hook() {
        let hook = Arc::new(Counter(AtomicU64::new(0)));
        let _g = install(hook.clone());
        let m = crate::Machine::new(1);
        let p = m.processor(0);
        let w = crate::SimWord::new(0);
        let _ = p.read(&w);
        p.write(&w, 1);
        let _ = p.cas(&w, 1, 2);
        let v = p.rll(&w);
        let _ = p.rsc(&w, v + 1);
        assert_eq!(hook.0.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn spurious_decision_fails_the_rsc() {
        struct FailRsc;
        impl SchedulePoint for FailRsc {
            fn yield_point(&self, _addr: usize, kind: AccessKind) -> Decision {
                if kind == AccessKind::Rsc {
                    Decision::SpuriousFail
                } else {
                    Decision::Proceed
                }
            }
        }
        let _g = install(Arc::new(FailRsc));
        let m = crate::Machine::new(1);
        let p = m.processor(0);
        let w = crate::SimWord::new(0);
        let v = p.rll(&w);
        assert!(!p.rsc(&w, v + 1), "scheduler-forced spurious failure");
        assert_eq!(w.peek(), 0);
        assert_eq!(p.stats().rsc_spurious, 1);
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn nested_install_panics() {
        let _a = install(Arc::new(Counter(AtomicU64::new(0))));
        let _b = install(Arc::new(Counter(AtomicU64::new(0))));
    }
}
