//! Exhaustive model checking of the paper's pseudocode.
//!
//! The stress and history tests sample schedules; this module *enumerates*
//! them. Figure 3's CAS (and Figure 5's SC, which shares its loop) is
//! transliterated from the paper's pseudocode into an explicit step
//! machine — one shared-memory access per step — and a DFS scheduler
//! explores **every** interleaving of every step of concurrent operations,
//! with spurious RSC failures as additional nondeterministic branches.
//! Each complete execution yields a history that is fed to the
//! [Wing & Gong checker](crate::checker).
//!
//! Three results fall out:
//!
//! * every interleaving of the checked Figure-3 programs is linearizable
//!   — mechanical evidence for Theorem 1 on small configurations. Notably
//!   this holds **even with degenerate tags**: CAS semantics are
//!   value-only, so value-ABA cannot produce an illegal CAS outcome — the
//!   tags buy Figure 3 *termination* (and protect the CAS-based RSC
//!   simulation), not safety;
//! * for Figure 5 (LL/VL/SC, whose SC **must** fail after any intervening
//!   successful SC), a degenerate tag range makes the search *find* the
//!   ABA violation — the tags are load-bearing exactly where the paper
//!   says, and this checker has teeth;
//! * with an adequate tag range, all Figure-5 interleavings linearize.

use nbsp_memsim::ProcId;

use crate::checker::is_linearizable;
use crate::history::{Completed, Op, Ret};
use crate::spec::CasSpec;

/// One CAS operation of a process's program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CasOp {
    /// Expected value.
    pub old: u64,
    /// Replacement value.
    pub new: u64,
}

/// The shared word: Figure 3's `record tag: tagtype; val: valtype end`,
/// with the tag reduced modulo `tag_modulus`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Word {
    tag: u64,
    val: u64,
}

/// Program counter of one in-flight Figure-3 CAS (numbers are the paper's
/// line numbers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pc {
    /// About to execute line 1 (read the word).
    Line1,
    /// Lines 2–4 are local; holds the word read at line 1.
    Line5 { oldword: Word },
    /// About to execute line 6 (RSC) with the reservation armed.
    Line6 { oldword: Word },
    /// Finished with this outcome.
    Done(bool),
}

#[derive(Clone, Debug)]
struct ProcState {
    program: Vec<CasOp>,
    /// Index of the op currently executing (or next to start).
    op_index: usize,
    pc: Pc,
    /// Spurious failures still permitted for this process.
    spurious_budget: u32,
    /// Step ticket at which the current op was invoked.
    invoked_at: u64,
}

/// Result of an exhaustive check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelResult {
    /// Complete executions explored.
    pub executions: u64,
    /// A witness history for the first non-linearizable execution found,
    /// if any.
    pub violation: Option<Vec<Completed>>,
}

impl ModelResult {
    /// True iff every execution was linearizable.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

/// Exhaustively checks Figure 3's CAS over all interleavings of the given
/// per-process programs.
///
/// * `initial` — the word's starting value;
/// * `tag_modulus` — the tag range (the paper's `tagtype`); 1 disables
///   tags entirely, small values model imminent wraparound;
/// * `spurious_budget` — how many spurious RSC failures the adversary may
///   inject *per process* (each failure point branches the search).
///
/// # Panics
///
/// Panics if more than 64 operations are supplied in total (checker
/// limit) or `tag_modulus` is zero.
///
/// ```
/// use nbsp_linearize::modelcheck::{check_figure3, CasOp};
///
/// // Two processes race CAS(0→1) and CAS(0→2): every interleaving of the
/// // paper's algorithm must linearize (exactly one may win).
/// let result = check_figure3(
///     vec![
///         vec![CasOp { old: 0, new: 1 }],
///         vec![CasOp { old: 0, new: 2 }],
///     ],
///     0,
///     1 << 16,
///     1,
/// );
/// assert!(result.holds());
/// assert!(result.executions > 10);
/// ```
#[must_use]
pub fn check_figure3(
    programs: Vec<Vec<CasOp>>,
    initial: u64,
    tag_modulus: u64,
    spurious_budget: u32,
) -> ModelResult {
    assert!(tag_modulus > 0, "tag modulus must be positive");
    let total_ops: usize = programs.iter().map(Vec::len).sum();
    assert!(total_ops <= 64, "too many operations for the checker");
    let procs: Vec<ProcState> = programs
        .into_iter()
        .map(|program| ProcState {
            program,
            op_index: 0,
            pc: Pc::Line1,
            spurious_budget,
            invoked_at: 0,
        })
        .collect();
    let mut result = ModelResult {
        executions: 0,
        violation: None,
    };
    let mut history: Vec<Completed> = Vec::new();
    explore(
        Word {
            tag: 0,
            val: initial,
        },
        initial,
        tag_modulus,
        &procs,
        &mut history,
        0,
        &mut result,
    );
    result
}

/// Nondeterministically runs one step of process `i`; `clock` is the
/// global step ticket (every shared-memory step is atomic, so an op's
/// interval is [ticket of its first step, ticket of its last]).
#[allow(clippy::too_many_lines)]
fn explore(
    word: Word,
    initial: u64,
    tag_modulus: u64,
    procs: &[ProcState],
    history: &mut Vec<Completed>,
    clock: u64,
    result: &mut ModelResult,
) {
    if result.violation.is_some() {
        return; // first witness is enough
    }
    let mut any_active = false;
    for (i, p) in procs.iter().enumerate() {
        // A process is schedulable if it still has steps to take.
        let (op, finished) = match p.program.get(p.op_index) {
            Some(op) => (op, false),
            None => (&CasOp { old: 0, new: 0 }, true),
        };
        if finished {
            continue;
        }
        any_active = true;
        let step = |new_word: Word,
                        new_pc: Pc,
                        new_budget: u32,
                        history: &mut Vec<Completed>,
                        result: &mut ModelResult| {
            let mut procs2 = procs.to_vec();
            let me = &mut procs2[i];
            me.spurious_budget = new_budget;
            let mut pushed = false;
            match new_pc {
                Pc::Done(ok) => {
                    history.push(Completed {
                        proc: ProcId::new(i),
                        op: Op::Cas {
                            old: op.old,
                            new: op.new,
                        },
                        ret: Ret::Bool(ok),
                        invoked: me.invoked_at,
                        returned: clock,
                    });
                    pushed = true;
                    me.op_index += 1;
                    me.pc = Pc::Line1;
                }
                pc => me.pc = pc,
            }
            explore(
                new_word, initial, tag_modulus, &procs2, history, clock + 1, result,
            );
            if pushed {
                history.pop();
            }
        };

        match p.pc {
            Pc::Line1 => {
                // Line 1: atomic read. Lines 2–3 are local and execute
                // immediately after (they touch no shared memory).
                let mut procs2 = procs.to_vec();
                procs2[i].invoked_at = clock;
                let oldword = word;
                if oldword.val != op.old {
                    // line 2: fail, linearized at this read.
                    let me = &mut procs2[i];
                    me.op_index += 1;
                    me.pc = Pc::Line1;
                    history.push(Completed {
                        proc: ProcId::new(i),
                        op: Op::Cas {
                            old: op.old,
                            new: op.new,
                        },
                        ret: Ret::Bool(false),
                        invoked: clock,
                        returned: clock,
                    });
                    explore(word, initial, tag_modulus, &procs2, history, clock + 1, result);
                    history.pop();
                } else if op.old == op.new {
                    // line 3: trivial success.
                    let me = &mut procs2[i];
                    me.op_index += 1;
                    me.pc = Pc::Line1;
                    history.push(Completed {
                        proc: ProcId::new(i),
                        op: Op::Cas {
                            old: op.old,
                            new: op.new,
                        },
                        ret: Ret::Bool(true),
                        invoked: clock,
                        returned: clock,
                    });
                    explore(word, initial, tag_modulus, &procs2, history, clock + 1, result);
                    history.pop();
                } else {
                    procs2[i].pc = Pc::Line5 { oldword };
                    explore(word, initial, tag_modulus, &procs2, history, clock + 1, result);
                }
            }
            Pc::Line5 { oldword } => {
                // Line 5: RLL — an atomic read plus reservation.
                if word != oldword {
                    step(word, Pc::Done(false), p.spurious_budget, history, result);
                } else {
                    step(word, Pc::Line6 { oldword }, p.spurious_budget, history, result);
                }
            }
            Pc::Line6 { oldword } => {
                // Line 6: RSC. The reservation stands iff the word is
                // still exactly `oldword` (the simulator's CAS-based RSC);
                // the adversary may additionally fail it spuriously.
                if word == oldword {
                    // Success branch.
                    let new_word = Word {
                        tag: (oldword.tag + 1) % tag_modulus,
                        val: op.new,
                    };
                    step(new_word, Pc::Done(true), p.spurious_budget, history, result);
                    // Spurious-failure branch (back to line 5).
                    if p.spurious_budget > 0 {
                        step(
                            word,
                            Pc::Line5 { oldword },
                            p.spurious_budget - 1,
                            history,
                            result,
                        );
                    }
                } else {
                    // Conflict: RSC fails, loop back to line 5 (which will
                    // observe the change and return false).
                    step(word, Pc::Line5 { oldword }, p.spurious_budget, history, result);
                }
            }
            Pc::Done(_) => unreachable!("Done is consumed by step()"),
        }
    }

    if !any_active {
        // Every program finished: one complete execution.
        result.executions += 1;
        if !is_linearizable(CasSpec::new(initial), history) {
            result.violation = Some(history.clone());
        }
    }
}

// ---------------------------------------------------------------------------
// Figure 5: LL/VL/SC step machine.
// ---------------------------------------------------------------------------

/// One operation of a process's Figure-5 program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LlScOp {
    /// Load-linked (one atomic read; stores the word in the private keep).
    Ll,
    /// Validate (one atomic read compared with the keep).
    Vl,
    /// Store-conditional of the value (the paper's RLL/RSC retry loop).
    Sc(u64),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pc5 {
    /// Next op starts here (Ll and Vl are single-step).
    Start,
    /// Inside Sc: about to RLL.
    ScRll,
    /// Inside Sc: reservation armed, about to RSC.
    ScRsc,
}

#[derive(Clone, Debug)]
struct Proc5 {
    program: Vec<LlScOp>,
    op_index: usize,
    pc: Pc5,
    /// The private keep word (written by Ll).
    keep: Option<Word>,
    spurious_budget: u32,
    invoked_at: u64,
}

/// Exhaustively checks Figure 5's LL/VL/SC over all interleavings.
///
/// Same parameters as [`check_figure3`]. The specification is Figure 2's
/// LL/VL/SC semantics ([`LlScSpec`](crate::spec::LlScSpec)): an SC must
/// fail after **any** intervening successful SC — which is exactly what a
/// wrapped tag can violate.
///
/// # Panics
///
/// Panics if more than 64 operations are supplied in total or
/// `tag_modulus` is zero.
#[must_use]
pub fn check_figure5(
    programs: Vec<Vec<LlScOp>>,
    initial: u64,
    tag_modulus: u64,
    spurious_budget: u32,
) -> ModelResult {
    assert!(tag_modulus > 0, "tag modulus must be positive");
    let total_ops: usize = programs.iter().map(Vec::len).sum();
    assert!(total_ops <= 64, "too many operations for the checker");
    let n = programs.len();
    let procs: Vec<Proc5> = programs
        .into_iter()
        .map(|program| Proc5 {
            program,
            op_index: 0,
            pc: Pc5::Start,
            keep: None,
            spurious_budget,
            invoked_at: 0,
        })
        .collect();
    let mut result = ModelResult {
        executions: 0,
        violation: None,
    };
    let mut history: Vec<Completed> = Vec::new();
    explore5(
        Word {
            tag: 0,
            val: initial,
        },
        initial,
        n,
        tag_modulus,
        &procs,
        &mut history,
        0,
        &mut result,
    );
    result
}

#[allow(clippy::too_many_arguments)]
fn explore5(
    word: Word,
    initial: u64,
    n: usize,
    tag_modulus: u64,
    procs: &[Proc5],
    history: &mut Vec<Completed>,
    clock: u64,
    result: &mut ModelResult,
) {
    if result.violation.is_some() {
        return;
    }
    let mut any_active = false;
    for (i, p) in procs.iter().enumerate() {
        let Some(&op) = p.program.get(p.op_index) else {
            continue;
        };
        any_active = true;
        let finish = |new_word: Word,
                          recorded: Op,
                          ret: Ret,
                          invoked: u64,
                          keep: Option<Word>,
                          history: &mut Vec<Completed>,
                          result: &mut ModelResult| {
            let mut procs2 = procs.to_vec();
            let me = &mut procs2[i];
            me.op_index += 1;
            me.pc = Pc5::Start;
            me.keep = keep;
            history.push(Completed {
                proc: ProcId::new(i),
                op: recorded,
                ret,
                invoked,
                returned: clock,
            });
            explore5(
                new_word, initial, n, tag_modulus, &procs2, history, clock + 1, result,
            );
            history.pop();
        };
        let goto = |new_pc: Pc5,
                        new_budget: u32,
                        invoked: u64,
                        history: &mut Vec<Completed>,
                        result: &mut ModelResult| {
            let mut procs2 = procs.to_vec();
            let me = &mut procs2[i];
            me.pc = new_pc;
            me.spurious_budget = new_budget;
            me.invoked_at = invoked;
            explore5(
                word, initial, n, tag_modulus, &procs2, history, clock + 1, result,
            );
        };

        match (p.pc, op) {
            (Pc5::Start, LlScOp::Ll) => {
                finish(
                    word,
                    Op::Ll,
                    Ret::Value(word.val),
                    clock,
                    Some(word),
                    history,
                    result,
                );
            }
            (Pc5::Start, LlScOp::Vl) => {
                let ok = p.keep == Some(word);
                finish(word, Op::Vl, Ret::Bool(ok), clock, p.keep, history, result);
            }
            (Pc5::Start, LlScOp::Sc(_)) => {
                goto(Pc5::ScRll, p.spurious_budget, clock, history, result);
            }
            (Pc5::ScRll, LlScOp::Sc(v)) => {
                if p.keep == Some(word) {
                    goto(Pc5::ScRsc, p.spurious_budget, p.invoked_at, history, result);
                } else {
                    finish(
                        word,
                        Op::Sc(v),
                        Ret::Bool(false),
                        p.invoked_at,
                        p.keep,
                        history,
                        result,
                    );
                }
            }
            (Pc5::ScRsc, LlScOp::Sc(v)) => {
                if p.keep == Some(word) {
                    // RSC success branch.
                    let keep = p.keep.expect("ScRsc requires a keep");
                    let new_word = Word {
                        tag: (keep.tag + 1) % tag_modulus,
                        val: v,
                    };
                    finish(
                        new_word,
                        Op::Sc(v),
                        Ret::Bool(true),
                        p.invoked_at,
                        p.keep,
                        history,
                        result,
                    );
                    // Spurious-failure branch.
                    if p.spurious_budget > 0 {
                        goto(
                            Pc5::ScRll,
                            p.spurious_budget - 1,
                            p.invoked_at,
                            history,
                            result,
                        );
                    }
                } else {
                    goto(Pc5::ScRll, p.spurious_budget, p.invoked_at, history, result);
                }
            }
            (Pc5::ScRll | Pc5::ScRsc, _) => unreachable!("loop states only occur inside Sc"),
        }
    }
    if !any_active {
        result.executions += 1;
        if !is_linearizable(crate::spec::LlScSpec::new(n, initial), history) {
            result.violation = Some(history.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn racing_cas_pair_is_linearizable_in_every_interleaving() {
        let r = check_figure3(
            vec![
                vec![CasOp { old: 0, new: 1 }],
                vec![CasOp { old: 0, new: 2 }],
            ],
            0,
            1 << 16,
            1,
        );
        assert!(r.holds(), "violation: {:#?}", r.violation);
        assert!(r.executions > 10, "only {} executions", r.executions);
    }

    #[test]
    fn aba_program_is_linearizable_with_real_tags() {
        // p0 tries CAS(0 -> 5); p1 drives 0 -> 7 -> 0. With a working tag,
        // all interleavings linearize.
        let r = check_figure3(
            vec![
                vec![CasOp { old: 0, new: 5 }],
                vec![CasOp { old: 0, new: 7 }, CasOp { old: 7, new: 0 }],
            ],
            0,
            1 << 16,
            1,
        );
        assert!(r.holds(), "violation: {:#?}", r.violation);
        assert!(r.executions > 50);
    }

    #[test]
    fn figure3_survives_degenerate_tags_because_cas_is_value_only() {
        // A finding worth a test of its own: CAS semantics only constrain
        // values, so value-ABA cannot make a *terminating* Figure-3
        // execution non-linearizable even with the tag disabled. The tags
        // buy wait-freedom of the retry loop (and protect the CAS-based
        // RSC simulation), not CAS safety.
        let r = check_figure3(
            vec![
                vec![CasOp { old: 0, new: 5 }],
                vec![CasOp { old: 0, new: 7 }, CasOp { old: 7, new: 0 }],
            ],
            0,
            1,
            0,
        );
        assert!(r.holds(), "violation: {:#?}", r.violation);
    }

    fn aba_llsc_program() -> Vec<Vec<LlScOp>> {
        // p0: LL … SC(5).  p1: two full LL;SC pairs driving 0 -> 7 -> 0.
        vec![
            vec![LlScOp::Ll, LlScOp::Sc(5)],
            vec![LlScOp::Ll, LlScOp::Sc(7), LlScOp::Ll, LlScOp::Sc(0)],
        ]
    }

    #[test]
    fn figure5_degenerate_tags_are_caught() {
        // For LL/VL/SC the spec says an SC must fail after ANY intervening
        // successful SC. With the tag disabled (modulus 1), p1's 0 -> 7 ->
        // 0 round trip restores the exact word and p0's SC falsely
        // succeeds in some interleaving: the checker must find it.
        let r = check_figure5(aba_llsc_program(), 0, 1, 0);
        assert!(
            !r.holds(),
            "the ABA violation was not found in {} executions",
            r.executions
        );
    }

    #[test]
    fn figure5_tag_wraparound_is_caught() {
        // Modulus 2 also wraps within p1's two SCs (tags 0 -> 1 -> 0).
        let r = check_figure5(aba_llsc_program(), 0, 2, 0);
        assert!(!r.holds(), "modulus-2 wraparound not caught");
    }

    #[test]
    fn figure5_is_linearizable_with_adequate_tags() {
        // Modulus 3 already cannot wrap within this program; all
        // interleavings (incl. spurious-failure branches) linearize.
        let r = check_figure5(aba_llsc_program(), 0, 3, 1);
        assert!(r.holds(), "violation: {:#?}", r.violation);
        assert!(r.executions > 100);
    }

    #[test]
    fn figure5_vl_agrees_with_spec_in_every_interleaving() {
        let r = check_figure5(
            vec![
                vec![LlScOp::Ll, LlScOp::Vl, LlScOp::Sc(1), LlScOp::Vl],
                vec![LlScOp::Ll, LlScOp::Sc(2)],
            ],
            0,
            1 << 16,
            0,
        );
        assert!(r.holds(), "violation: {:#?}", r.violation);
    }

    #[test]
    fn spurious_failures_add_branches_but_not_violations() {
        let base = check_figure3(
            vec![
                vec![CasOp { old: 0, new: 1 }],
                vec![CasOp { old: 1, new: 2 }],
            ],
            0,
            1 << 16,
            0,
        );
        let noisy = check_figure3(
            vec![
                vec![CasOp { old: 0, new: 1 }],
                vec![CasOp { old: 1, new: 2 }],
            ],
            0,
            1 << 16,
            2,
        );
        assert!(base.holds() && noisy.holds());
        assert!(
            noisy.executions > base.executions,
            "spurious branches must grow the space: {} vs {}",
            noisy.executions,
            base.executions
        );
    }

    #[test]
    fn three_processes_exhaust_cleanly() {
        let r = check_figure3(
            vec![
                vec![CasOp { old: 0, new: 1 }],
                vec![CasOp { old: 0, new: 2 }],
                vec![CasOp { old: 2, new: 3 }],
            ],
            0,
            1 << 16,
            0,
        );
        assert!(r.holds(), "violation: {:#?}", r.violation);
        assert!(r.executions > 100);
    }

    #[test]
    #[should_panic(expected = "tag modulus")]
    fn zero_modulus_rejected() {
        let _ = check_figure3(vec![vec![]], 0, 0, 0);
    }
}
