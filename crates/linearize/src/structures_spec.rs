//! Sequential specifications for the data structures in
//! `nbsp-structures`, so whole-structure histories can be checked — not
//! just the primitives they are built from.
//!
//! The paper's claim is transitive: if the emulated LL/VL/SC is
//! linearizable, algorithms proven correct over LL/VL/SC (stacks, queues
//! [4, 7]) stay correct. Checking the end structures directly closes the
//! loop on *our* implementations of those algorithms too.

use std::collections::VecDeque;

use nbsp_memsim::ProcId;

use crate::spec::SeqSpec;

/// Operations on a bounded LIFO stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StackOp {
    /// Push a value.
    Push(u64),
    /// Pop the top value.
    Pop,
}

/// Return values of stack operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StackRet {
    /// Push outcome: `true` on success, `false` when full.
    Pushed(bool),
    /// Pop outcome.
    Popped(Option<u64>),
}

/// The sequential bounded stack.
///
/// ```
/// use nbsp_linearize::{SeqSpec, StackOp, StackRet, StackSpec};
/// use nbsp_memsim::ProcId;
///
/// let mut s = StackSpec::new(2);
/// let p = ProcId::new(0);
/// assert_eq!(s.apply(p, &StackOp::Push(1)), StackRet::Pushed(true));
/// assert_eq!(s.apply(p, &StackOp::Push(2)), StackRet::Pushed(true));
/// assert_eq!(s.apply(p, &StackOp::Push(3)), StackRet::Pushed(false)); // full
/// assert_eq!(s.apply(p, &StackOp::Pop), StackRet::Popped(Some(2)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StackSpec {
    items: Vec<u64>,
    capacity: usize,
}

impl StackSpec {
    /// An empty stack of the given capacity.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        StackSpec {
            items: Vec::new(),
            capacity,
        }
    }
}

impl SeqSpec for StackSpec {
    type Op = StackOp;
    type Ret = StackRet;

    fn apply(&mut self, _proc: ProcId, op: &StackOp) -> StackRet {
        match *op {
            StackOp::Push(v) => {
                if self.items.len() < self.capacity {
                    self.items.push(v);
                    StackRet::Pushed(true)
                } else {
                    StackRet::Pushed(false)
                }
            }
            StackOp::Pop => StackRet::Popped(self.items.pop()),
        }
    }
}

/// Operations on a bounded FIFO queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueueOp {
    /// Enqueue a value at the tail.
    Enqueue(u64),
    /// Dequeue from the head.
    Dequeue,
}

/// Return values of queue operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueueRet {
    /// Enqueue outcome: `true` on success, `false` when full.
    Enqueued(bool),
    /// Dequeue outcome.
    Dequeued(Option<u64>),
}

/// The sequential bounded FIFO queue.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueueSpec {
    items: VecDeque<u64>,
    capacity: usize,
}

impl QueueSpec {
    /// An empty queue of the given capacity.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        QueueSpec {
            items: VecDeque::new(),
            capacity,
        }
    }
}

impl SeqSpec for QueueSpec {
    type Op = QueueOp;
    type Ret = QueueRet;

    fn apply(&mut self, _proc: ProcId, op: &QueueOp) -> QueueRet {
        match *op {
            QueueOp::Enqueue(v) => {
                if self.items.len() < self.capacity {
                    self.items.push_back(v);
                    QueueRet::Enqueued(true)
                } else {
                    QueueRet::Enqueued(false)
                }
            }
            QueueOp::Dequeue => QueueRet::Dequeued(self.items.pop_front()),
        }
    }
}

/// Operations on a sorted set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SetOp {
    /// Insert a key.
    Add(u64),
    /// Delete a key.
    Remove(u64),
    /// Membership test.
    Contains(u64),
}

/// Return values of set operations (all booleans: changed / changed /
/// present).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SetRet(pub bool);

/// The sequential sorted set (capacity-free: the implementation's
/// lifetime-insert budget is a resource limit, not part of the abstract
/// state, so histories that hit it must simply avoid asserting `Add` →
/// `true` there — the test harness sizes arenas to never fill).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct SetSpec {
    items: std::collections::BTreeSet<u64>,
}

impl SetSpec {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        SetSpec::default()
    }
}

impl SeqSpec for SetSpec {
    type Op = SetOp;
    type Ret = SetRet;

    fn apply(&mut self, _proc: ProcId, op: &SetOp) -> SetRet {
        SetRet(match *op {
            SetOp::Add(k) => self.items.insert(k),
            SetOp::Remove(k) => self.items.remove(&k),
            SetOp::Contains(k) => self.items.contains(&k),
        })
    }
}

/// Operations on an ordered map (the `OrdMap` interface).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MapOp {
    /// Insert or overwrite a key.
    Insert(u64, u64),
    /// Remove a key.
    Delete(u64),
    /// Look a key up.
    Get(u64),
}

/// Return values of map operations: the previous value under the key
/// (insert/delete) or the current one (get).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MapRet(pub Option<u64>);

/// The sequential ordered map (capacity-free, like [`SetSpec`]: the
/// implementation's lifetime record budget is a resource limit, not part
/// of the abstract state — harnesses size arenas to never fill).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct MapSpec {
    items: std::collections::BTreeMap<u64, u64>,
}

impl MapSpec {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        MapSpec::default()
    }
}

impl SeqSpec for MapSpec {
    type Op = MapOp;
    type Ret = MapRet;

    fn apply(&mut self, _proc: ProcId, op: &MapOp) -> MapRet {
        MapRet(match *op {
            MapOp::Insert(k, v) => self.items.insert(k, v),
            MapOp::Delete(k) => self.items.remove(&k),
            MapOp::Get(k) => self.items.get(&k).copied(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::is_linearizable;
    use crate::history::Completed;

    fn p0() -> ProcId {
        ProcId::new(0)
    }

    #[test]
    fn stack_lifo_discipline() {
        let mut s = StackSpec::new(8);
        for v in [1, 2, 3] {
            assert_eq!(s.apply(p0(), &StackOp::Push(v)), StackRet::Pushed(true));
        }
        assert_eq!(s.apply(p0(), &StackOp::Pop), StackRet::Popped(Some(3)));
        assert_eq!(s.apply(p0(), &StackOp::Pop), StackRet::Popped(Some(2)));
        assert_eq!(s.apply(p0(), &StackOp::Pop), StackRet::Popped(Some(1)));
        assert_eq!(s.apply(p0(), &StackOp::Pop), StackRet::Popped(None));
    }

    #[test]
    fn queue_fifo_discipline() {
        let mut q = QueueSpec::new(2);
        assert_eq!(q.apply(p0(), &QueueOp::Enqueue(1)), QueueRet::Enqueued(true));
        assert_eq!(q.apply(p0(), &QueueOp::Enqueue(2)), QueueRet::Enqueued(true));
        assert_eq!(q.apply(p0(), &QueueOp::Enqueue(3)), QueueRet::Enqueued(false));
        assert_eq!(q.apply(p0(), &QueueOp::Dequeue), QueueRet::Dequeued(Some(1)));
        assert_eq!(q.apply(p0(), &QueueOp::Dequeue), QueueRet::Dequeued(Some(2)));
        assert_eq!(q.apply(p0(), &QueueOp::Dequeue), QueueRet::Dequeued(None));
    }

    #[test]
    fn checker_works_on_stack_histories() {
        let ev = |p: usize, op, ret, inv, rt| Completed {
            proc: ProcId::new(p),
            op,
            ret,
            invoked: inv,
            returned: rt,
        };
        // Overlapping pushes, then two pops: any pop order matching some
        // interleaving is fine…
        let h = vec![
            ev(0, StackOp::Push(1), StackRet::Pushed(true), 0, 5),
            ev(1, StackOp::Push(2), StackRet::Pushed(true), 1, 6),
            ev(0, StackOp::Pop, StackRet::Popped(Some(1)), 7, 8),
            ev(1, StackOp::Pop, StackRet::Popped(Some(2)), 9, 10),
        ];
        assert!(is_linearizable(StackSpec::new(4), &h));
        // …but popping a value twice is not.
        let h = vec![
            ev(0, StackOp::Push(1), StackRet::Pushed(true), 0, 1),
            ev(0, StackOp::Pop, StackRet::Popped(Some(1)), 2, 3),
            ev(1, StackOp::Pop, StackRet::Popped(Some(1)), 4, 5),
        ];
        assert!(!is_linearizable(StackSpec::new(4), &h));
    }

    #[test]
    fn set_spec_semantics() {
        let mut s = SetSpec::new();
        assert_eq!(s.apply(p0(), &SetOp::Add(3)), SetRet(true));
        assert_eq!(s.apply(p0(), &SetOp::Add(3)), SetRet(false));
        assert_eq!(s.apply(p0(), &SetOp::Contains(3)), SetRet(true));
        assert_eq!(s.apply(p0(), &SetOp::Remove(3)), SetRet(true));
        assert_eq!(s.apply(p0(), &SetOp::Remove(3)), SetRet(false));
        assert_eq!(s.apply(p0(), &SetOp::Contains(3)), SetRet(false));
    }

    #[test]
    fn checker_works_on_queue_histories() {
        let ev = |p: usize, op, ret, inv, rt| Completed {
            proc: ProcId::new(p),
            op,
            ret,
            invoked: inv,
            returned: rt,
        };
        // FIFO violation: second-enqueued value dequeued first while the
        // enqueues were strictly ordered.
        let h = vec![
            ev(0, QueueOp::Enqueue(1), QueueRet::Enqueued(true), 0, 1),
            ev(0, QueueOp::Enqueue(2), QueueRet::Enqueued(true), 2, 3),
            ev(1, QueueOp::Dequeue, QueueRet::Dequeued(Some(2)), 4, 5),
        ];
        assert!(!is_linearizable(QueueSpec::new(4), &h));
        let mut ok = h;
        ok[2].ret = QueueRet::Dequeued(Some(1));
        assert!(is_linearizable(QueueSpec::new(4), &ok));
    }
}
