//! Sequential specifications (the paper's Figure 2) as state machines.

use nbsp_memsim::ProcId;

use crate::history::{Op, Ret};

/// A deterministic sequential specification: given a state and an
/// operation by a process, produce the mandated return value and the next
/// state.
pub trait SeqSpec: Clone + Eq + std::hash::Hash {
    /// The operation alphabet.
    type Op: Clone + std::fmt::Debug;
    /// The return-value type.
    type Ret: Clone + PartialEq + std::fmt::Debug;

    /// Applies `op` by `proc`, mutating the state and returning the result
    /// the specification mandates.
    fn apply(&mut self, proc: ProcId, op: &Self::Op) -> Self::Ret;
}

/// Figure 2's LL/VL/SC specification (with Read and CAS for mixed
/// histories): a value plus per-process `valid` bits; SC succeeds iff the
/// caller's bit is set and clears everyone's.
///
/// ```
/// use nbsp_linearize::{LlScSpec, SeqSpec, Op, Ret};
/// use nbsp_memsim::ProcId;
///
/// let mut s = LlScSpec::new(2, 5);
/// assert_eq!(s.apply(ProcId::new(0), &Op::Ll), Ret::Value(5));
/// assert_eq!(s.apply(ProcId::new(1), &Op::Ll), Ret::Value(5));
/// assert_eq!(s.apply(ProcId::new(0), &Op::Sc(6)), Ret::Bool(true));
/// assert_eq!(s.apply(ProcId::new(1), &Op::Sc(7)), Ret::Bool(false));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LlScSpec {
    value: u64,
    valid: Vec<bool>,
}

impl LlScSpec {
    /// Creates the specification state for `n` processes with `initial`
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize, initial: u64) -> Self {
        assert!(n > 0, "need at least one process");
        LlScSpec {
            value: initial,
            valid: vec![false; n],
        }
    }

    /// The current specification value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl SeqSpec for LlScSpec {
    type Op = Op;
    type Ret = Ret;

    fn apply(&mut self, proc: ProcId, op: &Op) -> Ret {
        let p = proc.index();
        assert!(p < self.valid.len(), "process {proc} out of spec range");
        match *op {
            Op::Ll => {
                self.valid[p] = true;
                Ret::Value(self.value)
            }
            Op::Vl => Ret::Bool(self.valid[p]),
            Op::Sc(v) => {
                if self.valid[p] {
                    self.value = v;
                    self.valid.fill(false);
                    Ret::Bool(true)
                } else {
                    Ret::Bool(false)
                }
            }
            Op::Read => Ret::Value(self.value),
            Op::Cas { old, new } => {
                if self.value == old {
                    self.value = new;
                    Ret::Bool(true)
                } else {
                    Ret::Bool(false)
                }
            }
        }
    }
}

/// Figure 2's CAS specification alone: a bare value supporting `Read` and
/// `Cas` (LL/VL/SC operations are rejected).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CasSpec {
    value: u64,
}

impl CasSpec {
    /// Creates the specification state with `initial` value.
    #[must_use]
    pub fn new(initial: u64) -> Self {
        CasSpec { value: initial }
    }

    /// The current specification value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl SeqSpec for CasSpec {
    type Op = Op;
    type Ret = Ret;

    fn apply(&mut self, _proc: ProcId, op: &Op) -> Ret {
        match *op {
            Op::Read => Ret::Value(self.value),
            Op::Cas { old, new } => {
                if self.value == old {
                    self.value = new;
                    Ret::Bool(true)
                } else {
                    Ret::Bool(false)
                }
            }
            Op::Ll | Op::Vl | Op::Sc(_) => {
                panic!("CasSpec does not model LL/VL/SC; use LlScSpec")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ll_then_sc_succeeds_once() {
        let mut s = LlScSpec::new(1, 0);
        assert_eq!(s.apply(ProcId::new(0), &Op::Ll), Ret::Value(0));
        assert_eq!(s.apply(ProcId::new(0), &Op::Sc(1)), Ret::Bool(true));
        // valid bit consumed:
        assert_eq!(s.apply(ProcId::new(0), &Op::Sc(2)), Ret::Bool(false));
        assert_eq!(s.value(), 1);
    }

    #[test]
    fn vl_reflects_valid_bit() {
        let mut s = LlScSpec::new(2, 0);
        assert_eq!(s.apply(ProcId::new(0), &Op::Vl), Ret::Bool(false));
        let _ = s.apply(ProcId::new(0), &Op::Ll);
        assert_eq!(s.apply(ProcId::new(0), &Op::Vl), Ret::Bool(true));
        let _ = s.apply(ProcId::new(1), &Op::Ll);
        let _ = s.apply(ProcId::new(1), &Op::Sc(3));
        assert_eq!(s.apply(ProcId::new(0), &Op::Vl), Ret::Bool(false));
    }

    #[test]
    fn cas_does_not_clear_valid_bits() {
        let mut s = LlScSpec::new(1, 4);
        let _ = s.apply(ProcId::new(0), &Op::Ll);
        assert_eq!(
            s.apply(ProcId::new(0), &Op::Cas { old: 4, new: 5 }),
            Ret::Bool(true)
        );
        assert_eq!(s.apply(ProcId::new(0), &Op::Vl), Ret::Bool(true));
    }

    #[test]
    fn read_does_not_disturb_state() {
        let mut s = LlScSpec::new(1, 9);
        let _ = s.apply(ProcId::new(0), &Op::Ll);
        assert_eq!(s.apply(ProcId::new(0), &Op::Read), Ret::Value(9));
        assert_eq!(s.apply(ProcId::new(0), &Op::Sc(1)), Ret::Bool(true));
    }

    #[test]
    fn cas_spec_basics() {
        let mut s = CasSpec::new(1);
        assert_eq!(s.apply(ProcId::new(0), &Op::Cas { old: 2, new: 3 }), Ret::Bool(false));
        assert_eq!(s.apply(ProcId::new(0), &Op::Cas { old: 1, new: 3 }), Ret::Bool(true));
        assert_eq!(s.apply(ProcId::new(0), &Op::Read), Ret::Value(3));
    }

    #[test]
    #[should_panic(expected = "does not model")]
    fn cas_spec_rejects_ll() {
        let mut s = CasSpec::new(0);
        let _ = s.apply(ProcId::new(0), &Op::Ll);
    }
}
