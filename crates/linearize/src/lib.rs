//! # nbsp-linearize — executable linearizability checking
//!
//! The paper defers its correctness arguments to hand proofs in the full
//! version ("we prove that each of our results yields a linearizable \[9\]
//! implementation of the stated primitives"). This crate replaces what a
//! repository cannot ship — hand proofs — with what it can: a mechanical
//! [Wing & Gong]-style checker that decides whether a recorded concurrent
//! history of LL/VL/SC/CAS operations is linearizable with respect to the
//! Figure-2 sequential specification.
//!
//! * [`history`] — concurrent history recording with a global logical
//!   clock (an operation `A` really-precedes `B` iff `A` returned before
//!   `B` was invoked).
//! * [`spec`] — the Figure-2 semantics as deterministic state machines.
//! * [`checker`] — exhaustive DFS over linearization orders with
//!   memoization.
//!
//! The checker is validated in both directions: correct implementations
//! pass on thousands of randomized schedules, and a deliberately broken
//! implementation (SC by value comparison without a tag, i.e. the ABA bug)
//! is caught.
//!
//! [Wing & Gong]: https://doi.org/10.1006/jpdc.1993.1015

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod checker;
pub mod history;
pub mod modelcheck;
pub mod modelcheck_bounded;
pub mod modelcheck_wide;
pub mod spec;
pub mod structures_spec;

pub use checker::is_linearizable;
pub use history::{Completed, HistoryClock, Op, Recorder, Ret};
pub use spec::{CasSpec, LlScSpec, SeqSpec};
pub use structures_spec::{
    MapOp, MapRet, MapSpec, QueueOp, QueueRet, QueueSpec, SetOp, SetRet, SetSpec, StackOp,
    StackRet, StackSpec,
};
