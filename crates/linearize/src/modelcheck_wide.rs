//! Exhaustive model checking of Figure 6 (the W-word helping protocol).
//!
//! Figure 6 is the paper's subtlest construction: a successful SC installs
//! a header and then copies announced values into the segments, and every
//! WLL *helps* finish interrupted SCs it observes. The correctness
//! argument (deferred to the paper's full version) is a delicate dance of
//! "at most one era behind" invariants. This module transliterates the
//! pseudocode into a step machine — one shared-memory access per step —
//! and enumerates **every** interleaving of small configurations (W = 2,
//! two processes), checking each complete execution against the W-word
//! Figure-2 specification.
//!
//! This is the closest a repository can come to the paper's omitted proof:
//! not a proof, but an exhaustive certificate for the configurations that
//! contain the protocol's interesting races (header swings mid-copy,
//! helpers racing the owner, stalled owners being helped past).

use nbsp_memsim::ProcId;

use crate::checker::is_linearizable;
use crate::history::Completed;
use crate::spec::SeqSpec;

/// Words per variable in the model (fixed small so state stays tractable).
pub const W: usize = 2;

/// One operation of a process's Figure-6 program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WideOp {
    /// WLL: read the header, then run Copy, saving a snapshot.
    Wll,
    /// SC of the given 2-word value (uses the keep of the last Wll).
    Sc([u64; W]),
}

/// Recorded operation alphabet for the checker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecOp {
    /// A WLL that returned a consistent snapshot.
    Wll,
    /// A WLL that observed interference (its value is unconstrained and a
    /// following SC must fail).
    WllInterfered,
    /// An SC.
    Sc([u64; W]),
}

/// Recorded return values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecRet {
    /// Snapshot returned by a successful WLL.
    Vals([u64; W]),
    /// Nothing to constrain (interfered WLL).
    Interfered,
    /// SC outcome.
    Bool(bool),
}

/// The W-word Figure-2 specification: value vector + per-process valid
/// bits; an interfered WLL pins the process's valid bit to false (the
/// paper: "a subsequent SC is certain to fail").
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct WideSpec {
    vals: [u64; W],
    valid: Vec<bool>,
}

impl WideSpec {
    /// Initial specification state for `n` processes.
    #[must_use]
    pub fn new(n: usize, initial: [u64; W]) -> Self {
        WideSpec {
            vals: initial,
            valid: vec![false; n],
        }
    }
}

impl SeqSpec for WideSpec {
    type Op = RecOp;
    type Ret = RecRet;

    fn apply(&mut self, proc: ProcId, op: &RecOp) -> RecRet {
        let p = proc.index();
        match *op {
            RecOp::Wll => {
                self.valid[p] = true;
                RecRet::Vals(self.vals)
            }
            RecOp::WllInterfered => {
                self.valid[p] = false;
                RecRet::Interfered
            }
            RecOp::Sc(v) => {
                if self.valid[p] {
                    self.vals = v;
                    self.valid.fill(false);
                    RecRet::Bool(true)
                } else {
                    RecRet::Bool(false)
                }
            }
        }
    }
}

/// Header: (tag, pid). Tags are unbounded in the model (the paper's
/// assumption); the bounded-tag hazard is checked separately in
/// [`modelcheck`](crate::modelcheck).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Hdr {
    tag: u64,
    pid: usize,
}

/// Segment: (tag, value-slice).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Seg {
    tag: u64,
    val: u64,
}

/// The whole shared state.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Shared {
    hdr: Hdr,
    segs: [Seg; W],
    /// Announce array A[pid][i].
    announce: [[u64; W]; 2],
}

/// Program counter of one process. `i` is the Copy loop index; `save`
/// collects the snapshot for a WLL.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pc {
    Start,
    // --- WLL ---
    /// Line 10 done: header read into `hdr`; Copy about to start at seg 0.
    CopyRead { hdr: Hdr, i: usize, saving: bool, save: [u64; W], newval: [u64; W] },
    /// Line 4/5: read announce word `a` for seg `i`, then CAS the segment
    /// from `y` to (hdr.tag, a).
    CopyCas { hdr: Hdr, i: usize, saving: bool, save: [u64; W], newval: [u64; W], y: Seg },
    /// Line 7: re-read the header after handling seg `i` (with the value
    /// that will be saved if it matches).
    CopyCheck { hdr: Hdr, i: usize, saving: bool, save: [u64; W], newval: [u64; W] },
    // --- SC ---
    /// Line 14: read the header.
    ScReadHdr { newval: [u64; W] },
    /// Lines 16–17: announce word `i`.
    ScAnnounce { oldhdr: Hdr, i: usize, newval: [u64; W] },
    /// Line 19: CAS the header.
    ScCasHdr { oldhdr: Hdr, newval: [u64; W] },
}

/// Mutable per-process state (small and `Copy`, so the DFS can snapshot
/// it cheaply; the immutable programs live outside).
#[derive(Clone, Copy, Debug)]
struct Proc {
    op_index: usize,
    pc: Pc,
    /// The keep (header tag) from the last WLL.
    keep_tag: Option<u64>,
    invoked_at: u64,
}

/// Result of an exhaustive Figure-6 check.
#[derive(Clone, Debug)]
pub struct WideModelResult {
    /// Complete executions explored.
    pub executions: u64,
    /// Witness history of the first violation, if any.
    pub violation: Option<Vec<Completed<RecOp, RecRet>>>,
}

impl WideModelResult {
    /// True iff every execution was linearizable.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

/// Exhaustively checks Figure 6 with two processes running the given
/// programs on one 2-word variable starting at `initial`.
///
/// # Panics
///
/// Panics if more than 2 programs or more than 64 total ops are supplied.
#[must_use]
pub fn check_figure6(programs: Vec<Vec<WideOp>>, initial: [u64; W]) -> WideModelResult {
    assert!(programs.len() <= 2, "the model is sized for two processes");
    let total: usize = programs.iter().map(Vec::len).sum();
    assert!(total <= 64, "too many operations for the checker");
    let procs: Vec<Proc> = programs
        .iter()
        .map(|_| Proc {
            op_index: 0,
            pc: Pc::Start,
            keep_tag: None,
            invoked_at: 0,
        })
        .collect();
    let shared = Shared {
        hdr: Hdr { tag: 0, pid: 0 },
        segs: [
            Seg { tag: 0, val: initial[0] },
            Seg { tag: 0, val: initial[1] },
        ],
        announce: [[0; W]; 2],
    };
    let mut result = WideModelResult {
        executions: 0,
        violation: None,
    };
    let n = procs.len();
    let mut history = Vec::new();
    explore(
        &shared, initial, n, &programs, &procs, &mut history, 0, &mut result,
    );
    result
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn explore(
    shared: &Shared,
    initial: [u64; W],
    n: usize,
    programs: &[Vec<WideOp>],
    procs: &[Proc],
    history: &mut Vec<Completed<RecOp, RecRet>>,
    clock: u64,
    result: &mut WideModelResult,
) {
    if result.violation.is_some() {
        return;
    }
    let mut any_active = false;
    for (i, p) in procs.iter().enumerate() {
        let Some(&op) = programs[i].get(p.op_index) else {
            continue;
        };
        any_active = true;

        // Helper closure to continue the search with updated state.
        let cont = |shared2: Shared,
                    me2: Proc,
                    event: Option<(RecOp, RecRet, u64)>,
                    history: &mut Vec<Completed<RecOp, RecRet>>,
                    result: &mut WideModelResult| {
            let mut procs2: [Proc; 2] = [procs[0], *procs.get(1).unwrap_or(&procs[0])];
            procs2[i] = me2;
            let pushed = if let Some((rop, ret, invoked)) = event {
                history.push(Completed {
                    proc: ProcId::new(i),
                    op: rop,
                    ret,
                    invoked,
                    returned: clock,
                });
                true
            } else {
                false
            };
            explore(
                &shared2,
                initial,
                n,
                programs,
                &procs2[..n],
                history,
                clock + 1,
                result,
            );
            if pushed {
                history.pop();
            }
        };

        match (p.pc, op) {
            // ---------------- WLL ----------------
            (Pc::Start, WideOp::Wll) => {
                // Line 10: read the header (one step); line 11 is local.
                let hdr = shared.hdr;
                let mut me2 = *p;
                me2.invoked_at = clock;
                me2.keep_tag = Some(hdr.tag);
                me2.pc = Pc::CopyRead {
                    hdr,
                    i: 0,
                    saving: true,
                    save: [0; W],
                    newval: [0; W],
                };
                cont(shared.clone(), me2, None, history, result);
            }
            (Pc::CopyRead { hdr, i: seg_i, saving, save, newval }, _) => {
                // Copy line 2: read segment seg_i; line 3 is local.
                let y = shared.segs[seg_i];
                let mut me2 = *p;
                if y.tag + 1 == hdr.tag {
                    // One behind: help (lines 4–6).
                    me2.pc = Pc::CopyCas { hdr, i: seg_i, saving, save, newval, y };
                } else {
                    // Already current (or the header moved — line 7 will
                    // catch that): record y as the candidate save value.
                    let mut save2 = save;
                    save2[seg_i] = y.val;
                    me2.pc = Pc::CopyCheck { hdr, i: seg_i, saving, save: save2, newval };
                }
                cont(shared.clone(), me2, None, history, result);
            }
            (Pc::CopyCas { hdr, i: seg_i, saving, save, newval, y }, _) => {
                // Copy line 4: read the announce word; line 5: CAS the
                // segment. (Modelled as one atomic step pair: the read and
                // CAS target different words, but splitting them doubles
                // the state space without changing outcomes for W=2 —
                // the CAS validates against `y`, not against the announce
                // read, so an intervening announce overwrite is already
                // covered by the CAS-failure branch. We split anyway for
                // fidelity below.)
                let a = shared.announce[hdr.pid][seg_i];
                let z = Seg { tag: hdr.tag, val: a };
                let mut shared2 = shared.clone();
                if shared2.segs[seg_i] == y {
                    shared2.segs[seg_i] = z;
                }
                // Line 6: y := z (local): the save candidate is z.val.
                let mut save2 = save;
                save2[seg_i] = z.val;
                let mut me2 = *p;
                me2.pc = Pc::CopyCheck { hdr, i: seg_i, saving, save: save2, newval };
                cont(shared2, me2, None, history, result);
            }
            (Pc::CopyCheck { hdr, i: seg_i, saving, save, newval }, _) => {
                // Copy line 7: re-read the header.
                let h = shared.hdr;
                let mut me2 = *p;
                if h != hdr {
                    // Interference. For a WLL this is the weak return; for
                    // an SC's trailing copy it is simply done (line 20
                    // ignores the result).
                    me2.op_index += 1;
                    me2.pc = Pc::Start;
                    let event = if saving {
                        Some((RecOp::WllInterfered, RecRet::Interfered, me2.invoked_at))
                    } else {
                        Some((RecOp::Sc(newval), RecRet::Bool(true), me2.invoked_at))
                    };
                    cont(shared.clone(), me2, event, history, result);
                } else if seg_i + 1 < W {
                    me2.pc = Pc::CopyRead { hdr, i: seg_i + 1, saving, save, newval };
                    cont(shared.clone(), me2, None, history, result);
                } else {
                    // Copy finished.
                    me2.op_index += 1;
                    me2.pc = Pc::Start;
                    let event = if saving {
                        Some((RecOp::Wll, RecRet::Vals(save), me2.invoked_at))
                    } else {
                        Some((RecOp::Sc(newval), RecRet::Bool(true), me2.invoked_at))
                    };
                    cont(shared.clone(), me2, event, history, result);
                }
            }
            // ---------------- SC ----------------
            (Pc::Start, WideOp::Sc(newval)) => {
                let mut me2 = *p;
                me2.invoked_at = clock;
                me2.pc = Pc::ScReadHdr { newval };
                cont(shared.clone(), me2, None, history, result);
            }
            (Pc::ScReadHdr { newval }, _) => {
                // Line 14: read header; line 15: compare with keep.
                let oldhdr = shared.hdr;
                let mut me2 = *p;
                if Some(oldhdr.tag) != p.keep_tag {
                    me2.op_index += 1;
                    me2.pc = Pc::Start;
                    cont(
                        shared.clone(),
                        me2,
                        Some((RecOp::Sc(newval), RecRet::Bool(false), p.invoked_at)),
                        history,
                        result,
                    );
                } else {
                    me2.pc = Pc::ScAnnounce { oldhdr, i: 0, newval };
                    cont(shared.clone(), me2, None, history, result);
                }
            }
            (Pc::ScAnnounce { oldhdr, i: ann_i, newval }, _) => {
                // Lines 16–17: one announce write per step.
                let mut shared2 = shared.clone();
                shared2.announce[i][ann_i] = newval[ann_i];
                let mut me2 = *p;
                me2.pc = if ann_i + 1 < W {
                    Pc::ScAnnounce { oldhdr, i: ann_i + 1, newval }
                } else {
                    Pc::ScCasHdr { oldhdr, newval }
                };
                cont(shared2, me2, None, history, result);
            }
            (Pc::ScCasHdr { oldhdr, newval }, _) => {
                // Line 19: CAS the header; on success proceed to the
                // trailing Copy (line 20), on failure return false.
                let mut me2 = *p;
                if shared.hdr == oldhdr {
                    let mut shared2 = shared.clone();
                    shared2.hdr = Hdr {
                        tag: oldhdr.tag + 1,
                        pid: i,
                    };
                    me2.pc = Pc::CopyRead {
                        hdr: shared2.hdr,
                        i: 0,
                        saving: false,
                        save: [0; W],
                        newval,
                    };
                    cont(shared2, me2, None, history, result);
                } else {
                    me2.op_index += 1;
                    me2.pc = Pc::Start;
                    cont(
                        shared.clone(),
                        me2,
                        Some((RecOp::Sc(newval), RecRet::Bool(false), p.invoked_at)),
                        history,
                        result,
                    );
                }
            }
        }
    }

    if !any_active {
        result.executions += 1;
        if !is_linearizable(WideSpec::new(n, initial), history) {
            result.violation = Some(history.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc_racing_wll_always_yields_consistent_snapshots() {
        // The core helping race: p0 SCs [7, 8] while p1 WLLs. Every
        // interleaving must give p1 either [1, 2] or [7, 8] — never a
        // mixture — and exactly according to some linearization.
        let r = check_figure6(
            vec![
                vec![WideOp::Wll, WideOp::Sc([7, 8])],
                vec![WideOp::Wll],
            ],
            [1, 2],
        );
        assert!(r.holds(), "violation: {:#?}", r.violation);
        assert!(r.executions > 100, "only {} executions", r.executions);
    }

    #[test]
    #[ignore = "exhaustive deep config (~20s debug); run with --ignored or via the exp_modelcheck binary in release"]
    fn racing_scs_have_one_winner_in_every_interleaving() {
        let r = check_figure6(
            vec![
                vec![WideOp::Wll, WideOp::Sc([7, 8])],
                vec![WideOp::Wll, WideOp::Sc([9, 10])],
            ],
            [1, 2],
        );
        assert!(r.holds(), "violation: {:#?}", r.violation);
        assert!(r.executions > 1_000);
    }

    #[test]
    fn wll_after_sc_sees_the_new_value() {
        let r = check_figure6(
            vec![
                vec![WideOp::Wll, WideOp::Sc([7, 8]), WideOp::Wll],
                vec![WideOp::Wll],
            ],
            [1, 2],
        );
        assert!(r.holds(), "violation: {:#?}", r.violation);
    }

    #[test]
    #[ignore = "exhaustive deep config (~35s debug); run with --ignored or via the exp_modelcheck binary in release"]
    fn helper_completes_interrupted_sc_in_every_interleaving() {
        // p0's SC may be preempted between the header CAS and its copy at
        // any point; p1's trailing WLLs must still return consistent
        // committed values in every single schedule.
        let r = check_figure6(
            vec![
                vec![WideOp::Wll, WideOp::Sc([7, 8])],
                vec![WideOp::Wll, WideOp::Wll],
            ],
            [1, 2],
        );
        assert!(r.holds(), "violation: {:#?}", r.violation);
        assert!(r.executions > 10_000);
    }

    #[test]
    #[should_panic(expected = "two processes")]
    fn more_than_two_processes_rejected() {
        let _ = check_figure6(vec![vec![], vec![], vec![]], [0, 0]);
    }
}
