//! Concurrent history recording.
//!
//! Each operation is stamped with two tickets from a shared logical clock:
//! one drawn just before the operation's first shared-memory step could
//! have happened, one just after its last. Operation `A` *really precedes*
//! `B` iff `A.returned < B.invoked`; overlapping operations may be
//! linearized in either order. This is the standard history model of
//! Herlihy & Wing (the paper's \[9\]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nbsp_memsim::ProcId;

/// An operation on a single LL/VL/SC/CAS variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Load-linked.
    Ll,
    /// Validate.
    Vl,
    /// Store-conditional of the given value.
    Sc(u64),
    /// Plain atomic read.
    Read,
    /// Compare-and-swap.
    Cas {
        /// Expected value.
        old: u64,
        /// Replacement value.
        new: u64,
    },
}

/// An operation's observed return value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ret {
    /// A value (from `Ll` or `Read`).
    Value(u64),
    /// A boolean (from `Vl`, `Sc`, `Cas`).
    Bool(bool),
}

/// One completed operation with its real-time interval.
///
/// Generic over the operation and return types so the same machinery
/// checks raw LL/VL/SC histories and whole data structures (stacks,
/// queues) against their sequential specifications; defaults to the
/// LL/VL/SC domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Completed<O = Op, R = Ret> {
    /// The process that executed the operation.
    pub proc: ProcId,
    /// What was executed.
    pub op: O,
    /// What it returned.
    pub ret: R,
    /// Clock ticket drawn at invocation.
    pub invoked: u64,
    /// Clock ticket drawn at response.
    pub returned: u64,
}

impl<O, R> Completed<O, R> {
    /// True iff `self` finished before `other` began (real-time order).
    #[must_use]
    pub fn really_precedes(&self, other: &Completed<O, R>) -> bool {
        self.returned < other.invoked
    }
}

/// The shared logical clock for one recorded execution.
#[derive(Clone, Debug, Default)]
pub struct HistoryClock {
    ticks: Arc<AtomicU64>,
}

impl HistoryClock {
    /// Creates a clock at zero.
    #[must_use]
    pub fn new() -> Self {
        HistoryClock::default()
    }

    /// Draws the next ticket.
    #[must_use]
    pub fn tick(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::SeqCst)
    }

    /// Creates a per-thread recorder for process `proc` (LL/VL/SC domain).
    #[must_use]
    pub fn recorder(&self, proc: ProcId) -> Recorder {
        self.recorder_for(proc)
    }

    /// Creates a per-thread recorder for process `proc` with custom
    /// operation and return types (for data-structure histories).
    #[must_use]
    pub fn recorder_for<O, R>(&self, proc: ProcId) -> Recorder<O, R> {
        Recorder {
            clock: self.clone(),
            proc,
            events: Vec::new(),
        }
    }
}

/// A per-thread event log; merge the logs of all threads into one history
/// after joining.
///
/// ```
/// use nbsp_linearize::{HistoryClock, Op, Recorder, Ret};
/// use nbsp_memsim::ProcId;
///
/// let clock = HistoryClock::new();
/// let mut rec = clock.recorder(ProcId::new(0));
/// let value = rec.record(Op::Read, || Ret::Value(42));
/// assert_eq!(value, Ret::Value(42));
/// let history = rec.into_events();
/// assert_eq!(history.len(), 1);
/// assert!(history[0].invoked < history[0].returned);
/// ```
#[derive(Debug)]
pub struct Recorder<O = Op, R = Ret> {
    clock: HistoryClock,
    proc: ProcId,
    events: Vec<Completed<O, R>>,
}

impl<O, R: Clone> Recorder<O, R> {
    /// Runs `f` as operation `op`, recording its interval and result, and
    /// returns the result.
    pub fn record(&mut self, op: O, f: impl FnOnce() -> R) -> R {
        let invoked = self.clock.tick();
        let ret = f();
        let returned = self.clock.tick();
        self.events.push(Completed {
            proc: self.proc,
            op,
            ret: ret.clone(),
            invoked,
            returned,
        });
        ret
    }

    /// This recorder's process.
    #[must_use]
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    /// Consumes the recorder, yielding its events.
    #[must_use]
    pub fn into_events(self) -> Vec<Completed<O, R>> {
        self.events
    }
}

/// Merges per-thread logs into one history sorted by invocation ticket
/// (sorting is cosmetic; the checker uses only the interval order).
#[must_use]
pub fn merge<O, R>(
    logs: impl IntoIterator<Item = Vec<Completed<O, R>>>,
) -> Vec<Completed<O, R>> {
    let mut all: Vec<Completed<O, R>> = logs.into_iter().flatten().collect();
    all.sort_by_key(|e| e.invoked);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickets_are_strictly_increasing() {
        let c = HistoryClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(a < b);
    }

    #[test]
    fn recorder_stamps_intervals() {
        let c = HistoryClock::new();
        let mut r = c.recorder(ProcId::new(3));
        let _ = r.record(Op::Ll, || Ret::Value(9));
        let _ = r.record(Op::Sc(10), || Ret::Bool(true));
        let ev = r.into_events();
        assert_eq!(ev.len(), 2);
        assert!(ev[0].really_precedes(&ev[1]));
        assert!(!ev[1].really_precedes(&ev[0]));
        assert_eq!(ev[0].proc, ProcId::new(3));
    }

    #[test]
    fn concurrent_ops_do_not_precede_each_other() {
        // Hand-build two overlapping intervals.
        let a = Completed {
            proc: ProcId::new(0),
            op: Op::Read,
            ret: Ret::Value(0),
            invoked: 0,
            returned: 5,
        };
        let b = Completed {
            proc: ProcId::new(1),
            op: Op::Read,
            ret: Ret::Value(0),
            invoked: 3,
            returned: 7,
        };
        assert!(!a.really_precedes(&b));
        assert!(!b.really_precedes(&a));
    }

    #[test]
    fn merge_sorts_by_invocation() {
        let c = HistoryClock::new();
        let mut r0 = c.recorder(ProcId::new(0));
        let mut r1 = c.recorder(ProcId::new(1));
        let _ = r0.record(Op::Read, || Ret::Value(1));
        let _ = r1.record(Op::Read, || Ret::Value(2));
        let _ = r0.record(Op::Read, || Ret::Value(3));
        let h = merge([r1.into_events(), r0.into_events()]);
        assert_eq!(h.len(), 3);
        assert!(h.windows(2).all(|w| w[0].invoked < w[1].invoked));
    }

    #[test]
    fn clock_is_shared_across_threads() {
        let c = HistoryClock::new();
        let logs: Vec<Vec<Completed>> = std::thread::scope(|s| {
            (0..4)
                .map(|t| {
                    let mut rec = c.recorder(ProcId::new(t));
                    s.spawn(move || {
                        for _ in 0..100 {
                            let _ = rec.record(Op::Read, || Ret::Value(0));
                        }
                        rec.into_events()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let merged = merge(logs);
        assert_eq!(merged.len(), 400);
        // All tickets distinct:
        let mut tickets: Vec<u64> = merged
            .iter()
            .flat_map(|e| [e.invoked, e.returned])
            .collect();
        tickets.sort_unstable();
        tickets.dedup();
        assert_eq!(tickets.len(), 800);
    }
}
