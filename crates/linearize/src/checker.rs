//! The Wing & Gong linearizability checker.
//!
//! A history is linearizable iff there is a total order of its operations
//! that (a) respects real-time precedence and (b) is a legal sequential
//! execution of the specification producing exactly the recorded return
//! values. The checker searches linearization orders depth-first, pruning
//! with a memo of visited (linearized-set, specification-state) pairs —
//! exponential in the worst case, comfortably fast for the ≤ 24-operation
//! histories the test harness generates.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use crate::history::Completed;
use crate::spec::SeqSpec;

/// Maximum history length the checker accepts (operations are tracked in a
/// 64-bit linearized-set mask).
pub const MAX_OPS: usize = 64;

/// Decides whether `history` is linearizable with respect to the
/// specification starting in `init`.
///
/// # Panics
///
/// Panics if the history exceeds [`MAX_OPS`] operations.
///
/// ```
/// use nbsp_linearize::{is_linearizable, Completed, LlScSpec, Op, Ret};
/// use nbsp_memsim::ProcId;
///
/// // p0: LL -> 0 ........ SC(1) -> true
/// // p1:      LL -> 0 .................. SC(2) -> false
/// let history = vec![
///     Completed { proc: ProcId::new(0), op: Op::Ll, ret: Ret::Value(0), invoked: 0, returned: 1 },
///     Completed { proc: ProcId::new(1), op: Op::Ll, ret: Ret::Value(0), invoked: 2, returned: 3 },
///     Completed { proc: ProcId::new(0), op: Op::Sc(1), ret: Ret::Bool(true), invoked: 4, returned: 5 },
///     Completed { proc: ProcId::new(1), op: Op::Sc(2), ret: Ret::Bool(false), invoked: 6, returned: 7 },
/// ];
/// assert!(is_linearizable(LlScSpec::new(2, 0), &history));
/// ```
#[must_use]
pub fn is_linearizable<S: SeqSpec>(init: S, history: &[Completed<S::Op, S::Ret>]) -> bool {
    assert!(
        history.len() <= MAX_OPS,
        "history of {} operations exceeds the checker's limit of {MAX_OPS}",
        history.len()
    );
    if history.is_empty() {
        return true;
    }
    // preds[i] = bitmask of operations that must be linearized before i.
    let n = history.len();
    let mut preds = vec![0u64; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && history[j].really_precedes(&history[i]) {
                preds[i] |= 1 << j;
            }
        }
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1 << n) - 1 };
    let mut memo: HashSet<(u64, u64)> = HashSet::new();
    dfs(&init, 0, full, &preds, history, &mut memo)
}

fn state_fingerprint<S: Hash>(state: &S) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    state.hash(&mut h);
    h.finish()
}

fn dfs<S: SeqSpec>(
    state: &S,
    done: u64,
    full: u64,
    preds: &[u64],
    history: &[Completed<S::Op, S::Ret>],
    memo: &mut HashSet<(u64, u64)>,
) -> bool {
    if done == full {
        return true;
    }
    if !memo.insert((done, state_fingerprint(state))) {
        return false; // already explored this configuration
    }
    for (i, ev) in history.iter().enumerate() {
        let bit = 1u64 << i;
        if done & bit != 0 {
            continue; // already linearized
        }
        if preds[i] & !done != 0 {
            continue; // a real-time predecessor is still pending
        }
        let mut next = state.clone();
        if next.apply(ev.proc, &ev.op) != ev.ret {
            continue; // the spec forbids this return value here
        }
        if dfs(&next, done | bit, full, preds, history, memo) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Op, Ret};
    use crate::spec::{CasSpec, LlScSpec};
    use nbsp_memsim::ProcId;

    fn ev(p: usize, op: Op, ret: Ret, inv: u64, ret_t: u64) -> Completed {
        Completed {
            proc: ProcId::new(p),
            op,
            ret,
            invoked: inv,
            returned: ret_t,
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(is_linearizable(LlScSpec::new(1, 0), &[]));
    }

    #[test]
    fn sequential_legal_history_passes() {
        let h = vec![
            ev(0, Op::Ll, Ret::Value(0), 0, 1),
            ev(0, Op::Sc(1), Ret::Bool(true), 2, 3),
            ev(0, Op::Read, Ret::Value(1), 4, 5),
        ];
        assert!(is_linearizable(LlScSpec::new(1, 0), &h));
    }

    #[test]
    fn wrong_read_value_fails() {
        let h = vec![
            ev(0, Op::Ll, Ret::Value(0), 0, 1),
            ev(0, Op::Sc(1), Ret::Bool(true), 2, 3),
            ev(0, Op::Read, Ret::Value(0), 4, 5), // stale read after SC
        ];
        assert!(!is_linearizable(LlScSpec::new(1, 0), &h));
    }

    #[test]
    fn both_scs_succeeding_is_not_linearizable() {
        // Two LLs then two SCs: only one SC may succeed.
        let h = vec![
            ev(0, Op::Ll, Ret::Value(0), 0, 1),
            ev(1, Op::Ll, Ret::Value(0), 2, 3),
            ev(0, Op::Sc(1), Ret::Bool(true), 4, 5),
            ev(1, Op::Sc(2), Ret::Bool(true), 6, 7),
        ];
        assert!(!is_linearizable(LlScSpec::new(2, 0), &h));
    }

    #[test]
    fn overlapping_scs_one_winner_passes() {
        let h = vec![
            ev(0, Op::Ll, Ret::Value(0), 0, 1),
            ev(1, Op::Ll, Ret::Value(0), 0, 2),
            ev(0, Op::Sc(1), Ret::Bool(true), 3, 6),
            ev(1, Op::Sc(2), Ret::Bool(false), 4, 7),
        ];
        assert!(is_linearizable(LlScSpec::new(2, 0), &h));
    }

    #[test]
    fn overlap_allows_reordering() {
        // A read overlapping an SC may see either the old or new value.
        for seen in [0u64, 9] {
            let h = vec![
                ev(0, Op::Ll, Ret::Value(0), 0, 1),
                ev(0, Op::Sc(9), Ret::Bool(true), 2, 10),
                ev(1, Op::Read, Ret::Value(seen), 3, 9),
            ];
            assert!(
                is_linearizable(LlScSpec::new(2, 0), &h),
                "read of {seen} should be allowed"
            );
        }
    }

    #[test]
    fn real_time_order_is_enforced() {
        // The read strictly FOLLOWS the successful SC, so it must see 9.
        let h = vec![
            ev(0, Op::Ll, Ret::Value(0), 0, 1),
            ev(0, Op::Sc(9), Ret::Bool(true), 2, 3),
            ev(1, Op::Read, Ret::Value(0), 4, 5),
        ];
        assert!(!is_linearizable(LlScSpec::new(2, 0), &h));
    }

    #[test]
    fn aba_violation_is_caught() {
        // p0: LL -> 0, later SC(5) -> true. In between (really preceding
        // the SC), p1 performs two successful complete LL/SC pairs taking
        // the value 0 -> 7 -> 0. p0's SC must fail; a history where it
        // succeeds is not linearizable.
        let h = vec![
            ev(0, Op::Ll, Ret::Value(0), 0, 1),
            ev(1, Op::Ll, Ret::Value(0), 2, 3),
            ev(1, Op::Sc(7), Ret::Bool(true), 4, 5),
            ev(1, Op::Ll, Ret::Value(7), 6, 7),
            ev(1, Op::Sc(0), Ret::Bool(true), 8, 9),
            ev(0, Op::Sc(5), Ret::Bool(true), 10, 11), // the ABA bug
        ];
        assert!(!is_linearizable(LlScSpec::new(2, 0), &h));
        // The honest outcome passes:
        let mut ok = h;
        ok[5].ret = Ret::Bool(false);
        assert!(is_linearizable(LlScSpec::new(2, 0), &ok));
    }

    #[test]
    fn vl_must_agree_with_interference() {
        let h = vec![
            ev(0, Op::Ll, Ret::Value(0), 0, 1),
            ev(1, Op::Ll, Ret::Value(0), 2, 3),
            ev(1, Op::Sc(1), Ret::Bool(true), 4, 5),
            ev(0, Op::Vl, Ret::Bool(true), 6, 7), // must be false
        ];
        assert!(!is_linearizable(LlScSpec::new(2, 0), &h));
    }

    #[test]
    fn cas_spec_histories() {
        let h = vec![
            ev(0, Op::Cas { old: 0, new: 1 }, Ret::Bool(true), 0, 3),
            ev(1, Op::Cas { old: 0, new: 2 }, Ret::Bool(false), 1, 4),
            ev(0, Op::Read, Ret::Value(1), 5, 6),
        ];
        assert!(is_linearizable(CasSpec::new(0), &h));
        let bad = vec![
            ev(0, Op::Cas { old: 0, new: 1 }, Ret::Bool(true), 0, 1),
            ev(1, Op::Cas { old: 0, new: 2 }, Ret::Bool(true), 2, 3),
        ];
        assert!(!is_linearizable(CasSpec::new(0), &bad));
    }

    #[test]
    #[should_panic(expected = "exceeds the checker's limit")]
    fn oversized_history_is_rejected() {
        let h: Vec<Completed> = (0..65)
            .map(|i| ev(0, Op::Read, Ret::Value(0), 2 * i, 2 * i + 1))
            .collect();
        let _ = is_linearizable(LlScSpec::new(1, 0), &h);
    }

    #[test]
    fn memoization_handles_wide_overlap() {
        // 16 fully-overlapping reads: naively 16! orders; the memo makes
        // this instant.
        let h: Vec<Completed> = (0..16)
            .map(|i| ev(i % 4, Op::Read, Ret::Value(0), 0, 100))
            .collect();
        assert!(is_linearizable(LlScSpec::new(4, 0), &h));
    }
}
