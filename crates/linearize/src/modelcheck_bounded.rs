//! Exhaustive model checking of Figure 7 (the bounded-tag feedback).
//!
//! Theorem 5 hinges on an arithmetic fact: with `2Nk + 1` tags per
//! process, a per-(process, variable) counter of range `Nk + 1`, and a
//! round-robin scan of the announce array, no (tag, cnt, pid) stamp can be
//! reused while a sequence that observed it is still in flight. This
//! module transliterates Figure 7 into a step machine (N = 2, k = 1, one
//! variable) and enumerates every interleaving — and, crucially, lets the
//! tag universe be *undersized*, demonstrating that the paper's `2Nk + 1`
//! bound is load-bearing: with fewer tags the search finds a history where
//! a stale SC falsely succeeds.

use nbsp_memsim::ProcId;

use crate::checker::is_linearizable;
use crate::history::{Completed, Op, Ret};
use crate::spec::LlScSpec;

/// One operation of a process's Figure-7 program. The slot index selects
/// which of the process's `k` concurrent sequences the op belongs to —
/// slots are what let a process park one sequence while churning another,
/// which is exactly the scenario Theorem 5's tag budget must survive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundedOp {
    /// Load-linked in the given slot (reads, announces, re-reads).
    Ll(usize),
    /// Store-conditional of the value, finishing the given slot's sequence.
    Sc(usize, u64),
}

/// The packed word: Figure 7's `wordtype`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
struct BWord {
    tag: u64,
    cnt: u64,
    pid: usize,
    val: u64,
}

const N: usize = 2;
const K: usize = 2;
const NK: usize = N * K;

#[derive(Clone, Debug)]
struct BShared {
    word: BWord,
    /// Announce array A[p][slot].
    announce: [[BWord; K]; N],
    /// `last[p]` for the single variable.
    last: [u64; N],
}

/// Per-process program counter.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Pc {
    Start,
    /// LL line 2 done (`old` read); about to announce (line 3).
    LlAnnounce { slot: usize, old: BWord },
    /// Announce done; about to re-read (line 4).
    LlRecheck { slot: usize, old: BWord },
    /// SC: about to read A[j] (line 10).
    ScScan { slot: usize, newval: u64 },
    /// SC: feedback done, tag chosen; about to CAS (line 15).
    ScCas { slot: usize, newval: u64, t: u64 },
}

#[derive(Clone, Debug)]
struct BProc {
    op_index: usize,
    pc: Pc,
    /// Per-slot keep = (announced word, fail flag); None = no sequence.
    keep: [Option<(BWord, bool)>; K],
    /// The private tag queue, front at index 0.
    queue: Vec<u64>,
    /// The announce-scan index.
    j: usize,
    /// Clock ticket at which the current op took its first step.
    invoked_at: u64,
}

/// Result of an exhaustive Figure-7 check.
#[derive(Clone, Debug)]
pub struct BoundedModelResult {
    /// Complete executions explored.
    pub executions: u64,
    /// Witness history of the first violation, if any.
    pub violation: Option<Vec<Completed>>,
}

impl BoundedModelResult {
    /// True iff every execution was linearizable.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

/// Exhaustively checks Figure 7 (N = 2, k = 2, one variable) over all
/// interleavings, with a configurable tag-universe size.
///
/// The paper mandates `universe = 2Nk + 1 = 9`; pass a much smaller value
/// to watch the feedback mechanism fail (with too few tags, a process that
/// parks one slot and churns the other recreates the parked sequence's
/// exact (tag, cnt, pid, val) word, and the parked SC falsely succeeds).
///
/// # Panics
///
/// Panics if more than 2 programs, more than 64 total ops, or a zero
/// universe is supplied.
#[must_use]
pub fn check_figure7(
    programs: Vec<Vec<BoundedOp>>,
    initial: u64,
    universe: u64,
) -> BoundedModelResult {
    assert!(programs.len() <= N, "the model is sized for two processes");
    assert!(universe > 0, "tag universe must be non-empty");
    let total: usize = programs.iter().map(Vec::len).sum();
    assert!(total <= 64, "too many operations for the checker");
    let procs: Vec<BProc> = programs
        .iter()
        .map(|_| BProc {
            op_index: 0,
            pc: Pc::Start,
            keep: [None; K],
            queue: (0..universe).collect(),
            j: 0,
            invoked_at: 0,
        })
        .collect();
    let shared = BShared {
        word: BWord {
            val: initial,
            ..BWord::default()
        },
        announce: [[BWord::default(); K]; N],
        last: [0; N],
    };
    let mut result = BoundedModelResult {
        executions: 0,
        violation: None,
    };
    let mut history = Vec::new();
    explore(
        &shared,
        initial,
        &programs,
        &procs,
        &mut history,
        0,
        &mut result,
    );
    result
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn explore(
    shared: &BShared,
    initial: u64,
    programs: &[Vec<BoundedOp>],
    procs: &[BProc],
    history: &mut Vec<Completed>,
    clock: u64,
    result: &mut BoundedModelResult,
) {
    if result.violation.is_some() {
        return;
    }
    let mut any_active = false;
    for (i, p) in procs.iter().enumerate() {
        let Some(&op) = programs[i].get(p.op_index) else {
            continue;
        };
        any_active = true;

        let cont = |shared2: BShared,
                    me2: BProc,
                    event: Option<(Op, Ret, u64)>,
                    history: &mut Vec<Completed>,
                    result: &mut BoundedModelResult| {
            let mut procs2 = procs.to_vec();
            procs2[i] = me2;
            let pushed = if let Some((rop, ret, invoked)) = event {
                history.push(Completed {
                    proc: ProcId::new(i),
                    op: rop,
                    ret,
                    invoked,
                    returned: clock,
                });
                true
            } else {
                false
            };
            explore(
                &shared2, initial, programs, &procs2, history, clock + 1, result,
            );
            if pushed {
                history.pop();
            }
        };

        match (p.pc.clone(), op) {
            // ----- LL: lines 1–5 -----
            (Pc::Start, BoundedOp::Ll(slot)) => {
                // Line 2: read the word (the slot pop is local).
                assert!(slot < K, "slot out of range");
                let old = shared.word;
                let mut me2 = p.clone();
                me2.invoked_at = clock;
                me2.pc = Pc::LlAnnounce { slot, old };
                cont(shared.clone(), me2, None, history, result);
            }
            (Pc::LlAnnounce { slot, old }, BoundedOp::Ll(_)) => {
                // Line 3: announce the observed word in A[p][slot].
                let mut shared2 = shared.clone();
                shared2.announce[i][slot] = old;
                let mut me2 = p.clone();
                me2.pc = Pc::LlRecheck { slot, old };
                cont(shared2, me2, None, history, result);
            }
            (Pc::LlRecheck { slot, old }, BoundedOp::Ll(_)) => {
                // Line 4: re-read; fail flag set if the word moved.
                let fail = shared.word != old;
                let mut me2 = p.clone();
                me2.keep[slot] = Some((old, fail));
                me2.op_index += 1;
                me2.pc = Pc::Start;
                cont(
                    shared.clone(),
                    me2,
                    Some((Op::Ll, Ret::Value(old.val), p.invoked_at)),
                    history,
                    result,
                );
            }
            // ----- SC: lines 8–15 -----
            (Pc::Start, BoundedOp::Sc(slot, v)) => {
                assert!(slot < K, "slot out of range");
                let Some((_, fail)) = p.keep[slot] else {
                    // SC without LL: fails immediately (slot bookkeeping
                    // is local). The spec's valid bit is false too.
                    let mut me2 = p.clone();
                    me2.op_index += 1;
                    cont(
                        shared.clone(),
                        me2,
                        Some((Op::Sc(v), Ret::Bool(false), clock)),
                        history,
                        result,
                    );
                    continue;
                };
                if fail {
                    // Line 9.
                    let mut me2 = p.clone();
                    me2.keep[slot] = None;
                    me2.op_index += 1;
                    cont(
                        shared.clone(),
                        me2,
                        Some((Op::Sc(v), Ret::Bool(false), clock)),
                        history,
                        result,
                    );
                } else {
                    let mut me2 = p.clone();
                    me2.invoked_at = clock;
                    me2.pc = Pc::ScScan { slot, newval: v };
                    cont(shared.clone(), me2, None, history, result);
                }
            }
            (Pc::ScScan { slot, newval }, BoundedOp::Sc(..)) => {
                // Line 10: read A[j div k][j mod k], retire the observed
                // tag to the back of the private queue; line 11: advance
                // j; line 12: rotate the queue to pick the new tag.
                let observed = shared.announce[p.j / K][p.j % K].tag;
                let mut me2 = p.clone();
                if let Some(pos) = me2.queue.iter().position(|&t| t == observed) {
                    let t = me2.queue.remove(pos);
                    me2.queue.push(t);
                }
                me2.j = (me2.j + 1) % NK;
                let t = me2.queue.remove(0);
                me2.queue.push(t);
                me2.pc = Pc::ScCas { slot, newval, t };
                cont(shared.clone(), me2, None, history, result);
            }
            (Pc::ScCas { slot, newval, t }, BoundedOp::Sc(..)) => {
                // Lines 13–14 (cnt feedback; last[p] is only ever touched
                // by p) and line 15: the CAS.
                let (old, _) = p.keep[slot].expect("ScCas requires a keep");
                let mut me2 = p.clone();
                me2.keep[slot] = None;
                me2.op_index += 1;
                me2.pc = Pc::Start;
                let mut shared2 = shared.clone();
                let cnt = (shared2.last[i] + 1) % (NK as u64 + 1);
                shared2.last[i] = cnt;
                let ok = shared2.word == old;
                if ok {
                    shared2.word = BWord {
                        tag: t,
                        cnt,
                        pid: i,
                        val: newval,
                    };
                }
                cont(
                    shared2,
                    me2,
                    Some((Op::Sc(newval), Ret::Bool(ok), p.invoked_at)),
                    history,
                    result,
                );
            }
            (pc, o) => unreachable!("illegal state {pc:?} for op {o:?}"),
        }
    }
    if !any_active {
        result.executions += 1;
        if !is_linearizable(LlScSpec::new(N, initial), history) {
            result.violation = Some(history.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The park-and-churn torture: p0 parks a sequence in slot 0, churns
    /// `churn` full LL;SC pairs through slot 1 (values returning to 0 each
    /// round so the `val` field recurs; `cnt` recurs mod Nk+1 = 5; `pid`
    /// is p0's own, so only the tag protects the parked keep), then fires
    /// the parked SC. p1 is idle, making the run deterministic: this is a
    /// direct probe of the tag-reuse arithmetic.
    fn park_and_churn(churn: usize) -> Vec<Vec<BoundedOp>> {
        let mut p0 = vec![BoundedOp::Ll(0)];
        for round in 0..churn {
            p0.push(BoundedOp::Ll(1));
            let v = if round % 2 == 0 { 7 } else { 0 };
            p0.push(BoundedOp::Sc(1, v));
        }
        p0.push(BoundedOp::Sc(0, 5));
        vec![p0, vec![]]
    }

    #[test]
    fn paper_universe_survives_park_and_churn() {
        // 2Nk + 1 = 9 tags: however long the churn, the parked tag is
        // re-announced into the scan's view and never reused.
        for churn in [6usize, 10, 20] {
            let r = check_figure7(park_and_churn(churn), 0, 9);
            assert!(r.holds(), "churn {churn}: violation: {:#?}", r.violation);
        }
    }

    #[test]
    fn undersized_universe_is_caught() {
        // With only 2 tags the (tag, cnt, pid, val) word recurs during the
        // churn (the tag cycle and the mod-(Nk+1) counter align at churn
        // 10 for this program) and the parked SC falsely succeeds — the
        // paper's 2Nk + 1 bound is load-bearing. The parked SC must land
        // on the recurrence, so scan a churn range as a scheduler would.
        let caught = (1..=12).any(|churn| !check_figure7(park_and_churn(churn), 0, 2).holds());
        assert!(caught, "undersized universe never caught");
        // And the paper's universe survives the same sweep:
        for churn in 1..=12 {
            let r = check_figure7(park_and_churn(churn), 0, 9);
            assert!(r.holds(), "churn {churn}: violation: {:#?}", r.violation);
        }
    }

    #[test]
    fn racing_processes_hold_with_paper_universe() {
        let r = check_figure7(
            vec![
                vec![BoundedOp::Ll(0), BoundedOp::Sc(0, 1)],
                vec![BoundedOp::Ll(0), BoundedOp::Sc(0, 2)],
            ],
            0,
            9,
        );
        assert!(r.holds(), "violation: {:#?}", r.violation);
        assert!(r.executions > 50);
    }

    #[test]
    fn concurrent_slots_within_one_process_hold() {
        // Figure 1(a)-style: two sequences in flight in one process, with
        // a rival process interfering.
        let r = check_figure7(
            vec![
                vec![
                    BoundedOp::Ll(0),
                    BoundedOp::Ll(1),
                    BoundedOp::Sc(1, 3),
                    BoundedOp::Sc(0, 4),
                ],
                vec![BoundedOp::Ll(0), BoundedOp::Sc(0, 2)],
            ],
            0,
            9,
        );
        assert!(r.holds(), "violation: {:#?}", r.violation);
        assert!(r.executions > 500);
    }

    #[test]
    fn sc_without_ll_fails_everywhere() {
        let r = check_figure7(
            vec![
                vec![BoundedOp::Sc(0, 9)],
                vec![BoundedOp::Ll(0), BoundedOp::Sc(0, 1)],
            ],
            0,
            9,
        );
        assert!(r.holds(), "violation: {:#?}", r.violation);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_universe_rejected() {
        let _ = check_figure7(vec![vec![]], 0, 0);
    }
}
