//! Differential validation of the simulator's RSC model.
//!
//! The production RSC in `nbsp-memsim` detects interference with a
//! compare-exchange on the value observed by RLL; true hardware RSC
//! detects *any* intervening write (even one restoring the value). The
//! two differ exactly on ABA patterns — and DESIGN.md §6 argues the
//! difference is unobservable for the paper's algorithms because every
//! successful store writes a fresh tag. These tests check that argument:
//!
//! * the raw models *do* diverge on value-ABA (sanity: the oracle is
//!   genuinely stronger);
//! * Figure 3 run against the exact oracle and against the production
//!   model produces identical outcomes on randomized multi-process
//!   programs, because the tag discipline removes every divergent case.
//!
//! Programs come from a seeded [`SplitMix64`], so failures reproduce
//! exactly without any test-framework dependency.

use nbsp::core::TagLayout;
use nbsp::memsim::exact::{ExactProc, ExactWord};
use nbsp::memsim::rng::SplitMix64;
use nbsp::memsim::{InstructionSet, Machine, ProcId, SimWord};

#[test]
fn raw_models_diverge_on_value_aba() {
    // Production model: RSC succeeds after 5 -> 9 -> 5.
    let m = Machine::builder(2).build();
    let p0 = m.processor(0);
    let p1 = m.processor(1);
    let w = SimWord::new(5);
    let v = p0.rll(&w);
    p1.write(&w, 9);
    p1.write(&w, 5);
    assert!(p0.rsc(&w, v + 1), "CAS-based RSC falls for value ABA");

    // Exact oracle: the same schedule fails.
    let w = ExactWord::new(5);
    let mut e0 = ExactProc::new(ProcId::new(0));
    let v = e0.rll(&w);
    w.write(9);
    w.write(5);
    assert!(!e0.rsc(&w, v + 1), "true RSC must detect the writes");
}

/// Figure 3's CAS algorithm, expressed over the exact oracle (the same
/// line-for-line structure as `EmuCasWord::cas`).
fn fig3_cas_exact(
    word: &ExactWord,
    me: &mut ExactProc,
    layout: TagLayout,
    old: u64,
    new: u64,
) -> bool {
    let oldword = word.read();
    if layout.val(oldword) != old {
        return false;
    }
    if old == new {
        return true;
    }
    let newword = layout
        .pack(layout.tag_succ(layout.tag(oldword)), new)
        .unwrap();
    loop {
        if me.rll(word) != oldword {
            return false;
        }
        if me.rsc(word, newword) {
            return true;
        }
    }
}

/// Sequential multi-process CAS programs: Figure 3 on the production
/// model and on the exact oracle must agree operation-for-operation —
/// i.e. the tag discipline makes the weaker RSC model indistinguishable.
#[test]
fn figure3_is_model_independent() {
    let mut rng = SplitMix64::new(0xe4ac_0001);
    for case in 0..200 {
        let ops: Vec<(usize, u64, u64)> = (0..rng.next_index(150))
            .map(|_| (rng.next_index(3), rng.next_below(4), rng.next_below(4)))
            .collect();
        let layout = TagLayout::new(60, 4).unwrap();

        // Production model (CAS-based RSC).
        let m = Machine::builder(3)
            .instruction_set(InstructionSet::RllRscOnly)
            .build();
        let procs = m.processors();
        let prod = nbsp::core::EmuCasWord::new(layout, 0).unwrap();

        // Exact oracle (version-based RSC).
        let exact_word = ExactWord::new(layout.pack(0, 0).unwrap());
        let mut exact_procs: Vec<ExactProc> =
            (0..3).map(|i| ExactProc::new(ProcId::new(i))).collect();

        for (step, (p, old, new)) in ops.iter().enumerate() {
            let got = prod.cas(&procs[*p], *old, *new);
            let want = fig3_cas_exact(&exact_word, &mut exact_procs[*p], layout, *old, *new);
            assert_eq!(
                got, want,
                "case {case} step {step}: CAS({old}, {new}) diverged between RSC models"
            );
            // Values must stay in lock-step too.
            assert_eq!(prod.read(&procs[*p]), layout.val(exact_word.read()));
        }
    }
}

/// Same agreement under a deterministic spurious-failure schedule on
/// the production side only (spurious failures may add retries but
/// never change outcomes).
#[test]
fn figure3_outcomes_are_spurious_failure_invariant() {
    let mut rng = SplitMix64::new(0xe4ac_0002);
    for _ in 0..100 {
        let ops: Vec<(u64, u64)> = (0..rng.next_index(100))
            .map(|_| (rng.next_below(4), rng.next_below(4)))
            .collect();
        let layout = TagLayout::new(60, 4).unwrap();
        let quiet = Machine::builder(1)
            .instruction_set(InstructionSet::RllRscOnly)
            .build();
        let noisy = Machine::builder(1)
            .instruction_set(InstructionSet::RllRscOnly)
            .spurious(nbsp::memsim::SpuriousMode::EveryNth { n: 2 })
            .build();
        let pq = quiet.processor(0);
        let pn = noisy.processor(0);
        let a = nbsp::core::EmuCasWord::new(layout, 0).unwrap();
        let b = nbsp::core::EmuCasWord::new(layout, 0).unwrap();
        for (old, new) in ops {
            assert_eq!(a.cas(&pq, old, new), b.cas(&pn, old, new));
            assert_eq!(a.read(&pq), b.read(&pn));
        }
        // And the noisy run really did absorb spurious failures.
        // (Not asserted per-case: some value sequences never reach the
        // RLL/RSC loop.)
    }
}
