//! Non-blocking progress under injected failures.
//!
//! The paper's whole motivation (§1) is avoiding "susceptibility to
//! process delays and failures". These tests *kill* or *park* a process at
//! the worst possible moment and assert the rest of the system keeps
//! going — the property no lock-based implementation can have (the lock
//! baseline is shown to fail the same scenarios by construction).

use std::sync::atomic::{AtomicBool, Ordering};

use nbsp::core::bounded::BoundedDomain;
use nbsp::core::wide::{WideDomain, WideKeep};
use nbsp::core::{CasLlSc, Keep, Native, TagLayout};
use nbsp::memsim::ProcId;
use nbsp::structures::stm::Stm;
use nbsp::structures::{Counter, Queue, Stack};

fn nat() -> CasLlSc<Native> {
    CasLlSc::new_native(TagLayout::half(), 0).unwrap()
}

#[test]
fn parked_ll_sequence_blocks_nobody() {
    // A process LLs a variable and then "dies" (never SCs, never CLs).
    // All constructions must let everyone else proceed forever.
    let var = nat();
    let mut dead_keep = Keep::default();
    let _ = var.ll(&Native, &mut dead_keep); // parked forever

    for i in 0..10_000u64 {
        let mut keep = Keep::default();
        let v = var.ll(&Native, &mut keep);
        assert!(var.sc(&Native, &keep, v + 1), "uncontended SC must win");
        assert_eq!(v, i);
    }
    // The dead sequence simply fails if ever resumed:
    assert!(!var.sc(&Native, &dead_keep, 999));
}

#[test]
fn parked_bounded_sequence_blocks_nobody() {
    let d = BoundedDomain::<Native>::new(2, 2).unwrap();
    let var = d.var(0).unwrap();
    let mut dead = d.proc(0);
    let (_, _dead_keep) = var.ll(&Native, &mut dead); // slot held forever

    let mut alive = d.proc(1);
    for _ in 0..10_000u64 {
        let (v, keep) = var.ll(&Native, &mut alive);
        assert!(var.sc(&Native, &mut alive, keep, v + 1));
    }
    assert_eq!(var.peek(&Native), 10_000);
}

#[test]
fn wide_sc_stalled_after_header_swing_is_helped() {
    // The hardest failure point: a process dies after installing the new
    // header but before copying a single segment. Readers must both see
    // the new value and repair the variable, forever after.
    let d = WideDomain::<Native>::new(2, 4, 32).unwrap();
    let var = d.var(&[1, 1, 1, 1]).unwrap();
    let mem = Native;
    let mut keep = WideKeep::default();
    let mut buf = [0u64; 4];
    let _ = var.wll(&mem, &mut keep, &mut buf);
    assert!(var.begin_stalled_sc(&mem, ProcId::new(1), &keep, &[2, 2, 2, 2]));
    // Process 1 is now "dead". Process 0 operates indefinitely:
    for i in 2..1_000u64 {
        let mut k = WideKeep::default();
        assert!(var.wll(&mem, &mut k, &mut buf).is_success());
        assert_eq!(buf, [i; 4], "must observe the helped/committed value");
        assert!(var.sc(&mem, ProcId::new(0), &k, &[i + 1; 4]));
    }
}

#[test]
fn stalled_stm_writer_blocks_nobody() {
    // Same failure injected under the STM: a transaction's owner dies
    // mid-commit; other transactions and readers proceed.
    let d = WideDomain::<Native>::new(3, 2, 32).unwrap();
    let stm = Stm::new(&d, &[50, 50]).unwrap();
    let mem = Native;

    // Run concurrent traffic while a stalled commit is injected.
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let stm = &stm;
        let stop = &stop;
        s.spawn(move || {
            let mut done = 0u64;
            while done < 5_000 {
                stm.transact(&mem, ProcId::new(0), |h| {
                    let a = h[0].min(1);
                    h[0] -= a;
                    h[1] += a;
                });
                done += 1;
            }
            stop.store(true, Ordering::Relaxed);
        });
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let total: u64 = stm.read(&mem, |h| h.iter().sum());
                assert_eq!(total, 100);
            }
        });
    });
}

#[test]
fn stack_survives_a_dead_thread_mid_operation() {
    // A thread performs half an operation (allocates a node, writes it,
    // but never completes the push — simulating death between the arena
    // alloc and the head SC is impossible from outside, so we emulate the
    // nearest external equivalent: a thread that simply stops forever
    // while others run). The stack must stay fully functional.
    let s = Stack::new(32, nat(), nat(), &mut Native);
    std::thread::scope(|scope| {
        let s = &s;
        // The "dying" thread: does some work, then parks forever holding
        // nothing (non-blocking structures hold no locks to leak).
        scope.spawn(move || {
            let mut ctx = Native;
            for i in 0..10 {
                let _ = s.push(&mut ctx, i);
            }
            // dies (returns without cleanup)
        });
        scope.spawn(move || {
            let mut ctx = Native;
            for i in 0..20_000u64 {
                while s.push(&mut ctx, i).is_err() {
                    let _ = s.pop(&mut ctx);
                }
                if i % 2 == 0 {
                    let _ = s.pop(&mut ctx);
                }
            }
        });
    });
    let mut ctx = Native;
    let mut n = 0;
    while s.pop(&mut ctx).is_some() {
        n += 1;
    }
    assert!(n <= 32);
}

#[test]
fn queue_progress_is_lock_free_not_wait_free() {
    // Lock-freedom: in any window, *someone* completes. We assert the
    // system-wide completion count keeps rising while threads interfere
    // as hard as they can on a tiny queue.
    let q = Queue::new(2, nat, &mut Native);
    let completed: u64 = std::thread::scope(|s| {
        (0..4)
            .map(|_| {
                let q = &q;
                s.spawn(move || {
                    let mut ctx = Native;
                    let mut done = 0u64;
                    for i in 0..10_000u64 {
                        match i % 2 {
                            0 => {
                                if q.enqueue(&mut ctx, i).is_ok() {
                                    done += 1;
                                }
                            }
                            _ => {
                                if q.dequeue(&mut ctx).is_some() {
                                    done += 1;
                                }
                            }
                        }
                    }
                    done
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    assert!(completed > 0);
}

#[test]
fn counter_fairness_under_asymmetric_load() {
    // A counter hammered by 3 fast threads must still admit a slow
    // thread's increments (lock-freedom doesn't promise fairness, but the
    // LL/SC loop must not starve forever in practice).
    let c = Counter::new(nat());
    let slow_done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let c = &c;
        let slow_done = &slow_done;
        s.spawn(move || {
            let mut ctx = Native;
            for _ in 0..100 {
                c.increment(&mut ctx);
                std::thread::yield_now();
            }
            slow_done.store(true, Ordering::Relaxed);
        });
        for _ in 0..3 {
            s.spawn(move || {
                let mut ctx = Native;
                while !slow_done.load(Ordering::Relaxed) {
                    c.increment(&mut ctx);
                }
            });
        }
    });
    assert!(c.get(&mut Native) >= 100);
}
