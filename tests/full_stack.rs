//! End-to-end tests of the full construction stacks under adversarial
//! conditions: every layer of the paper composed, on the weakest machine,
//! with spurious failures injected and the strict no-access-between-RLL-RSC
//! check armed.

use nbsp::core::bounded::BoundedDomain;
use nbsp::core::wide::{WideDomain, WideKeep};
use nbsp::core::{CasLlSc, EmuCas, EmuFamily, Keep, TagLayout};
use nbsp::memsim::{AccessBetween, InstructionSet, Machine, ProcId, SpuriousMode};
use nbsp::structures::Counter;

/// The weakest machine the paper targets: RLL/RSC only, spurious failures,
/// strict enforcement of restriction #1 (any violation panics the test).
fn hostile_machine(n: usize, seed: u64) -> Machine {
    Machine::builder(n)
        .instruction_set(InstructionSet::RllRscOnly)
        .access_between(AccessBetween::Panic)
        .spurious(SpuriousMode::Probability { p: 0.2 })
        .seed(seed)
        .build()
}

#[test]
fn figure4_over_figure3_survives_hostile_machine() {
    // LL/VL/SC from CAS from RLL/RSC: the full §3 stack, 4 threads, 20%
    // spurious failure rate, strict windows. Counter exactness proves both
    // layers linearize.
    let m = hostile_machine(4, 7);
    let var =
        CasLlSc::<EmuFamily<32>>::new(TagLayout::for_width(16, 16, 32).unwrap(), 0).unwrap();
    std::thread::scope(|s| {
        for t in 0..4 {
            let p = m.processor(t);
            let var = &var;
            s.spawn(move || {
                let mem = EmuCas::<32>::new(&p);
                for _ in 0..1_500 {
                    let mut keep = Keep::default();
                    loop {
                        let v = var.ll(&mem, &mut keep);
                        if var.sc(&mem, &keep, (v + 1) & 0xFFFF) {
                            break;
                        }
                    }
                }
                // Spurious failures really were injected:
                assert!(p.stats().rsc_spurious > 0);
            });
        }
    });
    let check = hostile_machine(1, 8);
    let p = check.processor(0);
    assert_eq!(var.read(&EmuCas::<32>::new(&p)), 6_000);
}

#[test]
fn figure6_over_figure3_survives_hostile_machine() {
    let m = hostile_machine(3, 21);
    let reader = m.processor(2);
    let d = WideDomain::<EmuFamily<16>>::new(3, 4, 16).unwrap();
    let var = d.var(&[0, 1, 2, 3]).unwrap();
    std::thread::scope(|s| {
        for t in 0..2 {
            let p = m.processor(t);
            let var = &var;
            s.spawn(move || {
                let mem = EmuCas::<16>::new(&p);
                let pid = ProcId::new(t);
                for _ in 0..400 {
                    let mut keep = WideKeep::default();
                    let mut buf = [0u64; 4];
                    if var.wll(&mem, &mut keep, &mut buf).is_success() {
                        // Invariant: consecutive stripe.
                        assert_eq!(buf[1], buf[0] + 1, "torn wide read");
                        assert_eq!(buf[3], buf[2] + 1, "torn wide read");
                        let b = buf[0] + 4;
                        let _ = var.sc(&mem, pid, &keep, &[b, b + 1, b + 2, b + 3]);
                    }
                }
            });
        }
    });
    let fin = var.read(&EmuCas::<16>::new(&reader));
    assert_eq!(fin[1], fin[0] + 1);
    assert_eq!(fin[3], fin[2] + 1);
}

#[test]
fn figure7_over_figure3_survives_hostile_machine() {
    let m = hostile_machine(2, 99);
    let d = BoundedDomain::<EmuFamily<16>>::new(2, 1).unwrap();
    let var = d.var(0).unwrap();
    std::thread::scope(|s| {
        for t in 0..2 {
            let p = m.processor(t);
            let mut me = d.proc(t);
            let var = &var;
            s.spawn(move || {
                let mem = EmuCas::<16>::new(&p);
                for _ in 0..1_000 {
                    loop {
                        let (v, keep) = var.ll(&mem, &mut me);
                        if var.sc(&mem, &mut me, keep, v + 1) {
                            break;
                        }
                    }
                }
            });
        }
    });
    let check = hostile_machine(1, 100);
    let p = check.processor(0);
    assert_eq!(var.peek(&EmuCas::<16>::new(&p)), 2_000);
}

#[test]
fn structures_run_on_the_full_stack() {
    // A Counter over Figure 4 over Figure 3 over hostile RLL/RSC.
    let m = hostile_machine(2, 5);
    let var =
        CasLlSc::<EmuFamily<32>>::new(TagLayout::for_width(16, 16, 32).unwrap(), 0).unwrap();
    let counter = Counter::new(var);
    std::thread::scope(|s| {
        for t in 0..2 {
            let p = m.processor(t);
            let counter = &counter;
            s.spawn(move || {
                let mut mem = EmuCas::<32>::new(&p);
                for _ in 0..1_000 {
                    counter.increment(&mut mem);
                }
            });
        }
    });
    let check = hostile_machine(1, 6);
    let p = check.processor(0);
    let mut mem = EmuCas::<32>::new(&p);
    assert_eq!(counter.get(&mut mem), 2_000);
}

#[test]
fn uncontended_ops_use_constantly_many_instructions() {
    // Theorem 1's constant-time claim, instruction-counted: with no
    // contention and no spurious failures, each emulated CAS must cost the
    // same small number of simulated instructions regardless of history
    // length.
    let m = Machine::builder(1)
        .instruction_set(InstructionSet::RllRscOnly)
        .build();
    let p = m.processor(0);
    let var = nbsp::core::EmuCasWord::new(TagLayout::half(), 0).unwrap();
    let mut per_op = Vec::new();
    for i in 0..100 {
        let before = p.stats().total_instructions();
        assert!(var.cas(&p, i, i + 1));
        per_op.push(p.stats().total_instructions() - before);
    }
    assert!(
        per_op.windows(2).all(|w| w[0] == w[1]),
        "per-op instruction count must be constant: {per_op:?}"
    );
    // Figure 3's success path: 1 read + 1 RLL + 1 RSC.
    assert_eq!(per_op[0], 3);
}
