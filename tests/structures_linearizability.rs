//! End-to-end linearizability of the data structures built on the
//! emulated primitives — closing the paper's transitive claim: the
//! LL/VL/SC emulations are linearizable, the algorithms over them were
//! proven against LL/VL/SC, so the structures should be linearizable too.
//! We don't take transitivity on faith; we check recorded histories of the
//! *structures* directly.

use nbsp::core::{CasLlSc, Native, TagLayout};
use nbsp::linearize::{
    history, is_linearizable, Completed, HistoryClock, QueueOp, QueueRet, QueueSpec, SetOp,
    SetRet, SetSpec, StackOp, StackRet, StackSpec,
};
use nbsp::memsim::ProcId;
use nbsp::structures::{Queue, Set, Stack};

const THREADS: usize = 3;
const OPS_PER_THREAD: usize = 4;
const SEEDS: u64 = 100;
const CAPACITY: usize = 3; // small, so Full outcomes appear in histories

fn nat() -> CasLlSc<Native> {
    CasLlSc::new_native(TagLayout::half(), 0).unwrap()
}

fn rng_stream(seed: u64, t: usize) -> impl FnMut() -> u64 {
    let mut x = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(t as u64 + 1);
    move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x
    }
}

#[test]
fn stack_histories_are_linearizable() {
    for seed in 0..SEEDS {
        let stack = Stack::new(CAPACITY, nat(), nat(), &mut Native);
        let clock = HistoryClock::new();
        let logs: Vec<Vec<Completed<StackOp, StackRet>>> = std::thread::scope(|s| {
            (0..THREADS)
                .map(|t| {
                    let stack = &stack;
                    let mut rec = clock.recorder_for::<StackOp, StackRet>(ProcId::new(t));
                    let mut rng = rng_stream(seed, t);
                    s.spawn(move || {
                        for i in 0..OPS_PER_THREAD {
                            if rng().is_multiple_of(2) {
                                // Unique values so double-pops are visible.
                                let v = (t * OPS_PER_THREAD + i) as u64 + 1;
                                let _ = rec.record(StackOp::Push(v), || {
                                    StackRet::Pushed(stack.push(&mut Native, v).is_ok())
                                });
                            } else {
                                let _ = rec.record(StackOp::Pop, || {
                                    StackRet::Popped(stack.pop(&mut Native))
                                });
                            }
                        }
                        rec.into_events()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let h = history::merge(logs);
        assert!(
            is_linearizable(StackSpec::new(CAPACITY), &h),
            "stack seed {seed}: non-linearizable history:\n{h:#?}"
        );
    }
}

#[test]
fn queue_histories_are_linearizable() {
    for seed in 0..SEEDS {
        let queue = Queue::new(CAPACITY, nat, &mut Native);
        let clock = HistoryClock::new();
        let logs: Vec<Vec<Completed<QueueOp, QueueRet>>> = std::thread::scope(|s| {
            (0..THREADS)
                .map(|t| {
                    let queue = &queue;
                    let mut rec = clock.recorder_for::<QueueOp, QueueRet>(ProcId::new(t));
                    let mut rng = rng_stream(seed, t);
                    s.spawn(move || {
                        for i in 0..OPS_PER_THREAD {
                            if rng().is_multiple_of(2) {
                                let v = (t * OPS_PER_THREAD + i) as u64 + 1;
                                let _ = rec.record(QueueOp::Enqueue(v), || {
                                    QueueRet::Enqueued(queue.enqueue(&mut Native, v).is_ok())
                                });
                            } else {
                                let _ = rec.record(QueueOp::Dequeue, || {
                                    QueueRet::Dequeued(queue.dequeue(&mut Native))
                                });
                            }
                        }
                        rec.into_events()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let h = history::merge(logs);
        assert!(
            is_linearizable(QueueSpec::new(CAPACITY), &h),
            "queue seed {seed}: non-linearizable history:\n{h:#?}"
        );
    }
}

#[test]
fn set_histories_are_linearizable() {
    for seed in 0..SEEDS {
        // Plenty of lifetime capacity so Add never returns Full (the
        // sequential SetSpec has no capacity notion).
        let set = Set::new(64, nat, &mut Native);
        let clock = HistoryClock::new();
        let logs: Vec<Vec<Completed<SetOp, SetRet>>> = std::thread::scope(|s| {
            (0..THREADS)
                .map(|t| {
                    let set = &set;
                    let mut rec = clock.recorder_for::<SetOp, SetRet>(ProcId::new(t));
                    let mut rng = rng_stream(seed, t);
                    s.spawn(move || {
                        for _ in 0..OPS_PER_THREAD {
                            let r = rng();
                            let key = (r >> 8) % 3; // tiny key space: max conflict
                            match r % 3 {
                                0 => {
                                    let _ = rec.record(SetOp::Add(key), || {
                                        SetRet(set.add(&mut Native, key).unwrap())
                                    });
                                }
                                1 => {
                                    let _ = rec.record(SetOp::Remove(key), || {
                                        SetRet(set.remove(&mut Native, key))
                                    });
                                }
                                _ => {
                                    let _ = rec.record(SetOp::Contains(key), || {
                                        SetRet(set.contains(&mut Native, key))
                                    });
                                }
                            }
                        }
                        rec.into_events()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let h = history::merge(logs);
        assert!(
            is_linearizable(SetSpec::new(), &h),
            "set seed {seed}: non-linearizable history:\n{h:#?}"
        );
    }
}
