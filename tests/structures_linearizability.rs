//! End-to-end linearizability of the data structures built on the
//! emulated primitives — closing the paper's transitive claim: the
//! LL/VL/SC emulations are linearizable, the algorithms over them were
//! proven against LL/VL/SC, so the structures should be linearizable too.
//! We don't take transitivity on faith; we check recorded histories of the
//! *structures* directly.

use nbsp::core::{for_each_provider, CasLlSc, Native, Provider, TagLayout};
use nbsp::linearize::{
    history, is_linearizable, Completed, HistoryClock, MapOp, MapRet, MapSpec, QueueOp, QueueRet,
    QueueSpec, SetOp, SetRet, SetSpec, StackOp, StackRet, StackSpec,
};
use nbsp::memsim::ProcId;
use nbsp::structures::{ordmap_capacity, OrdMap, Queue, Set, Stack};

const THREADS: usize = 3;
const OPS_PER_THREAD: usize = 4;
const SEEDS: u64 = 100;
const CAPACITY: usize = 3; // small, so Full outcomes appear in histories

fn nat() -> CasLlSc<Native> {
    CasLlSc::new_native(TagLayout::half(), 0).unwrap()
}

fn rng_stream(seed: u64, t: usize) -> impl FnMut() -> u64 {
    let mut x = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(t as u64 + 1);
    move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x
    }
}

#[test]
fn stack_histories_are_linearizable() {
    for seed in 0..SEEDS {
        let stack = Stack::new(CAPACITY, nat(), nat(), &mut Native);
        let clock = HistoryClock::new();
        let logs: Vec<Vec<Completed<StackOp, StackRet>>> = std::thread::scope(|s| {
            (0..THREADS)
                .map(|t| {
                    let stack = &stack;
                    let mut rec = clock.recorder_for::<StackOp, StackRet>(ProcId::new(t));
                    let mut rng = rng_stream(seed, t);
                    s.spawn(move || {
                        for i in 0..OPS_PER_THREAD {
                            if rng().is_multiple_of(2) {
                                // Unique values so double-pops are visible.
                                let v = (t * OPS_PER_THREAD + i) as u64 + 1;
                                let _ = rec.record(StackOp::Push(v), || {
                                    StackRet::Pushed(stack.push(&mut Native, v).is_ok())
                                });
                            } else {
                                let _ = rec.record(StackOp::Pop, || {
                                    StackRet::Popped(stack.pop(&mut Native))
                                });
                            }
                        }
                        rec.into_events()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let h = history::merge(logs);
        assert!(
            is_linearizable(StackSpec::new(CAPACITY), &h),
            "stack seed {seed}: non-linearizable history:\n{h:#?}"
        );
    }
}

#[test]
fn queue_histories_are_linearizable() {
    for seed in 0..SEEDS {
        let queue = Queue::new(CAPACITY, nat, &mut Native);
        let clock = HistoryClock::new();
        let logs: Vec<Vec<Completed<QueueOp, QueueRet>>> = std::thread::scope(|s| {
            (0..THREADS)
                .map(|t| {
                    let queue = &queue;
                    let mut rec = clock.recorder_for::<QueueOp, QueueRet>(ProcId::new(t));
                    let mut rng = rng_stream(seed, t);
                    s.spawn(move || {
                        for i in 0..OPS_PER_THREAD {
                            if rng().is_multiple_of(2) {
                                let v = (t * OPS_PER_THREAD + i) as u64 + 1;
                                let _ = rec.record(QueueOp::Enqueue(v), || {
                                    QueueRet::Enqueued(queue.enqueue(&mut Native, v).is_ok())
                                });
                            } else {
                                let _ = rec.record(QueueOp::Dequeue, || {
                                    QueueRet::Dequeued(queue.dequeue(&mut Native))
                                });
                            }
                        }
                        rec.into_events()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let h = history::merge(logs);
        assert!(
            is_linearizable(QueueSpec::new(CAPACITY), &h),
            "queue seed {seed}: non-linearizable history:\n{h:#?}"
        );
    }
}

#[test]
fn set_histories_are_linearizable() {
    for seed in 0..SEEDS {
        // Plenty of lifetime capacity so Add never returns Full (the
        // sequential SetSpec has no capacity notion).
        let set = Set::new(64, nat, &mut Native);
        let clock = HistoryClock::new();
        let logs: Vec<Vec<Completed<SetOp, SetRet>>> = std::thread::scope(|s| {
            (0..THREADS)
                .map(|t| {
                    let set = &set;
                    let mut rec = clock.recorder_for::<SetOp, SetRet>(ProcId::new(t));
                    let mut rng = rng_stream(seed, t);
                    s.spawn(move || {
                        for _ in 0..OPS_PER_THREAD {
                            let r = rng();
                            let key = (r >> 8) % 3; // tiny key space: max conflict
                            match r % 3 {
                                0 => {
                                    let _ = rec.record(SetOp::Add(key), || {
                                        SetRet(set.add(&mut Native, key).unwrap())
                                    });
                                }
                                1 => {
                                    let _ = rec.record(SetOp::Remove(key), || {
                                        SetRet(set.remove(&mut Native, key))
                                    });
                                }
                                _ => {
                                    let _ = rec.record(SetOp::Contains(key), || {
                                        SetRet(set.contains(&mut Native, key))
                                    });
                                }
                            }
                        }
                        rec.into_events()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let h = history::merge(logs);
        assert!(
            is_linearizable(SetSpec::new(), &h),
            "set seed {seed}: non-linearizable history:\n{h:#?}"
        );
    }
}

/// The ordmap's recorded histories against [`MapSpec`], one provider —
/// multi-word LLX/SCX commits racing on a tiny key space, checked
/// end-to-end by the Wing–Gong search. Stamped over the registry below:
/// every provider's LL/SC must carry the full SCX protocol without
/// producing a non-linearizable map history.
fn ordmap_histories_are_linearizable<P: Provider>() {
    const MAP_SEEDS: u64 = 20;
    for seed in 0..MAP_SEEDS {
        // One spare slot: the construction context must not collide with
        // the worker threads' claims.
        let env = P::env(THREADS + 1).expect("provider env");
        let mut tc0 = P::thread_ctx(&env, THREADS);
        let mut ctx0 = P::ctx(&mut tc0);
        // Budget for every op being a new-key insert; sized within the
        // constant-time provider's variable budget (3 words per record).
        let map = OrdMap::new(
            THREADS,
            ordmap_capacity(THREADS * OPS_PER_THREAD),
            || P::var(&env, 0).expect("provider var"),
            &mut ctx0,
        );
        drop(ctx0);
        let clock = HistoryClock::new();
        let logs: Vec<Vec<Completed<MapOp, MapRet>>> = std::thread::scope(|s| {
            (0..THREADS)
                .map(|t| {
                    let map = &map;
                    let env = &env;
                    let mut rec = clock.recorder_for::<MapOp, MapRet>(ProcId::new(t));
                    let mut rng = rng_stream(seed, t);
                    s.spawn(move || {
                        let mut tc = P::thread_ctx(env, t);
                        let mut ctx = P::ctx(&mut tc);
                        for _ in 0..OPS_PER_THREAD {
                            let r = rng();
                            let key = (r >> 8) % 3; // tiny key space: max conflict
                            match r % 3 {
                                0 => {
                                    let v = r >> 32;
                                    let _ = rec.record(MapOp::Insert(key, v), || {
                                        MapRet(map.insert(&mut ctx, t, key, v).unwrap())
                                    });
                                }
                                1 => {
                                    let _ = rec.record(MapOp::Delete(key), || {
                                        MapRet(map.delete(&mut ctx, t, key).unwrap())
                                    });
                                }
                                _ => {
                                    let _ = rec.record(MapOp::Get(key), || {
                                        MapRet(map.get(&mut ctx, key))
                                    });
                                }
                            }
                        }
                        rec.into_events()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let h = history::merge(logs);
        assert!(
            is_linearizable(MapSpec::new(), &h),
            "ordmap seed {seed}: non-linearizable history:\n{h:#?}"
        );
    }
}

macro_rules! ordmap_linearizability {
    ($name:ident, $provider:ty) => {
        mod $name {
            #[test]
            fn ordmap_histories_are_linearizable() {
                super::ordmap_histories_are_linearizable::<$provider>();
            }
        }
    };
}

for_each_provider!(ordmap_linearizability);
