//! Integration tests for the sharded serving fabric: request
//! conservation and seeded determinism through `run_fabric_cell_as` for
//! **every registry provider** (the fabric's cursors, directory and
//! admission stripes all run on the provider under test), plus a real-
//! thread forced-starvation stress on `ShardRing` proving the steal-half
//! SC commit never duplicates and never loses a request.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use nbsp::core::{for_each_provider, CasLlSc, Native, Provider, TagLayout};
use nbsp::serve::fabric::{ShardRing, STEAL_MAX};
use nbsp::serve::{
    run_fabric_cell_as, AdmissionConfig, ArrivalProcess, FabricConfig, Request, Workload,
};

/// Small enough that every cursor stays far below the Fig4Emu provider's
/// 16-bit value range, big enough to force refills and (with the bursty
/// process) steals.
fn small_cfg() -> FabricConfig {
    FabricConfig {
        seed: 0xfab_feed,
        process: ArrivalProcess::OnOff {
            on_rate_per_sec: 4.0e6, // 2x the 2-worker pool capacity
            on_mean_ns: 20_000.0,
            off_mean_ns: 20_000.0,
        },
        workload: Workload::Counter,
        workers: 2,
        requests: 1_500,
        service_mean_ns: 1_000.0,
        admission: Some(AdmissionConfig {
            rate_per_sec: 1.7e6, // 85% of pool capacity
            burst: 64,
        }),
        ring_capacity: 128,
        refill_batch: 16,
    }
}

fn conserves_and_is_deterministic<P: Provider>() {
    let cfg = small_cfg();
    let a = run_fabric_cell_as(P::ID, &cfg, None);
    let b = run_fabric_cell_as(P::ID, &cfg, None);
    assert_eq!(a, b, "same-seed fabric cells must be byte-identical");
    let snap = &a.snapshot;
    assert_eq!(snap.generated(), cfg.requests, "every request accounted");
    assert_eq!(
        snap.generated(),
        snap.admitted + snap.shed,
        "admission must conserve: generated == admitted + shed"
    );
    assert_eq!(
        snap.completed, snap.admitted,
        "every admitted request executed exactly once"
    );
    assert!(snap.shed > 0, "the bursty overload cell must shed");
    assert!(snap.refills > 0, "striped admission must batch-refill");
    assert!(
        snap.steals > 0,
        "the bursty 2-worker cell must exercise the steal path"
    );
}

// One `#[test]` per registry provider, named by the provider's slug.
macro_rules! fabric_test {
    ($name:ident, $provider:ty) => {
        mod $name {
            #[test]
            fn fabric_conserves_and_is_deterministic() {
                super::conserves_and_is_deterministic::<$provider>();
            }
        }
    };
}

for_each_provider!(fabric_test);

/// Forced starvation: one producer feeds ring 0 only, its owner pops,
/// and three permanently-starved thieves hammer `steal_into` on it.
/// Every consumed request contributes its arrival stamp to a checksum;
/// if a steal's SC commit could duplicate a request the sum would
/// overshoot, if it could lose one the count would undershoot (the
/// consumers only exit once the producer is done and the ring drained).
#[test]
fn steal_commit_never_duplicates_or_loses_under_starvation() {
    const REQUESTS: u64 = 12_000;
    const THIEVES: usize = 3;
    let ring = ShardRing::new(
        64,
        CasLlSc::new_native(TagLayout::half(), 0).unwrap(),
        CasLlSc::new_native(TagLayout::half(), 0).unwrap(),
    );
    let done = AtomicBool::new(false);
    let consumed = AtomicU64::new(0);
    let checksum = AtomicU64::new(0);

    std::thread::scope(|s| {
        let ring = &ring;
        let done = &done;
        let consumed = &consumed;
        let checksum = &checksum;
        // The starved thieves: never own a request, only steal.
        for _ in 0..THIEVES {
            s.spawn(move || {
                let ctx = &mut Native;
                let mut stash = [Request {
                    arrival_ns: 0,
                    service_ns: 0,
                    key: 0,
                }; STEAL_MAX];
                loop {
                    let k = ring.steal_into(ctx, &mut stash);
                    if k > 0 {
                        let sum: u64 = stash[..k].iter().map(|r| r.arrival_ns).sum();
                        checksum.fetch_add(sum, Ordering::Relaxed);
                        consumed.fetch_add(k as u64, Ordering::Relaxed);
                    } else if done.load(Ordering::Acquire) && ring.is_empty(ctx) {
                        break;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        }
        // The owner: plain pops, racing the thieves on the same head.
        s.spawn(move || {
            let ctx = &mut Native;
            loop {
                if let Some(r) = ring.try_pop(ctx) {
                    checksum.fetch_add(r.arrival_ns, Ordering::Relaxed);
                    consumed.fetch_add(1, Ordering::Relaxed);
                } else if done.load(Ordering::Acquire) && ring.is_empty(ctx) {
                    break;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        // The producer: single writer on ring 0's tail, spins when full
        // (the 64-slot ring against 12k requests forces constant
        // wraparound, so every slot is reused ~190 times).
        let ctx = &mut Native;
        for i in 1..=REQUESTS {
            let r = Request {
                arrival_ns: i,
                service_ns: 1,
                key: 0,
            };
            while !ring.try_push(ctx, r) {
                std::thread::yield_now();
            }
        }
        done.store(true, Ordering::Release);
    });

    assert_eq!(
        consumed.load(Ordering::Relaxed),
        REQUESTS,
        "a steal or pop lost (undershoot) or duplicated (overshoot) a claim"
    );
    assert_eq!(
        checksum.load(Ordering::Relaxed),
        REQUESTS * (REQUESTS + 1) / 2,
        "consumed set is not exactly the produced set"
    );
}
