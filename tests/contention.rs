//! Real-thread contention stress for the helping paths.
//!
//! The deterministic tests drive Figure 6's help protocol from a single
//! thread via the stalled-SC hook; these tests add genuine OS-thread
//! interleavings on top, so `WllOutcome::InterferedBy` and reader-side
//! helping fire from *preemption*, not just from scripted stalls. The
//! invariant checked is linearizability of the end state: a WLL/SC
//! increment loop on a W-word variable behaves as an atomic counter, every
//! consistent snapshot is untorn, and the final value equals the number of
//! successful SCs.
//!
//! On a single-CPU host mid-copy preemptions are rare per quantum, so the
//! workers run adaptively: at least `MIN_OPS` each, then keep going (up to
//! a generous cap) until interference has actually been observed. Stalled
//! SCs are injected until a quota is met, which guarantees the help branch
//! of `copy` executes even if the scheduler never preempts mid-copy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use nbsp::core::wide::{WideDomain, WideKeep, WllOutcome};
use nbsp::core::{CasLlSc, Native, TagLayout};
use nbsp::memsim::ProcId;
use nbsp::structures::Counter;

#[test]
fn wide_help_path_under_thread_contention() {
    const N: usize = 4;
    const W: usize = 4;
    const MIN_OPS: u64 = 20_000; // per thread
    const HARD_CAP: u64 = 2_000_000; // per thread; bounds runtime if the
                                     // scheduler never preempts mid-copy
    const STALL_QUOTA: u64 = 8;

    let d = WideDomain::<Native>::new(N, W, 32).unwrap();
    let var = d.var(&[0; W]).unwrap();
    let successes = AtomicU64::new(0);
    let interferences = AtomicU64::new(0);
    let stalls = AtomicU64::new(0);

    thread::scope(|s| {
        for p in 0..N {
            let var = &var;
            let successes = &successes;
            let interferences = &interferences;
            let stalls = &stalls;
            s.spawn(move || {
                let mem = Native;
                let me = ProcId::new(p);
                let mut keep = WideKeep::default();
                let mut buf = [0u64; W];
                let mut attempts = 0u64;
                loop {
                    attempts += 1;
                    match var.wll(&mem, &mut keep, &mut buf) {
                        WllOutcome::Success => {
                            // A consistent snapshot must be untorn: every
                            // SC writes W copies of one counter value.
                            let c = buf[0];
                            assert!(
                                buf.iter().all(|&x| x == c),
                                "torn WLL snapshot: {buf:?}"
                            );
                            let newval = [c + 1; W];
                            // Until the quota is met, commit via the
                            // stalled-SC hook: header swung, segments left
                            // one tag behind, so some process's next WLL
                            // *must* take the help branch.
                            let ok = if stalls.load(Ordering::Relaxed) < STALL_QUOTA {
                                let ok = var.begin_stalled_sc(&mem, me, &keep, &newval);
                                if ok {
                                    stalls.fetch_add(1, Ordering::Relaxed);
                                }
                                ok
                            } else {
                                var.sc(&mem, me, &keep, &newval)
                            };
                            if ok {
                                successes.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        WllOutcome::InterferedBy(_) => {
                            // A competing SC landed mid-copy; our keep is
                            // doomed (SC on it must fail), which we also
                            // verify before retrying.
                            interferences.fetch_add(1, Ordering::Relaxed);
                            assert!(
                                !var.sc(&mem, me, &keep, &[0; W]),
                                "SC after interfered WLL must fail"
                            );
                        }
                    }
                    if attempts >= MIN_OPS
                        && (interferences.load(Ordering::Relaxed) > 0 || attempts >= HARD_CAP)
                    {
                        break;
                    }
                }
            });
        }
    });

    // `read` loops WLL until consistent, repairing any final stall.
    let finalv = var.read(&Native);
    let total = successes.load(Ordering::Relaxed);
    assert!(
        finalv.iter().all(|&x| x == finalv[0]),
        "final value torn: {finalv:?}"
    );
    assert_eq!(
        finalv[0], total,
        "final counter must equal the number of successful SCs \
         (each SC read c and installed c+1 atomically)"
    );
    assert!(
        stalls.load(Ordering::Relaxed) >= STALL_QUOTA,
        "stalled SCs must have exercised the help branch"
    );
    // Adaptive loop above only gives up at a cap ~100x past MIN_OPS;
    // in practice preemption delivers interference in well under that.
    assert!(
        interferences.load(Ordering::Relaxed) > 0 || total >= N as u64 * HARD_CAP / 2,
        "contention never produced an interfered WLL"
    );
}

/// The Figure-4 hot path (LL/VL/SC from native CAS, with the backoff and
/// acquire/release orderings this PR added) as a contended counter:
/// `fetch_add` returns the pre-increment value, so across all threads the
/// returned values must be a permutation of 0..N*K — any lost update,
/// duplicated tag, or stale keep would produce a duplicate or a gap.
#[test]
fn native_counter_linearizes_under_thread_contention() {
    const N: usize = 4;
    const K: u64 = 25_000;

    let counter = Counter::new(CasLlSc::new_native(TagLayout::half(), 0).unwrap());
    let mut seen: Vec<Vec<u64>> = Vec::new();
    thread::scope(|s| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let counter = &counter;
                s.spawn(move || {
                    let mut ctx = Native;
                    (0..K).map(|_| counter.fetch_add(&mut ctx, 1)).collect::<Vec<u64>>()
                })
            })
            .collect();
        for h in handles {
            seen.push(h.join().unwrap());
        }
    });

    let mut all: Vec<u64> = seen.into_iter().flatten().collect();
    all.sort_unstable();
    let expect: Vec<u64> = (0..N as u64 * K).collect();
    assert_eq!(all, expect, "fetch_add history is not a permutation of 0..NK");
    assert_eq!(counter.get(&mut Native), N as u64 * K);
}
