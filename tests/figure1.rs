//! Figure 1 as a test: the program with two concurrent LL–SC sequences
//! cannot run on raw RLL/RSC but runs on every emulated LL/VL/SC.

use nbsp::core::bounded::BoundedDomain;
use nbsp::core::{CasLlSc, Keep, Native, RllLlSc, TagLayout};
use nbsp::memsim::{AccessBetween, InstructionSet, Machine, SimWord};

/// Runs Figure 1(a) — LL(X); read/write Z; LL(Y); VL(X); SC(Y); SC(X) —
/// generically, asserting every step behaves as the paper's semantics
/// demand.
macro_rules! figure_1a {
    ($x:expr, $y:expr, $ll:expr, $vl:expr, $sc:expr, $touch_z:expr) => {{
        let mut keep_x = Keep::default();
        let mut keep_y = Keep::default();
        let vx = $ll(&$x, &mut keep_x);
        $touch_z();
        let vy = $ll(&$y, &mut keep_y);
        assert!($vl(&$x, &keep_x), "VL(X) must hold");
        assert!($sc(&$y, &keep_y, vy + 1), "SC(Y) must succeed");
        assert!($sc(&$x, &keep_x, vx + 1), "SC(X) must succeed");
    }};
}

#[test]
fn raw_rll_rsc_cannot_express_figure_1a() {
    // One reservation per processor: after RLL(X), RLL(Y), only the Y
    // reservation exists; and merely touching Z already kills it.
    let m = Machine::builder(1)
        .instruction_set(InstructionSet::RllRscOnly)
        .build();
    let p = m.processor(0);
    let x = SimWord::new(10);
    let y = SimWord::new(20);
    let z = SimWord::new(0);

    let vx = p.rll(&x);
    p.write(&z, 1); // restriction #1: reservation invalidated
    assert!(!p.has_reservation());
    let vy = p.rll(&y); // claims the single LLBit for Y
    assert!(p.rsc(&y, vy + 1));
    // No reservation remains for X — the SC(X) of Figure 1(a) is
    // inexpressible (an RSC here would panic: reservation names no word).
    assert!(!p.has_reservation());
    let _ = vx;
}

#[test]
fn figure_1a_runs_on_figure_5_over_the_same_machine() {
    let m = Machine::builder(1)
        .instruction_set(InstructionSet::RllRscOnly)
        // Strict mode: prove the construction never violates restriction #1.
        .access_between(AccessBetween::Panic)
        .build();
    let p = m.processor(0);
    let x = RllLlSc::new(TagLayout::half(), 10).unwrap();
    let y = RllLlSc::new(TagLayout::half(), 20).unwrap();
    let z = SimWord::new(0);

    figure_1a!(
        x,
        y,
        |v: &RllLlSc, k: &mut Keep| v.ll(&p, k),
        |v: &RllLlSc, k: &Keep| v.vl(&p, k),
        |v: &RllLlSc, k: &Keep, val: u64| v.sc(&p, k, val),
        || p.write(&z, p.read(&z) + 1)
    );
    assert_eq!((x.read(&p), y.read(&p)), (11, 21));
}

#[test]
fn figure_1a_runs_on_figure_4_over_native_cas() {
    let x = CasLlSc::new_native(TagLayout::half(), 10).unwrap();
    let y = CasLlSc::new_native(TagLayout::half(), 20).unwrap();
    let mem = Native;
    figure_1a!(
        x,
        y,
        |v: &CasLlSc, k: &mut Keep| v.ll(&mem, k),
        |v: &CasLlSc, k: &Keep| v.vl(&mem, k),
        |v: &CasLlSc, k: &Keep, val: u64| v.sc(&mem, k, val),
        || ()
    );
    assert_eq!((x.read(&mem), y.read(&mem)), (11, 21));
}

#[test]
fn figure_1a_runs_on_figure_7_bounded() {
    // k = 2 concurrent sequences per process is exactly what Figure 1(a)
    // needs.
    let d = BoundedDomain::<Native>::new(2, 2).unwrap();
    let x = d.var(10).unwrap();
    let y = d.var(20).unwrap();
    let mut me = d.proc(0);
    let mem = Native;

    let (vx, keep_x) = x.ll(&mem, &mut me);
    let (vy, keep_y) = y.ll(&mem, &mut me);
    assert!(x.vl(&mem, &me, &keep_x));
    assert!(y.sc(&mem, &mut me, keep_y, vy + 1));
    assert!(x.sc(&mem, &mut me, keep_x, vx + 1));
    assert_eq!(x.peek(&mem), 11);
    assert_eq!(y.peek(&mem), 21);
    assert_eq!(me.free_slots(), 2);
}
