//! Integration tests for the `nbsp-serve` open-loop harness: seeded
//! determinism (the property `BENCH_serve.json` trend-tracking rests on),
//! conservation of requests, and the admission controller's effect on the
//! latency tail — all through the public `run_cell` entry point with real
//! worker threads.

use nbsp::serve::{
    run_cell, AdmissionConfig, ArrivalProcess, CellConfig, CellResult, ServeSinks, TokenBucket,
    Workload,
};

/// 2 workers x 1 µs mean service = 2M req/s virtual capacity.
fn cfg(rate_per_sec: f64, workload: Workload, admission: Option<AdmissionConfig>) -> CellConfig {
    CellConfig {
        seed: 0xfeed_beef,
        process: ArrivalProcess::Poisson { rate_per_sec },
        workload,
        workers: 2,
        requests: 30_000,
        service_mean_ns: 1_000.0,
        admission,
        ring_capacity: 512,
    }
}

fn overload_admission() -> Option<AdmissionConfig> {
    Some(AdmissionConfig {
        rate_per_sec: 1.7e6, // 85% of the 2M/s capacity
        burst: 128,
    })
}

#[test]
fn same_seed_yields_byte_identical_results() {
    // The full CellResult — every sojourn bucket, every counter, every
    // percentile — must be identical across runs. Real threads race on
    // the real structures in both runs; none of that may leak into the
    // reported numbers.
    for workload in [Workload::Counter, Workload::Stm] {
        let c = cfg(2.4e6, workload, overload_admission());
        let a: CellResult = run_cell(&c, None);
        let b: CellResult = run_cell(&c, None);
        assert_eq!(a, b, "{}: seeded runs must be byte-identical", workload.name());
        assert_eq!(a.snapshot.sojourn_ns, b.snapshot.sojourn_ns);
    }
}

#[test]
fn different_seeds_yield_different_streams() {
    let c1 = cfg(2.4e6, Workload::Counter, overload_admission());
    let mut c2 = c1.clone();
    c2.seed ^= 1;
    let a = run_cell(&c1, None);
    let b = run_cell(&c2, None);
    assert_ne!(
        a.snapshot.sojourn_ns, b.snapshot.sojourn_ns,
        "different seeds should not collide on the whole histogram"
    );
}

#[test]
fn admitted_plus_shed_equals_generated_and_all_admitted_complete() {
    for (rate, admission) in [
        (1.0e6, None),
        (2.4e6, None),
        (1.0e6, overload_admission()),
        (2.4e6, overload_admission()),
    ] {
        let c = cfg(rate, Workload::Queue, admission);
        let r = run_cell(&c, None);
        let snap = r.snapshot;
        assert_eq!(
            snap.admitted + snap.shed,
            c.requests,
            "every generated request is decided exactly once"
        );
        assert_eq!(snap.generated(), c.requests);
        assert_eq!(
            snap.completed, snap.admitted,
            "every admitted request is executed exactly once"
        );
        assert_eq!(
            snap.sojourns(),
            snap.admitted,
            "every admitted request gets exactly one sojourn observation"
        );
        if admission.is_none() {
            assert_eq!(snap.shed, 0, "no admission control, nothing shed");
        }
    }
}

#[test]
fn admission_on_beats_admission_off_at_overload() {
    // 1.2x capacity: without admission the open-loop backlog grows
    // without bound and p99 blows up; the token bucket sheds the excess
    // and caps the tail. Virtual-time determinism makes this a hard
    // inequality, not a statistical one.
    let off = run_cell(&cfg(2.4e6, Workload::Stack, None), None);
    let on = run_cell(&cfg(2.4e6, Workload::Stack, overload_admission()), None);
    assert!(on.snapshot.shed > 0, "overload must shed");
    assert!(
        on.p99_ns < off.p99_ns,
        "admission on p99 {} must beat admission off p99 {}",
        on.p99_ns,
        off.p99_ns
    );
    assert!(
        on.p999_ns <= off.p999_ns,
        "the extreme tail must not get worse with admission on"
    );
}

#[test]
fn telemetry_sinks_see_every_admission_decision_exactly_once() {
    // With the feature on, serve_admit + serve_shed flushed into the
    // run-level sinks must equal the generated count exactly (the
    // slot-collision guard in run_cell is what makes this exact); with
    // the feature off the sink stays all-zero.
    let sinks = ServeSinks::new().unwrap();
    let c = cfg(2.4e6, Workload::Counter, overload_admission());
    let r = run_cell(&c, Some(&sinks));
    use nbsp::telemetry::{AtomicTotals, Event};
    let totals = sinks.events.totals();
    let decided = totals[Event::ServeAdmit.index()] + totals[Event::ServeShed.index()];
    if nbsp::telemetry::enabled() {
        assert_eq!(decided, c.requests);
        assert_eq!(totals[Event::ServeAdmit.index()], r.snapshot.admitted);
        assert_eq!(totals[Event::ServeShed.index()], r.snapshot.shed);
    } else {
        assert_eq!(decided, 0);
    }
}

#[test]
fn token_bucket_survives_a_real_thread_stress() {
    // Integration-level variant of the crate's no-double-spend unit test:
    // many threads, a moving clock, and the invariant that the total
    // admitted never exceeds the tokens that ever existed (initial burst
    // + refills), checked against a generous upper bound.
    const THREADS: usize = 8;
    const PER: u64 = 20_000;
    let bucket = TokenBucket::new(1e6, 64); // 1 token/µs, depth 64
    let admitted = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let bucket = &bucket;
            let admitted = &admitted;
            s.spawn(move || {
                let mut mine = 0;
                for i in 0..PER {
                    // Each thread walks its own (deterministic) clock:
                    // interleavings vary, token conservation must not.
                    let now = i * 200 + t as u64;
                    if bucket.admit(now) {
                        mine += 1;
                    }
                }
                admitted.fetch_add(mine, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    // Clock span ~4 ms => at most 64 (burst) + 4000 (refill) + 1 (stamp
    // rounding) tokens ever exist.
    let got = admitted.load(std::sync::atomic::Ordering::Relaxed);
    assert!(got <= 64 + 4_000 + 1, "over-admitted: {got}");
    assert!(got >= 64, "the initial burst alone admits 64");
}
