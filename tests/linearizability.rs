//! Linearizability of every LL/VL/SC implementation under randomized
//! concurrent schedules, checked against the Figure-2 specification.
//!
//! This is the executable stand-in for the paper's deferred hand proofs:
//! for each construction we record real multi-threaded histories (3
//! processes × 4 operations, hundreds of seeds) and run the Wing & Gong
//! checker. A deliberately broken construction — SC by value comparison
//! without a tag, i.e. the ABA bug the paper's tags exist to prevent — is
//! shown to *fail* the same check, so a pass is meaningful.

use std::sync::atomic::{AtomicU64, Ordering};

use nbsp::core::bounded::BoundedDomain;
use nbsp::core::lock_baseline::LockLlSc;
use nbsp::core::{CasLlSc, LlScVar, Native, RllLlSc, TagLayout};
use nbsp::linearize::{history, is_linearizable, Completed, HistoryClock, LlScSpec, Op, Recorder, Ret};
use nbsp::memsim::{InstructionSet, Machine, ProcId, SpuriousMode};

const THREADS: usize = 3;
const OPS_PER_THREAD: usize = 4;
const SEEDS: u64 = 120;

/// Deterministic op plan from a seed: values are small so collisions (and
/// would-be ABA) are frequent.
fn plan(seed: u64, t: usize) -> Vec<Op> {
    let mut x = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(t as u64);
    (0..OPS_PER_THREAD)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match (x >> 60) % 4 {
                0 => Op::Ll,
                1 => Op::Vl,
                2 => Op::Sc(x >> 32 & 0x3),
                _ => Op::Read,
            }
        })
        .collect()
}

/// Executes an op plan against `var` through its generic interface,
/// recording each operation.
fn drive<V: LlScVar>(var: &V, ctx: &mut V::Ctx<'_>, rec: &mut Recorder, ops: &[Op]) {
    let mut keep = V::Keep::default();
    for op in ops {
        match *op {
            Op::Ll => {
                let _ = rec.record(Op::Ll, || Ret::Value(var.ll(ctx, &mut keep)));
            }
            Op::Vl => {
                let _ = rec.record(Op::Vl, || Ret::Bool(var.vl(ctx, &keep)));
            }
            Op::Sc(v) => {
                let _ = rec.record(Op::Sc(v), || Ret::Bool(var.sc(ctx, &mut keep, v)));
            }
            Op::Read => {
                let _ = rec.record(Op::Read, || Ret::Value(var.read(ctx)));
            }
            Op::Cas { .. } => unreachable!("plan() never emits CAS"),
        }
    }
    var.cl(ctx, &mut keep); // release bounded slots etc.
}

fn check(h: &[Completed], label: &str, seed: u64) {
    assert!(
        is_linearizable(LlScSpec::new(THREADS, 0), h),
        "{label}: seed {seed} produced a non-linearizable history:\n{h:#?}"
    );
}

#[test]
fn figure4_native_is_linearizable() {
    for seed in 0..SEEDS {
        let var = CasLlSc::new_native(TagLayout::new(60, 4).unwrap(), 0).unwrap();
        let clock = HistoryClock::new();
        let logs: Vec<Vec<Completed>> = std::thread::scope(|s| {
            (0..THREADS)
                .map(|t| {
                    let var = &var;
                    let mut rec = clock.recorder(ProcId::new(t));
                    let ops = plan(seed, t);
                    s.spawn(move || {
                        drive(var, &mut Native, &mut rec, &ops);
                        rec.into_events()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        check(&history::merge(logs), "CasLlSc<Native>", seed);
    }
}

#[test]
fn lock_baseline_is_linearizable() {
    for seed in 0..SEEDS {
        let var = LockLlSc::new(THREADS, 0);
        let clock = HistoryClock::new();
        let logs: Vec<Vec<Completed>> = std::thread::scope(|s| {
            (0..THREADS)
                .map(|t| {
                    let var = &var;
                    let mut rec = clock.recorder(ProcId::new(t));
                    let ops = plan(seed, t);
                    s.spawn(move || {
                        let mut ctx = ProcId::new(t);
                        drive(var, &mut ctx, &mut rec, &ops);
                        rec.into_events()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        check(&history::merge(logs), "LockLlSc", seed);
    }
}

#[test]
fn figure5_on_rll_rsc_machine_is_linearizable() {
    for seed in 0..SEEDS / 3 {
        let m = Machine::builder(THREADS)
            .instruction_set(InstructionSet::RllRscOnly)
            .spurious(SpuriousMode::EveryNth { n: 7 })
            .seed(seed)
            .build();
        let var = RllLlSc::new(TagLayout::new(60, 4).unwrap(), 0).unwrap();
        let clock = HistoryClock::new();
        let logs: Vec<Vec<Completed>> = std::thread::scope(|s| {
            (0..THREADS)
                .map(|t| {
                    let var = &var;
                    let p = m.processor(t);
                    let mut rec = clock.recorder(ProcId::new(t));
                    let ops = plan(seed, t);
                    s.spawn(move || {
                        let mut ctx: &nbsp::memsim::Processor = &p;
                        drive(var, &mut ctx, &mut rec, &ops);
                        rec.into_events()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        check(&history::merge(logs), "RllLlSc", seed);
    }
}

#[test]
fn figure7_bounded_is_linearizable() {
    for seed in 0..SEEDS / 3 {
        let d = BoundedDomain::<Native>::new(THREADS, 2).unwrap();
        let var = d.var(0).unwrap();
        let clock = HistoryClock::new();
        let logs: Vec<Vec<Completed>> = std::thread::scope(|s| {
            (0..THREADS)
                .map(|t| {
                    let var = &var;
                    let mut me = d.proc(t);
                    let mut rec = clock.recorder(ProcId::new(t));
                    let ops = plan(seed, t);
                    s.spawn(move || {
                        drive(var, &mut me, &mut rec, &ops);
                        rec.into_events()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        check(&history::merge(logs), "BoundedVar", seed);
    }
}

// ---------------------------------------------------------------------------
// Negative control: a tagless implementation must FAIL the checker.
// ---------------------------------------------------------------------------

/// LL/SC "implemented" as value-compare CAS — the ABA-unsound shortcut the
/// paper's tags exist to rule out.
#[derive(Debug)]
struct BrokenLlSc(AtomicU64);

impl LlScVar for BrokenLlSc {
    type Keep = Option<u64>;
    type Ctx<'a> = ();

    fn ll(&self, _ctx: &mut (), keep: &mut Option<u64>) -> u64 {
        let v = self.0.load(Ordering::SeqCst);
        *keep = Some(v);
        v
    }

    fn vl(&self, _ctx: &mut (), keep: &Option<u64>) -> bool {
        keep.is_some_and(|k| self.0.load(Ordering::SeqCst) == k)
    }

    fn sc(&self, _ctx: &mut (), keep: &mut Option<u64>, new: u64) -> bool {
        keep.take().is_some_and(|k| {
            self.0
                .compare_exchange(k, new, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        })
    }

    fn cl(&self, _ctx: &mut (), keep: &mut Option<u64>) {
        *keep = None;
    }

    fn read(&self, _ctx: &mut ()) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    fn max_val(&self) -> u64 {
        u64::MAX
    }
}

/// Runs the canonical ABA interleaving sequentially and returns the
/// recorded history: p0 LLs 0; p1 drives the value 0 → 7 → 0 with two
/// complete LL/SC pairs; p0 then attempts SC(5).
fn aba_history<V: LlScVar>(var: &V, c0: &mut V::Ctx<'_>, c1: &mut V::Ctx<'_>) -> Vec<Completed> {
    let clock = HistoryClock::new();
    let mut r0 = clock.recorder(ProcId::new(0));
    let mut r1 = clock.recorder(ProcId::new(1));
    let mut k0 = V::Keep::default();
    let mut k1 = V::Keep::default();
    let _ = r0.record(Op::Ll, || Ret::Value(var.ll(c0, &mut k0)));
    for target in [7u64, 0] {
        let _ = r1.record(Op::Ll, || Ret::Value(var.ll(c1, &mut k1)));
        let _ = r1.record(Op::Sc(target), || Ret::Bool(var.sc(c1, &mut k1, target)));
    }
    let _ = r0.record(Op::Sc(5), || Ret::Bool(var.sc(c0, &mut k0, 5)));
    history::merge([r0.into_events(), r1.into_events()])
}

#[test]
fn tagless_implementation_fails_the_checker() {
    let broken = BrokenLlSc(AtomicU64::new(0));
    let h = aba_history(&broken, &mut (), &mut ());
    // The broken SC succeeded…
    assert_eq!(h.last().unwrap().ret, Ret::Bool(true));
    // …and the checker rejects the resulting history.
    assert!(
        !is_linearizable(LlScSpec::new(2, 0), &h),
        "the checker must reject the ABA history"
    );

    // The honest Figure-4 implementation, driven identically, fails the
    // final SC and passes the checker.
    let honest = CasLlSc::new_native(TagLayout::half(), 0).unwrap();
    let h = aba_history(&honest, &mut Native, &mut Native);
    assert_eq!(h.last().unwrap().ret, Ret::Bool(false));
    assert!(is_linearizable(LlScSpec::new(2, 0), &h));
}
