//! Differential testing: every implementation must agree, operation by
//! operation, with the Figure-2 specification on deterministic sequential
//! interleavings of multiple processes.
//!
//! Sequential execution makes outcomes deterministic, so unlike the
//! linearizability tests (which accept any legal order) this test demands
//! *exact* equality on thousands of proptest-generated multi-process
//! programs — a much finer sieve for off-by-one tag handling, stale keeps,
//! or slot bookkeeping errors.

use proptest::prelude::*;

use nbsp::core::bounded::BoundedDomain;
use nbsp::core::keep_search::{KeepRegistry, PerVarKeepVar, RegistryKeepVar};
use nbsp::core::lock_baseline::LockLlSc;
use nbsp::core::wide::{WideDomain, WideKeep};
use nbsp::core::{CasLlSc, LlScVar, Native, RllLlSc, TagLayout};
use nbsp::linearize::{LlScSpec, Op, Ret, SeqSpec};
use nbsp::memsim::{InstructionSet, Machine, ProcId, SpuriousMode};

const N: usize = 3;
const MAX_VAL: u64 = 15; // small so values collide and ABA patterns arise

#[derive(Clone, Debug)]
enum PlanOp {
    Ll,
    Vl,
    Sc(u64),
    Read,
}

fn plan_strategy() -> impl Strategy<Value = Vec<(usize, PlanOp)>> {
    proptest::collection::vec(
        (0..N, 0u8..4, 0..=MAX_VAL).prop_map(|(p, kind, v)| {
            let op = match kind {
                0 => PlanOp::Ll,
                1 => PlanOp::Vl,
                2 => PlanOp::Sc(v),
                _ => PlanOp::Read,
            };
            (p, op)
        }),
        0..120,
    )
}

/// Applies the plan to `var` (through its generic interface) and to the
/// spec, asserting equal outcomes at every step.
fn run_differential<V: LlScVar>(var: &V, ctxs: &mut [&mut V::Ctx<'_>], plan: &[(usize, PlanOp)]) {
    let mut spec = LlScSpec::new(N, 0);
    let mut keeps: Vec<V::Keep> = (0..N).map(|_| V::Keep::default()).collect();
    for (step, (p, op)) in plan.iter().enumerate() {
        let proc = ProcId::new(*p);
        let (got, want) = match op {
            PlanOp::Ll => (
                Ret::Value(var.ll(ctxs[*p], &mut keeps[*p])),
                spec.apply(proc, &Op::Ll),
            ),
            PlanOp::Vl => (
                Ret::Bool(var.vl(ctxs[*p], &keeps[*p])),
                spec.apply(proc, &Op::Vl),
            ),
            PlanOp::Sc(v) => (
                Ret::Bool(var.sc(ctxs[*p], &mut keeps[*p], *v)),
                spec.apply(proc, &Op::Sc(*v)),
            ),
            PlanOp::Read => (
                Ret::Value(var.read(ctxs[*p])),
                spec.apply(proc, &Op::Read),
            ),
        };
        assert_eq!(got, want, "step {step}: {op:?} by p{p} diverged from Figure 2");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn figure4_native_matches_spec(plan in plan_strategy()) {
        let var = CasLlSc::new_native(TagLayout::new(60, 4).unwrap(), 0).unwrap();
        let mut c0 = Native;
        let mut c1 = Native;
        let mut c2 = Native;
        run_differential(&var, &mut [&mut c0, &mut c1, &mut c2], &plan);
    }

    #[test]
    fn figure5_matches_spec_even_with_spurious_failures(plan in plan_strategy()) {
        let m = Machine::builder(N)
            .instruction_set(InstructionSet::RllRscOnly)
            .spurious(SpuriousMode::EveryNth { n: 3 })
            .build();
        let var = RllLlSc::new(TagLayout::new(60, 4).unwrap(), 0).unwrap();
        let procs = m.processors();
        let mut c0: &nbsp::memsim::Processor = &procs[0];
        let mut c1: &nbsp::memsim::Processor = &procs[1];
        let mut c2: &nbsp::memsim::Processor = &procs[2];
        run_differential(&var, &mut [&mut c0, &mut c1, &mut c2], &plan);
    }

    #[test]
    fn figure7_bounded_matches_spec(plan in plan_strategy()) {
        let d = BoundedDomain::<Native>::new(N, 2).unwrap();
        let var = d.var(0).unwrap();
        let mut c0 = d.proc(0);
        let mut c1 = d.proc(1);
        let mut c2 = d.proc(2);
        run_differential(&var, &mut [&mut c0, &mut c1, &mut c2], &plan);
    }

    #[test]
    fn lock_baseline_matches_spec(plan in plan_strategy()) {
        let var = LockLlSc::new(N, 0);
        let mut c0 = ProcId::new(0);
        let mut c1 = ProcId::new(1);
        let mut c2 = ProcId::new(2);
        run_differential(&var, &mut [&mut c0, &mut c1, &mut c2], &plan);
    }

    #[test]
    fn per_var_keep_ablation_matches_spec(plan in plan_strategy()) {
        let var = PerVarKeepVar::new(N, TagLayout::new(60, 4).unwrap(), 0).unwrap();
        let mut c0 = ProcId::new(0);
        let mut c1 = ProcId::new(1);
        let mut c2 = ProcId::new(2);
        run_differential(&var, &mut [&mut c0, &mut c1, &mut c2], &plan);
    }

    #[test]
    fn registry_keep_ablation_matches_spec(plan in plan_strategy()) {
        let r = KeepRegistry::new();
        let var = RegistryKeepVar::new(&r, N, TagLayout::new(60, 4).unwrap(), 0).unwrap();
        let mut c0 = ProcId::new(0);
        let mut c1 = ProcId::new(1);
        let mut c2 = ProcId::new(2);
        run_differential(&var, &mut [&mut c0, &mut c1, &mut c2], &plan);
    }

    /// Figure 6 (wide) against a hand-rolled W-word Figure-2 spec.
    #[test]
    fn figure6_wide_matches_multiword_spec(plan in plan_strategy()) {
        const W: usize = 3;
        let d = WideDomain::<Native>::new(N, W, 32).unwrap();
        let var = d.var(&[0; W]).unwrap();
        let mem = Native;

        // Spec state: W-word value + per-process valid bits. The paper
        // leaves VL/SC undefined before a process's first LL, and the
        // `WideKeep` type (unlike the Option-style generic keeps) cannot
        // express "no sequence", so such ops are skipped.
        let mut vals = [0u64; W];
        let mut valid = [false; N];
        let mut lled = [false; N];
        let mut keeps: Vec<WideKeep> = (0..N).map(|_| WideKeep::default()).collect();

        for (p, op) in &plan {
            let proc = ProcId::new(*p);
            if !lled[*p] && !matches!(op, PlanOp::Ll | PlanOp::Read) {
                continue;
            }
            match op {
                PlanOp::Ll => {
                    lled[*p] = true;
                    let mut buf = [0u64; W];
                    let out = var.wll(&mem, &mut keeps[*p], &mut buf);
                    prop_assert!(out.is_success(), "sequential WLL cannot be interfered with");
                    prop_assert_eq!(buf, vals);
                    valid[*p] = true;
                }
                PlanOp::Vl => {
                    prop_assert_eq!(var.vl(&mem, &keeps[*p]), valid[*p]);
                }
                PlanOp::Sc(v) => {
                    let newval = [*v, v + 1, v + 2];
                    let got = var.sc(&mem, proc, &keeps[*p], &newval);
                    prop_assert_eq!(got, valid[*p]);
                    if valid[*p] {
                        vals = newval;
                        valid = [false; N];
                    }
                }
                PlanOp::Read => {
                    prop_assert_eq!(var.read(&mem), vals.to_vec());
                }
            }
        }
    }
}

/// The VL-before-any-LL edge case, which the spec defines as false, across
/// all implementations at once.
#[test]
fn vl_before_ll_is_false_everywhere() {
    let cas = CasLlSc::new_native(TagLayout::half(), 0).unwrap();
    assert!(!LlScVar::vl(
        &cas,
        &mut Native,
        &<CasLlSc<Native> as LlScVar>::Keep::default()
    ));

    let lock = LockLlSc::new(1, 0);
    assert!(!LlScVar::vl(&lock, &mut ProcId::new(0), &false));

    let d = BoundedDomain::<Native>::new(1, 1).unwrap();
    let b = d.var(0).unwrap();
    let mut me = d.proc(0);
    assert!(!LlScVar::vl(&b, &mut me, &None));
}
