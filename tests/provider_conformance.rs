//! Provider-conformance suite: every entry in the `nbsp_core::provider`
//! registry must implement the same LL/VL/SC contract, checked through
//! one generic body per property and stamped out over the whole registry
//! by `for_each_provider!` — so a provider added to the registry is
//! conformance-tested by construction, and one that breaks the contract
//! fails here by name.
//!
//! Five properties per provider:
//!
//! * **semantics** — LL/VL/SC single-thread sequencing: an undisturbed
//!   sequence validates and commits; a sequence whose variable changed
//!   underneath (here: via a second context's committed SC) must fail
//!   both VL and SC; CL abandons a sequence without poisoning the next.
//! * **wraparound** — thousands of sequential increments force tag/stamp
//!   reuse in every bounded scheme (the registry's tag universes and
//!   version pools are all far smaller than the iteration count); values
//!   must stay exact through every recycling boundary.
//! * **linearization** — two writer threads race increments while a
//!   reader polls; the counter must end exact (lost updates would mean a
//!   falsely-successful SC) and reads must be monotone (a torn or stale
//!   read would break linearizability of `read`).
//! * **keep_budget** — the `PROVIDER_K` sizing contract: every provider
//!   must sustain `PROVIDER_K` *concurrent* open LL–SC sequences on one
//!   context (the audited LLX/SCX worst case: four held handles plus one
//!   transient — see the sizing table in `provider.rs`), with all of them
//!   still able to validate and commit. Exceeding the budget on the
//!   slot-array domains is a *documented panic* ("exceeded k"), never UB —
//!   asserted by the targeted `keep_exhaustion_*` tests below the macro.
//! * **churn** — the `join`/`retire` membership contract: fixed-N
//!   providers refuse with the typed `PoolExhausted` error and their
//!   no-op `retire` leaves preadmitted slots working; dynamic providers
//!   hand out fresh slots until their headroom is exhausted, refuse
//!   past capacity, and recycle retired slots into working contexts
//!   with no increments lost.
//!
//! The suite is feature-independent: CI's no-default-features matrix runs
//! the same assertions with telemetry compiled out.

use nbsp_core::{for_each_provider, Error, LlScVar, Provider};

/// LL/VL/SC sequencing contract, one provider.
fn semantics<P: Provider>() {
    let env = P::env(3).expect("provider env");
    let var = P::var(&env, 7).expect("provider var");

    // Context 0: an undisturbed sequence reads, validates, and commits.
    let mut tc0 = P::thread_ctx(&env, 0);
    let mut ctx0 = P::ctx(&mut tc0);
    let mut keep0 = <P::Var as LlScVar>::Keep::default();
    assert_eq!(var.ll(&mut ctx0, &mut keep0), 7, "LL reads initial value");
    assert!(var.vl(&mut ctx0, &keep0), "undisturbed VL validates");
    assert!(var.sc(&mut ctx0, &mut keep0, 8), "undisturbed SC succeeds");
    assert_eq!(var.read(&mut ctx0), 8, "committed value visible");

    // A disturbed sequence: context 1 LLs, context 2 commits an SC in
    // between, so context 1's VL and SC must both fail.
    let mut tc1 = P::thread_ctx(&env, 1);
    let mut tc2 = P::thread_ctx(&env, 2);
    let mut ctx1 = P::ctx(&mut tc1);
    let mut ctx2 = P::ctx(&mut tc2);
    let mut keep1 = <P::Var as LlScVar>::Keep::default();
    let mut keep2 = <P::Var as LlScVar>::Keep::default();
    assert_eq!(var.ll(&mut ctx1, &mut keep1), 8);
    let _ = var.ll(&mut ctx2, &mut keep2);
    assert!(var.sc(&mut ctx2, &mut keep2, 9), "interfering SC commits");
    assert!(!var.vl(&mut ctx1, &keep1), "VL must fail after interference");
    assert!(
        !var.sc(&mut ctx1, &mut keep1, 10),
        "SC must fail after interference"
    );
    assert_eq!(var.read(&mut ctx1), 9, "failed SC must not write");

    // CL abandons a sequence; the next sequence on the same context is
    // unaffected.
    let mut keep = <P::Var as LlScVar>::Keep::default();
    let _ = var.ll(&mut ctx0, &mut keep);
    var.cl(&mut ctx0, &mut keep);
    let mut keep = <P::Var as LlScVar>::Keep::default();
    let v = var.ll(&mut ctx0, &mut keep);
    assert!(var.sc(&mut ctx0, &mut keep, v + 1), "SC after CL succeeds");
    assert_eq!(var.read(&mut ctx0), 10);
}

/// Tag/stamp wraparound, one provider: enough sequential successful SCs
/// to cycle every tag universe and version pool in the registry several
/// times over.
fn wraparound<P: Provider>() {
    const OPS: u64 = 3_000;
    let env = P::env(2).expect("provider env");
    let var = P::var(&env, 0).expect("provider var");
    let mut tc = P::thread_ctx(&env, 0);
    let mut ctx = P::ctx(&mut tc);
    let mut keep = <P::Var as LlScVar>::Keep::default();
    // Stay within every provider's value width (the emulated-CAS entry
    // steals tag bits from the value field).
    let mask = var.max_val().min(0xFFFF);
    for i in 0..OPS {
        let v = var.ll(&mut ctx, &mut keep);
        assert_eq!(v, i & mask, "value drift at op {i}");
        assert!(
            var.sc(&mut ctx, &mut keep, (i + 1) & mask),
            "uncontended SC failed at op {i}"
        );
    }
    assert_eq!(var.read(&mut ctx), OPS & mask);
}

/// Multi-thread linearization, one provider: 2 racing writers + 1
/// polling reader.
fn linearization<P: Provider>() {
    const WRITERS: usize = 2;
    const PER_WRITER: u64 = 2_000;
    // WRITERS contexts + the polling reader + one more for the final
    // read (each thread_ctx claims its slot once).
    let env = P::env(WRITERS + 2).expect("provider env");
    let var = P::var(&env, 0).expect("provider var");
    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let var = &var;
            let mut tc = P::thread_ctx(&env, t);
            s.spawn(move || {
                let mut ctx = P::ctx(&mut tc);
                let mut keep = <P::Var as LlScVar>::Keep::default();
                for _ in 0..PER_WRITER {
                    loop {
                        let v = var.ll(&mut ctx, &mut keep);
                        if var.sc(&mut ctx, &mut keep, v + 1) {
                            break;
                        }
                    }
                }
            });
        }
        let var = &var;
        let mut tc = P::thread_ctx(&env, WRITERS);
        s.spawn(move || {
            let mut ctx = P::ctx(&mut tc);
            let mut prev = 0;
            for _ in 0..1_000 {
                let v = var.read(&mut ctx);
                assert!(v >= prev, "non-monotone read: {v} after {prev}");
                assert!(
                    v <= WRITERS as u64 * PER_WRITER,
                    "read beyond total increments: {v}"
                );
                prev = v;
            }
        });
    });
    let mut tc = P::thread_ctx(&env, WRITERS + 1);
    let mut ctx = P::ctx(&mut tc);
    assert_eq!(
        var.read(&mut ctx),
        WRITERS as u64 * PER_WRITER,
        "lost updates: some SC falsely succeeded"
    );
}

/// Membership churn, one provider: the `join`/`retire` contract. A
/// fixed-N provider must refuse with the typed `PoolExhausted` error
/// (and its no-op `retire` must not disturb the preadmitted slots); a
/// dynamic provider must hand out fresh working slots, refuse once its
/// headroom is exhausted, and reuse retired slots.
fn churn<P: Provider>() {
    let env = P::env(2).expect("provider env");
    let var = P::var(&env, 0).expect("provider var");
    match P::join(&env) {
        Err(Error::PoolExhausted { .. }) => {
            // Fixed-N: joining is always refused, retire is a no-op,
            // and neither disturbs a preadmitted slot's sequences.
            P::retire(&env, 0);
            let mut tc = P::thread_ctx(&env, 0);
            let mut ctx = P::ctx(&mut tc);
            let mut keep = <P::Var as LlScVar>::Keep::default();
            let v = var.ll(&mut ctx, &mut keep);
            assert!(var.sc(&mut ctx, &mut keep, v + 1), "SC after no-op retire");
            assert_eq!(var.read(&mut ctx), v + 1);
        }
        Err(e) => panic!("join refusal must be PoolExhausted, got: {e}"),
        Ok(first) => {
            // Dynamic: drain the headroom. Every joined slot must be a
            // working context (one committed increment each).
            let mut slots = vec![first];
            loop {
                match P::join(&env) {
                    Ok(p) => slots.push(p),
                    Err(Error::PoolExhausted { capacity }) => {
                        assert!(
                            capacity >= 2 + slots.len(),
                            "reported capacity {capacity} below the {} slots seen",
                            2 + slots.len(),
                        );
                        break;
                    }
                    Err(e) => panic!("exhausted join must be PoolExhausted, got: {e}"),
                }
                assert!(slots.len() <= 1024, "join never reported exhaustion");
            }
            let joined = slots.len() as u64;
            for &p in &slots {
                let mut tc = P::thread_ctx(&env, p);
                let mut ctx = P::ctx(&mut tc);
                let mut keep = <P::Var as LlScVar>::Keep::default();
                loop {
                    let v = var.ll(&mut ctx, &mut keep);
                    if var.sc(&mut ctx, &mut keep, v + 1) {
                        break;
                    }
                }
            }
            // Retire-then-rejoin: every retired slot becomes joinable
            // again, and the recycled contexts still commit.
            for &p in &slots {
                P::retire(&env, p);
            }
            let mut recycled = Vec::new();
            for _ in 0..slots.len() {
                recycled.push(P::join(&env).expect("retired slots must be joinable again"));
            }
            for &p in &recycled {
                let mut tc = P::thread_ctx(&env, p);
                let mut ctx = P::ctx(&mut tc);
                let mut keep = <P::Var as LlScVar>::Keep::default();
                loop {
                    let v = var.ll(&mut ctx, &mut keep);
                    if var.sc(&mut ctx, &mut keep, v + 1) {
                        break;
                    }
                }
                P::retire(&env, p);
            }
            let mut tc = P::thread_ctx(&env, 0);
            let mut ctx = P::ctx(&mut tc);
            assert_eq!(
                var.read(&mut ctx),
                2 * joined,
                "increments lost across join/retire churn"
            );
        }
    }
}

/// The `PROVIDER_K` budget, one provider: open `PROVIDER_K` concurrent
/// LL–SC sequences on distinct variables from one context (the deepest
/// nesting LLX/SCX reaches — see `provider.rs`'s sizing table), interleave
/// a validation pass, then commit every one of them.
fn keep_budget<P: Provider>() {
    use nbsp_core::provider::PROVIDER_K;
    let env = P::env(1).expect("provider env");
    let vars: Vec<P::Var> = (0..PROVIDER_K)
        .map(|i| P::var(&env, i as u64).expect("provider var"))
        .collect();
    let mut tc = P::thread_ctx(&env, 0);
    let mut ctx = P::ctx(&mut tc);
    let mut keeps: Vec<<P::Var as LlScVar>::Keep> = Vec::new();
    for (i, var) in vars.iter().enumerate() {
        let mut keep = <P::Var as LlScVar>::Keep::default();
        assert_eq!(var.ll(&mut ctx, &mut keep), i as u64);
        keeps.push(keep);
    }
    for (var, keep) in vars.iter().zip(&keeps) {
        assert!(var.vl(&mut ctx, keep), "held sequence must still validate");
    }
    for (i, (var, keep)) in vars.iter().zip(&mut keeps).enumerate() {
        assert!(
            var.sc(&mut ctx, keep, i as u64 + 100),
            "sequence {i} of {PROVIDER_K} must commit"
        );
        assert_eq!(var.read(&mut ctx), i as u64 + 100);
    }
}

/// One-past-the-budget, one slot-array provider: `PROVIDER_K + 1`
/// concurrent sequences must hit the *documented* failure mode — the
/// "exceeded k" panic from the domain's slot allocator — instead of UB or
/// silent corruption. (Only the domain-based entries have per-process
/// slot arrays to exhaust; the CAS-keep families allocate keeps
/// independently and have no such bound.)
fn keep_exhaustion<P: Provider>() {
    use nbsp_core::provider::PROVIDER_K;
    let env = P::env(1).expect("provider env");
    let vars: Vec<P::Var> = (0..=PROVIDER_K)
        .map(|_| P::var(&env, 0).expect("provider var"))
        .collect();
    let mut tc = P::thread_ctx(&env, 0);
    let mut ctx = P::ctx(&mut tc);
    let mut keeps: Vec<<P::Var as LlScVar>::Keep> = Vec::new();
    for var in &vars {
        let mut keep = <P::Var as LlScVar>::Keep::default();
        let _ = var.ll(&mut ctx, &mut keep); // the K+1th must panic
        keeps.push(keep);
    }
    unreachable!("PROVIDER_K + 1 concurrent sequences must panic");
}

#[test]
#[should_panic(expected = "exceeded k")]
fn keep_exhaustion_fig7_bounded() {
    keep_exhaustion::<nbsp_core::provider::Fig7Bounded>();
}

#[test]
#[should_panic(expected = "exceeded k")]
fn keep_exhaustion_fig7_bounded_scan() {
    keep_exhaustion::<nbsp_core::provider::Fig7BoundedScan>();
}

#[test]
#[should_panic(expected = "exceeded k")]
fn keep_exhaustion_constant_time() {
    keep_exhaustion::<nbsp_core::provider::ConstantTime>();
}

// The module generated per provider by `for_each_provider!`: five
// `#[test]`s per registry entry, named by the provider's snake_case slug.
macro_rules! conformance {
    ($name:ident, $provider:ty) => {
        mod $name {
            #[test]
            fn semantics() {
                super::semantics::<$provider>();
            }

            #[test]
            fn keep_budget() {
                super::keep_budget::<$provider>();
            }

            #[test]
            fn wraparound() {
                super::wraparound::<$provider>();
            }

            #[test]
            fn linearization() {
                super::linearization::<$provider>();
            }

            #[test]
            fn churn() {
                super::churn::<$provider>();
            }
        }
    };
}

for_each_provider!(conformance);
