//! Real-thread stress test for the telemetry snapshot pair: the racy
//! matrix-sum reader versus the Figure-6-backed consistent reader.
//!
//! Writer threads maintain a cross-event invariant — every batch adds the
//! same amount to `TagAlloc` and `RscSpurious` — and flush at batch
//! boundaries. The invariant pair is chosen because the consistent
//! reader's own flush path (a `WideVar` WLL/SC loop) records
//! `ScSuccess`/`ScFail`/`LlRestart`/help events but never those two, so
//! the invariant is not perturbed by the act of observing it.
//!
//! Assertions:
//! * the atomic reader NEVER observes a torn state: the two events are
//!   equal at every read, and every event is monotonic across reads;
//! * after quiescence (all writers joined, final flushes done), the
//!   atomic totals match the per-thread operation counts exactly;
//! * the racy reader's tears are counted (experiment E11 demonstrates
//!   that they occur; asserting `>= 1` here would make the test flaky on
//!   a lightly loaded machine, so this test only requires that the racy
//!   reader, too, converges to the exact totals at quiescence).

#![cfg(feature = "telemetry")]

use std::sync::atomic::{AtomicBool, Ordering};

use nbsp::core::WideTotals;
use nbsp::telemetry::{racy_totals, record_n, AtomicTotals, Event, Flusher};

const WRITERS: usize = 4;
const BATCHES: u64 = 5_000;
const PER_BATCH: u64 = 3;

#[test]
fn atomic_snapshots_are_never_torn_and_exact_at_quiescence() {
    let sink = WideTotals::with_all_slots().expect("sink construction");
    let stop = AtomicBool::new(false);

    // Other tests in this binary (there are none today) or the harness
    // could have recorded already; work in deltas from a baseline.
    let base_atomic = sink.totals();
    let base_racy = racy_totals();
    assert_eq!(base_atomic, [0; nbsp::telemetry::EVENT_COUNT]);

    let racy_tears = std::thread::scope(|s| {
        for _ in 0..WRITERS {
            s.spawn(|| {
                let mut flusher = Flusher::new();
                for _ in 0..BATCHES {
                    // The invariant pair: always incremented together,
                    // always flushed together.
                    record_n(Event::TagAlloc, PER_BATCH);
                    record_n(Event::RscSpurious, PER_BATCH);
                    flusher.flush(&sink);
                }
                stop.store(true, Ordering::Relaxed);
            });
        }

        s.spawn(|| {
            let mut tears = 0u64;
            let mut prev = [0u64; nbsp::telemetry::EVENT_COUNT];
            let ta = Event::TagAlloc.index();
            let rs = Event::RscSpurious.index();
            while !stop.load(Ordering::Relaxed) {
                // Consistent reader: one WLL over the wide variable.
                let got = sink.totals();
                assert_eq!(
                    got[ta], got[rs],
                    "torn atomic snapshot: {got:?} (prev {prev:?})"
                );
                for i in 0..got.len() {
                    assert!(
                        got[i] >= prev[i],
                        "non-monotonic atomic snapshot at event {i}: {got:?} < {prev:?}"
                    );
                }
                prev = got;

                // Racy reader: may tear across the pair. Count, don't
                // assert — E11 demonstrates the tears statistically.
                let racy = racy_totals();
                let d_ta = racy[ta] - base_racy[ta];
                let d_rs = racy[rs] - base_racy[rs];
                if d_ta != d_rs {
                    tears += 1;
                }
            }
            tears
        })
        .join()
        .unwrap()
    });

    // Quiescent: every writer flushed its last batch before exiting.
    let expected = WRITERS as u64 * BATCHES * PER_BATCH;
    let fin = sink.totals();
    assert_eq!(fin[Event::TagAlloc.index()], expected);
    assert_eq!(fin[Event::RscSpurious.index()], expected);

    // The racy reader also converges once writers stop.
    let fin_racy = racy_totals();
    assert_eq!(fin_racy[Event::TagAlloc.index()] - base_racy[Event::TagAlloc.index()], expected);
    assert_eq!(
        fin_racy[Event::RscSpurious.index()] - base_racy[Event::RscSpurious.index()],
        expected
    );

    // Informational: how often the racy reader tore (0 is legal here).
    println!("racy reader torn observations: {racy_tears}");
}

#[test]
fn unflushed_counts_are_invisible_to_the_atomic_reader() {
    let sink = WideTotals::with_all_slots().expect("sink construction");
    let mut flusher = Flusher::new();
    // HelpGiven is not recorded by this binary's other test (it uses
    // TagAlloc/RscSpurious), and core's help path never runs here.
    record_n(Event::HelpGiven, 9);
    assert_eq!(sink.totals()[Event::HelpGiven.index()], 0, "not flushed yet");
    assert!(flusher.flush(&sink));
    assert_eq!(sink.totals()[Event::HelpGiven.index()], 9);
}
