//! Sequential differential tests: each structure, driven through the
//! Figure-4 construction, must agree step-for-step with the obvious
//! std-library model on thousands of randomized programs.
//! (The linearizability tests accept any legal concurrent order; these
//! demand exact sequential equality — a finer sieve for off-by-one link
//! bugs, lost marks, or capacity accounting.) Programs come from a seeded
//! [`SplitMix64`], so failures reproduce exactly.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use nbsp::core::{for_each_provider, CasLlSc, Native, Provider, TagLayout};
use nbsp::memsim::rng::SplitMix64;
use nbsp::structures::{ordmap_capacity, OrdMap, Queue, Set, Stack};

fn nat() -> CasLlSc<Native> {
    CasLlSc::new_native(TagLayout::half(), 0).unwrap()
}

#[test]
fn stack_matches_vec_model() {
    let mut rng = SplitMix64::new(0x57ac_0001);
    for case in 0..200 {
        let capacity = rng.next_index(8);
        let ops: Vec<(u8, u64)> = (0..rng.next_index(200))
            .map(|_| (rng.next_index(2) as u8, rng.next_below(100)))
            .collect();
        let stack = Stack::new(capacity, nat(), nat(), &mut Native);
        let mut model: Vec<u64> = Vec::new();
        let mut ctx = Native;
        for (kind, v) in ops {
            if kind == 0 {
                let got = stack.push(&mut ctx, v).is_ok();
                let want = model.len() < capacity;
                assert_eq!(got, want, "case {case}: push({v}) full-state mismatch");
                if want {
                    model.push(v);
                }
            } else {
                assert_eq!(stack.pop(&mut ctx), model.pop(), "case {case}");
            }
        }
        assert_eq!(stack.len_quiescent(&mut ctx), model.len(), "case {case}");
    }
}

#[test]
fn queue_matches_vecdeque_model() {
    let mut rng = SplitMix64::new(0x57ac_0002);
    for case in 0..200 {
        let capacity = rng.next_index(8);
        let ops: Vec<(u8, u64)> = (0..rng.next_index(200))
            .map(|_| (rng.next_index(2) as u8, rng.next_below(100)))
            .collect();
        let queue = Queue::new(capacity, nat, &mut Native);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut ctx = Native;
        for (kind, v) in ops {
            if kind == 0 {
                let got = queue.enqueue(&mut ctx, v).is_ok();
                let want = model.len() < capacity;
                assert_eq!(got, want, "case {case}: enqueue({v}) full-state mismatch");
                if want {
                    model.push_back(v);
                }
            } else {
                assert_eq!(queue.dequeue(&mut ctx), model.pop_front(), "case {case}");
            }
        }
        assert_eq!(queue.len_quiescent(&mut ctx), model.len(), "case {case}");
    }
}

#[test]
fn set_matches_btreeset_model() {
    let mut rng = SplitMix64::new(0x57ac_0003);
    for case in 0..200 {
        let ops: Vec<(u8, u64)> = (0..rng.next_index(150))
            .map(|_| (rng.next_index(3) as u8, rng.next_below(12)))
            .collect();
        // Lifetime capacity sized so adds never hit Full.
        let set = Set::new(512, nat, &mut Native);
        let mut model: BTreeSet<u64> = BTreeSet::new();
        let mut ctx = Native;
        for (kind, k) in ops {
            match kind {
                0 => assert_eq!(
                    set.add(&mut ctx, k).unwrap(),
                    model.insert(k),
                    "case {case}: add({k})"
                ),
                1 => assert_eq!(
                    set.remove(&mut ctx, k),
                    model.remove(&k),
                    "case {case}: remove({k})"
                ),
                _ => assert_eq!(
                    set.contains(&mut ctx, k),
                    model.contains(&k),
                    "case {case}: contains({k})"
                ),
            }
        }
        let live: Vec<u64> = model.iter().copied().collect();
        assert_eq!(set.to_vec_quiescent(&mut ctx), live, "case {case}");
    }
}

/// The ordmap against `BTreeMap`, one provider: seeded op fuzzing with
/// exact sequential equality on every return value, plus a snapshot and a
/// range scan at the end of each program. Stamped over the whole registry
/// below, so a newly registered provider gets ordered-map differential
/// coverage for free. (Sized within the constant-time provider's
/// per-domain variable budget: each record costs three LL/SC words.)
fn ordmap_matches_btreemap<P: Provider>(seed: u64) {
    const CASES: usize = 12;
    const OPS: usize = 36;
    let mut rng = SplitMix64::new(seed);
    for case in 0..CASES {
        let env = P::env(1).expect("provider env");
        let mut tc = P::thread_ctx(&env, 0);
        let mut ctx = P::ctx(&mut tc);
        let map = OrdMap::new(
            1,
            ordmap_capacity(OPS),
            || P::var(&env, 0).expect("provider var"),
            &mut ctx,
        );
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for step in 0..OPS {
            let kind = rng.next_index(4);
            let key = rng.next_below(10);
            let value = rng.next_below(1_000);
            match kind {
                0 | 1 => assert_eq!(
                    map.insert(&mut ctx, 0, key, value).unwrap(),
                    model.insert(key, value),
                    "case {case} step {step}: insert({key}, {value})"
                ),
                2 => assert_eq!(
                    map.delete(&mut ctx, 0, key).unwrap(),
                    model.remove(&key),
                    "case {case} step {step}: delete({key})"
                ),
                _ => assert_eq!(
                    map.get(&mut ctx, key),
                    model.get(&key).copied(),
                    "case {case} step {step}: get({key})"
                ),
            }
        }
        let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(map.snapshot(&mut ctx), want, "case {case}: full snapshot");
        let ranged: Vec<(u64, u64)> = model.range(3..=7).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(
            map.range_snapshot(&mut ctx, 3, 7),
            ranged,
            "case {case}: range snapshot"
        );
    }
}

macro_rules! ordmap_differential {
    ($name:ident, $provider:ty) => {
        mod $name {
            #[test]
            fn ordmap_matches_btreemap() {
                super::ordmap_matches_btreemap::<$provider>(0x57ac_0004);
            }
        }
    };
}

for_each_provider!(ordmap_differential);
