//! Sequential differential tests: each structure, driven through the
//! Figure-4 construction, must agree step-for-step with the obvious
//! std-library model on thousands of proptest-generated programs.
//! (The linearizability tests accept any legal concurrent order; these
//! demand exact sequential equality — a finer sieve for off-by-one link
//! bugs, lost marks, or capacity accounting.)

use std::collections::{BTreeSet, VecDeque};

use proptest::prelude::*;

use nbsp::core::{CasLlSc, Native, TagLayout};
use nbsp::structures::{Queue, Set, Stack};

fn nat() -> CasLlSc<Native> {
    CasLlSc::new_native(TagLayout::half(), 0).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn stack_matches_vec_model(
        capacity in 0usize..8,
        ops in proptest::collection::vec((0u8..2, 0u64..100), 0..200),
    ) {
        let stack = Stack::new(capacity, nat(), nat(), &mut Native);
        let mut model: Vec<u64> = Vec::new();
        let mut ctx = Native;
        for (kind, v) in ops {
            if kind == 0 {
                let got = stack.push(&mut ctx, v).is_ok();
                let want = model.len() < capacity;
                prop_assert_eq!(got, want, "push({}) full-state mismatch", v);
                if want {
                    model.push(v);
                }
            } else {
                prop_assert_eq!(stack.pop(&mut ctx), model.pop());
            }
        }
        prop_assert_eq!(stack.len_quiescent(&mut ctx), model.len());
    }

    #[test]
    fn queue_matches_vecdeque_model(
        capacity in 0usize..8,
        ops in proptest::collection::vec((0u8..2, 0u64..100), 0..200),
    ) {
        let queue = Queue::new(capacity, nat, &mut Native);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut ctx = Native;
        for (kind, v) in ops {
            if kind == 0 {
                let got = queue.enqueue(&mut ctx, v).is_ok();
                let want = model.len() < capacity;
                prop_assert_eq!(got, want, "enqueue({}) full-state mismatch", v);
                if want {
                    model.push_back(v);
                }
            } else {
                prop_assert_eq!(queue.dequeue(&mut ctx), model.pop_front());
            }
        }
        prop_assert_eq!(queue.len_quiescent(&mut ctx), model.len());
    }

    #[test]
    fn set_matches_btreeset_model(
        ops in proptest::collection::vec((0u8..3, 0u64..12), 0..150),
    ) {
        // Lifetime capacity sized so adds never hit Full.
        let set = Set::new(512, nat, &mut Native);
        let mut model: BTreeSet<u64> = BTreeSet::new();
        let mut ctx = Native;
        for (kind, k) in ops {
            match kind {
                0 => prop_assert_eq!(
                    set.add(&mut ctx, k).unwrap(),
                    model.insert(k),
                    "add({})", k
                ),
                1 => prop_assert_eq!(set.remove(&mut ctx, k), model.remove(&k), "remove({})", k),
                _ => prop_assert_eq!(
                    set.contains(&mut ctx, k),
                    model.contains(&k),
                    "contains({})", k
                ),
            }
        }
        let live: Vec<u64> = model.iter().copied().collect();
        prop_assert_eq!(set.to_vec_quiescent(&mut ctx), live);
    }
}
